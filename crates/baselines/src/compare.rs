//! Side-by-side comparison of all criteria on one rule set, and the
//! subsumption checker used by experiment E6.

use serde::Serialize;
use starling_analysis::confluence::analyze_confluence;
use starling_analysis::context::AnalysisContext;
use starling_analysis::termination::analyze_termination;

use crate::{hh91, ras90, zh90};

/// Identifies one of the compared criteria.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum BaselineId {
    /// Starling's confluence analysis (Confluence Requirement + termination).
    Starling,
    /// The HH91-analog unique-fixed-point criterion.
    Hh91,
    /// The ZH90-analog write-stratification criterion.
    Zh90,
    /// The Ras90-analog full-independence criterion.
    Ras90,
}

/// Accept/reject verdicts of every criterion on one rule set.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ComparisonRow {
    /// Starling: Confluence Requirement holds *and* termination guaranteed.
    pub starling: bool,
    /// HH91-analog accepted.
    pub hh91: bool,
    /// ZH90-analog accepted.
    pub zh90: bool,
    /// Ras90-analog accepted.
    pub ras90: bool,
}

impl ComparisonRow {
    /// Checks the subsumption chain on this row: every acceptance implies
    /// acceptance by all less conservative criteria. Returns the first
    /// broken link, if any.
    pub fn subsumption_violation(&self) -> Option<(BaselineId, BaselineId)> {
        if self.ras90 && !self.zh90 {
            return Some((BaselineId::Ras90, BaselineId::Zh90));
        }
        if self.zh90 && !self.hh91 {
            return Some((BaselineId::Zh90, BaselineId::Hh91));
        }
        if self.hh91 && !self.starling {
            return Some((BaselineId::Hh91, BaselineId::Starling));
        }
        None
    }
}

/// Runs all four criteria.
pub fn compare_all(ctx: &AnalysisContext) -> ComparisonRow {
    let ours_confluence = analyze_confluence(ctx).requirement_holds();
    let ours_termination = analyze_termination(ctx).is_guaranteed();
    ComparisonRow {
        starling: ours_confluence && ours_termination,
        hh91: hh91::analyze(ctx).accepted,
        zh90: zh90::analyze(ctx).accepted,
        ras90: ras90::analyze(ctx).accepted,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use starling_analysis::certifications::Certifications;

    use super::*;

    pub(crate) fn ctx(src: &str) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v", "w", "w2", "z"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    /// The headline Section 9 claim, on hand-picked rule sets: every
    /// baseline acceptance is also a Starling acceptance, and there are
    /// rule sets separating each adjacent pair.
    #[test]
    fn subsumption_chain_holds_and_is_proper() {
        let corpus = [
            // Fully independent: accepted by all four.
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into w values (1) end;",
            // Shared written table, commuting: separates HH91 from ZH90.
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into u values (2) end;",
            // Ordered noncommuting pair: separates Starling from HH91.
            "create rule a on t when inserted then update u set x = 1 precedes b end;
             create rule b on t when inserted then update u set x = 2 end;",
            // Unordered noncommuting pair: rejected by all.
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
            // Triggering cycle: rejected by all.
            "create rule p on t when inserted then insert into u values (1) end;
             create rule q on u when inserted then insert into t values (1) end;",
        ];
        let rows: Vec<ComparisonRow> = corpus.iter().map(|s| compare_all(&ctx(s))).collect();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.subsumption_violation(), None, "corpus[{i}]: {row:?}");
        }
        // Proper separations exist.
        assert!(rows.iter().any(|r| r.starling && !r.hh91));
        assert!(rows.iter().any(|r| r.hh91 && !r.zh90));
        assert!(rows.iter().any(|r| r.starling && r.hh91 && r.zh90));
        assert!(rows.iter().any(|r| !r.starling));
    }

    #[test]
    fn p_empty_makes_starling_and_hh91_agree_on_commutativity() {
        // Corollary 6.9: with no priorities, a Starling-confluent rule set
        // has every pair commuting — HH91's pair condition coincides. (The
        // termination premise is shared.)
        let srcs = [
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into w values (1) end;",
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
        ];
        for s in srcs {
            let c = ctx(s);
            let row = compare_all(&c);
            assert_eq!(row.starling, row.hh91, "{s}");
        }
    }
}
