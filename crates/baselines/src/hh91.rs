//! HH91-analog: the unique-fixed-point criterion.
//!
//! \[HH91\] (Hellerstein & Hsu, *Determinism in partially ordered production
//! systems*) identifies a class of OPS5 rule sets whose processing reaches a
//! unique fixed point. Reconstructed criterion:
//!
//! 1. the triggering graph is acyclic (processing terminates), and
//! 2. **every** pair of distinct rules commutes (Lemma 6.1, no user
//!    certifications) — conflict-resolution order must be irrelevant
//!    outright, because OPS5 priorities are heuristic tie-breakers rather
//!    than semantic orderings.
//!
//! Compared with Starling's Confluence Requirement, condition 2 quantifies
//! over *all* pairs instead of the unordered pairs' `R1 × R2` closures:
//! a rule set in which a noncommuting pair is priority-ordered is accepted
//! by Starling and rejected here — the "proper subsumption" of Section 9.

use serde::Serialize;
use starling_analysis::commutativity::noncommutativity_reasons;
use starling_analysis::context::AnalysisContext;
use starling_analysis::triggering_graph::TriggeringGraph;

/// The HH91-analog verdict.
#[derive(Clone, Debug, Serialize)]
pub struct Hh91Verdict {
    /// Whether the criterion accepts the rule set.
    pub accepted: bool,
    /// Names of noncommuting pairs found (first few; empty when accepted).
    pub noncommuting_pairs: Vec<(String, String)>,
    /// Whether the triggering graph was acyclic.
    pub acyclic: bool,
}

/// Runs the HH91-analog criterion.
pub fn analyze(ctx: &AnalysisContext) -> Hh91Verdict {
    let acyclic = TriggeringGraph::build(ctx).is_acyclic();
    let mut noncommuting_pairs = Vec::new();
    let n = ctx.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if !noncommutativity_reasons(&ctx.sigs[i], &ctx.sigs[j]).is_empty() {
                noncommuting_pairs.push((ctx.name(i).to_owned(), ctx.name(j).to_owned()));
            }
        }
    }
    Hh91Verdict {
        accepted: acyclic && noncommuting_pairs.is_empty(),
        noncommuting_pairs,
        acyclic,
    }
}

#[cfg(test)]
mod tests {
    use crate::compare::tests::ctx;

    use super::*;

    #[test]
    fn accepts_fully_independent_rules() {
        let c = ctx(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on v when inserted then delete from w end;",
        );
        let v = analyze(&c);
        assert!(v.accepted);
        assert!(v.acyclic);
    }

    #[test]
    fn rejects_noncommuting_even_when_ordered() {
        // Starling accepts this (the pair is ordered); HH91-analog rejects.
        let c = ctx(
            "create rule a on t when inserted then update u set x = 1 precedes b end;
             create rule b on t when inserted then update u set x = 2 end;",
        );
        let v = analyze(&c);
        assert!(!v.accepted);
        assert_eq!(v.noncommuting_pairs.len(), 1);

        let ours = starling_analysis::confluence::analyze_confluence(&c);
        assert!(ours.requirement_holds());
    }

    #[test]
    fn rejects_cyclic_triggering() {
        let c = ctx(
            "create rule p on t when inserted then insert into u values (1) end;
             create rule q on u when inserted then insert into t values (1) end;",
        );
        let v = analyze(&c);
        assert!(!v.accepted);
        assert!(!v.acyclic);
    }
}
