//! # starling-baselines
//!
//! Comparator analyses for the paper's Section 9 claims:
//!
//! > "By defining a mapping between our language and the language in
//! > \[HH91\], we have shown that our confluence requirements properly
//! > subsume their fixed point requirements ... The methods in \[HH91\] have
//! > previously been shown to subsume those in \[Ras90, ZH90\]."
//!
//! The originals are OPS5-specific (and two of them unpublished research
//! reports), so these are **reconstructions**: criteria implemented from the
//! paper's characterization, each *strictly more conservative* than the one
//! above it, forming the chain
//!
//! ```text
//! Ras90-analog ⊆ ZH90-analog ⊆ HH91-analog ⊆ Starling confluence
//! ```
//!
//! * [`hh91`] — unique fixed point: termination (acyclic triggering graph)
//!   plus pairwise commutativity of **all** distinct rule pairs, *ignoring
//!   user priorities* (in OPS5-style systems the conflict-resolution order
//!   must not matter at all). By Corollary 6.9 this coincides with the
//!   Confluence Requirement exactly when `P = ∅`; with priorities, Starling
//!   accepts strictly more rule sets.
//! * [`zh90`] — rule triggering systems: HH91-analog plus no two distinct
//!   rules may write a common table (strict write-stratification).
//! * [`ras90`] — stratified production systems: ZH90-analog plus no rule
//!   may read a table another rule writes (full independence).
//!
//! Subsumption is verified two ways: structurally (the conditions are
//! supersets by construction, unit-tested here) and empirically over
//! generated corpora (experiment E6 in `EXPERIMENTS.md`).

pub mod compare;
pub mod hh91;
pub mod ras90;
pub mod zh90;

pub use compare::{compare_all, BaselineId, ComparisonRow};
