//! Ras90-analog: fully stratified production systems.
//!
//! \[Ras90\] (Raschid, *Maintaining consistency in a stratified production
//! system*) imposes the strongest discipline of the three comparators.
//! Reconstructed criterion: the ZH90-analog conditions plus **trigger-table
//! isolation** — no rule (including a rule itself) may write a table that
//! appears in any rule's transition predicate. Rule firing can then never
//! influence rule triggering in any way: the system is trivially stratified
//! into "user operations trigger everything once".
//!
//! (An earlier candidate — forbidding read/write dependencies — turns out
//! to be vacuous relative to the chain: any read/write dependency already
//! fires Lemma 6.1 condition 3 and is rejected by the HH91-analog. The
//! trigger-table condition is genuinely stronger: a rule may *write* a
//! table another rule is triggered by without tripping any Lemma 6.1
//! condition, e.g. an `UPDATE` against an insert-triggered table.)

use serde::Serialize;
use starling_analysis::context::AnalysisContext;

use crate::zh90;

/// The Ras90-analog verdict.
#[derive(Clone, Debug, Serialize)]
pub struct Ras90Verdict {
    /// Whether the criterion accepts the rule set.
    pub accepted: bool,
    /// The underlying ZH90-analog verdict.
    pub zh90: zh90::Zh90Verdict,
    /// `(writer, triggered_rule, table)` violations of trigger-table
    /// isolation (empty when accepted).
    pub trigger_writes: Vec<(String, String, String)>,
}

/// Runs the Ras90-analog criterion.
pub fn analyze(ctx: &AnalysisContext) -> Ras90Verdict {
    let base = zh90::analyze(ctx);
    let mut trigger_writes = Vec::new();
    let n = ctx.len();
    for writer in 0..n {
        for triggered in 0..n {
            for op in &ctx.sigs[writer].performs {
                if ctx.sigs[triggered]
                    .triggered_by
                    .iter()
                    .any(|tb| tb.table() == op.table())
                {
                    trigger_writes.push((
                        ctx.name(writer).to_owned(),
                        ctx.name(triggered).to_owned(),
                        op.table().to_owned(),
                    ));
                    break;
                }
            }
        }
    }
    Ras90Verdict {
        accepted: base.accepted && trigger_writes.is_empty(),
        zh90: base,
        trigger_writes,
    }
}

#[cfg(test)]
mod tests {
    use crate::compare::tests::ctx;

    use super::*;

    #[test]
    fn rejects_write_to_trigger_table_even_when_commuting() {
        // a updates u.x; b is triggered by inserts into u. No Lemma 6.1
        // condition fires (update is not an insert, b reads nothing), no
        // shared writes — HH91- and ZH90-analogs accept; Ras90-analog
        // rejects.
        let c = ctx(
            "create rule a on t when deleted then update u set x = 1 end;
             create rule b on u when inserted then update v set x = 1 end;",
        );
        assert!(crate::hh91::analyze(&c).accepted);
        assert!(crate::zh90::analyze(&c).accepted);
        let v = analyze(&c);
        assert!(!v.accepted);
        assert!(v
            .trigger_writes
            .iter()
            .any(|(w, t, table)| w == "a" && t == "b" && table == "u"));
    }

    #[test]
    fn rejects_self_write_of_trigger_table() {
        // A single rule updating its own (insert-)trigger table: no pair
        // exists, so the pairwise criteria accept; Ras90-analog rejects.
        let c = ctx("create rule a on t when inserted then update t set x = 1 end;");
        assert!(crate::zh90::analyze(&c).accepted);
        assert!(!analyze(&c).accepted);
    }

    #[test]
    fn accepts_fully_isolated() {
        let c = ctx(
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into w values (1) end;",
        );
        assert!(analyze(&c).accepted);
    }

    #[test]
    fn structural_inclusion_in_zh90() {
        let srcs = [
            "create rule a on t when deleted then insert into u values (1) end;",
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into w values (1) end;",
            "create rule a on t when inserted then update t set x = 1 end;",
        ];
        for s in srcs {
            let c = ctx(s);
            let v = analyze(&c);
            if v.accepted {
                assert!(crate::zh90::analyze(&c).accepted);
            }
        }
    }
}
