//! ZH90-analog: write-stratified rule triggering systems.
//!
//! \[ZH90\] (Zhou & Hsu, *A theory for rule triggering systems*) develops a
//! stratification theory under which rule processing is well-behaved.
//! Reconstructed criterion: the HH91-analog conditions plus strict
//! **write-stratification** — no two distinct rules may modify a common
//! table at all, even commutatively (e.g. two pure inserters into the same
//! table, which Lemma 6.1 happily accepts, are rejected here).

use serde::Serialize;
use starling_analysis::context::AnalysisContext;

use crate::hh91;

/// The ZH90-analog verdict.
#[derive(Clone, Debug, Serialize)]
pub struct Zh90Verdict {
    /// Whether the criterion accepts the rule set.
    pub accepted: bool,
    /// The underlying HH91-analog verdict.
    pub hh91: hh91::Hh91Verdict,
    /// Pairs of rules sharing a written table (empty when stratified).
    pub shared_writes: Vec<(String, String, String)>,
}

/// Runs the ZH90-analog criterion.
pub fn analyze(ctx: &AnalysisContext) -> Zh90Verdict {
    let base = hh91::analyze(ctx);
    let mut shared_writes = Vec::new();
    let n = ctx.len();
    for i in 0..n {
        for j in (i + 1)..n {
            for op in &ctx.sigs[i].performs {
                if ctx.sigs[j].performs.iter().any(|p| p.table() == op.table()) {
                    shared_writes.push((
                        ctx.name(i).to_owned(),
                        ctx.name(j).to_owned(),
                        op.table().to_owned(),
                    ));
                    break;
                }
            }
        }
    }
    Zh90Verdict {
        accepted: base.accepted && shared_writes.is_empty(),
        hh91: base,
        shared_writes,
    }
}

#[cfg(test)]
mod tests {
    use crate::compare::tests::ctx;

    use super::*;

    #[test]
    fn rejects_commuting_co_inserters() {
        // Two inserters into the same table commute (HH91-analog accepts)
        // but share a written table (ZH90-analog rejects).
        let c = ctx(
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into u values (2) end;",
        );
        assert!(crate::hh91::analyze(&c).accepted);
        let v = analyze(&c);
        assert!(!v.accepted);
        assert_eq!(v.shared_writes.len(), 1);
        assert_eq!(v.shared_writes[0].2, "u");
    }

    #[test]
    fn accepts_table_disjoint_writers() {
        let c = ctx(
            "create rule a on t when deleted then insert into u values (1) end;
             create rule b on v when deleted then insert into w values (1) end;",
        );
        assert!(analyze(&c).accepted);
    }

    #[test]
    fn inherits_hh91_rejections() {
        let c = ctx(
            "create rule p on t when inserted then insert into u values (1) end;
             create rule q on u when inserted then insert into t values (1) end;",
        );
        assert!(!analyze(&c).accepted);
    }
}
