//! E9: analysis wall time as the rule set grows.
//!
//! The paper positions the analyses as the core of an *interactive*
//! development environment, so they must stay fast at realistic rule-set
//! sizes. This bench sweeps 10..=200 rules and times each analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use starling_analysis::confluence::analyze_confluence;
use starling_analysis::observable::analyze_observable_determinism;
use starling_analysis::partial::analyze_partial_confluence;
use starling_analysis::termination::analyze_termination;
use starling_analysis::triggering_graph::TriggeringGraph;
use starling_bench::{build, scale_config};

fn bench_analyses(c: &mut Criterion) {
    let sizes = [10usize, 25, 50, 100, 200];

    let mut g = c.benchmark_group("triggering_graph");
    for &n in &sizes {
        let (_, _, ctx) = build(&scale_config(n, 42));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| TriggeringGraph::build(&ctx))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("termination");
    for &n in &sizes {
        let (_, _, ctx) = build(&scale_config(n, 42));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| analyze_termination(&ctx))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("confluence");
    for &n in &sizes {
        let (_, _, ctx) = build(&scale_config(n, 42));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| analyze_confluence(&ctx))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("partial_confluence_sig");
    for &n in &sizes {
        let (_, _, ctx) = build(&scale_config(n, 42));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| analyze_partial_confluence(&ctx, &["t0", "t1"]))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("observable_determinism");
    for &n in &sizes {
        let (_, _, ctx) = build(&scale_config(n, 42));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| analyze_observable_determinism(&ctx))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_analyses
}
criterion_main!(benches);
