//! Engine microbenchmarks: net-effect composition throughput and full
//! rule-processing runs on the constraint-maintenance cascade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use starling_engine::{ExecState, FirstEligible, NetEffect, Processor, TupleOp};
use starling_storage::{TupleId, Value};
use starling_workloads::constraints;

fn bench_net_effect(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_effect_absorb");
    for &n in &[100usize, 1_000, 10_000] {
        // Interleaved insert/update/delete streams over n/10 tuples.
        let ops: Vec<TupleOp> = (0..n)
            .map(|i| {
                let id = TupleId((i % (n / 10).max(1)) as u64 * 3 + 1_000_000);
                match i % 3 {
                    0 => TupleOp::Insert {
                        table: "t".into(),
                        id,
                        row: vec![Value::Int(i as i64)],
                    },
                    1 => TupleOp::Update {
                        table: "t".into(),
                        id,
                        old: vec![Value::Int(i as i64)],
                        new: vec![Value::Int(i as i64 + 1)],
                        cols: std::iter::once("a".to_owned()).collect(),
                    },
                    _ => TupleOp::Delete {
                        table: "t".into(),
                        id,
                        old: vec![Value::Int(i as i64 + 1)],
                    },
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ops, |b, ops| {
            b.iter(|| NetEffect::from_ops(ops.iter()))
        });
    }
    g.finish();
}

fn bench_rule_processing(c: &mut Criterion) {
    let w = constraints::workload();
    let (db, rules) = w.compile().expect("workload compiles");
    let user = w.user_actions().expect("user transition");

    c.bench_function("constraints_cascade_run", |b| {
        b.iter(|| {
            let snapshot = db.clone();
            let mut working = db.clone();
            let ops = starling_engine::exec_graph::apply_user_actions(&mut working, &user).unwrap();
            let mut st = ExecState::new(working, rules.len(), &ops);
            Processor::new(&rules)
                .with_limit(500)
                .run(&mut st, &snapshot, &mut FirstEligible)
                .unwrap()
        })
    });

    // Batch scaling: N order inserts before the assertion point.
    let mut g = c.benchmark_group("cascade_batch_size");
    for &n in &[1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let snapshot = db.clone();
                let mut working = db.clone();
                let mut ops = Vec::new();
                for i in 0..n {
                    let row = vec![
                        Value::Int(100 + i as i64),
                        Value::Int(50 + i as i64),
                        Value::Int(1),
                    ];
                    let id = working.insert("emp", row.clone()).unwrap();
                    ops.push(TupleOp::Insert {
                        table: "emp".into(),
                        id,
                        row,
                    });
                }
                let mut st = ExecState::new(working, rules.len(), &ops);
                Processor::new(&rules)
                    .with_limit(2_000)
                    .run(&mut st, &snapshot, &mut FirstEligible)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_net_effect, bench_rule_processing
}
criterion_main!(benches);
