//! E12: partitioned/incremental re-analysis vs full re-analysis after a
//! single-rule change (paper Section 9, first extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use starling_analysis::confluence::analyze_confluence;
use starling_analysis::partition::IncrementalAnalyzer;
use starling_analysis::termination::analyze_termination;
use starling_bench::partitioned_context;

fn bench_incremental(c: &mut Criterion) {
    for &k in &[4usize, 8] {
        let ctx = partitioned_context(k);
        // The "edit": certify one rule in partition 0, invalidating only it.
        let mut edited = ctx.clone();
        let name = edited.name(0).to_owned();
        edited.certs.certify_terminates(&name, "bench edit");

        let mut g = c.benchmark_group(format!("reanalysis_{k}_partitions"));
        g.bench_function("full", |b| {
            b.iter(|| (analyze_termination(&edited), analyze_confluence(&edited)))
        });
        g.bench_function("incremental", |b| {
            b.iter_batched(
                || {
                    // Warm cache on the pre-edit context.
                    let mut inc = IncrementalAnalyzer::new();
                    let _ = inc.analyze(&ctx);
                    inc
                },
                |mut inc| inc.analyze(&edited),
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("partition_count", k), &k, |b, _| {
            b.iter(|| starling_analysis::partition::partition_rules(&edited))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_incremental
}
criterion_main!(benches);
