//! Execution-graph oracle cost: exhaustive exploration over the curated
//! corpus and the case studies (E1–E5 ground-truth machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use starling_engine::{explore, ExploreConfig};
use starling_sql::ast::Statement;
use starling_sql::parse_statement;
use starling_storage::{Database, Value};
use starling_workloads::{audit, corpus, power_network};

fn bench_corpus_exploration(c: &mut Criterion) {
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);
    let mut g = c.benchmark_group("explore_corpus");
    for entry in corpus() {
        // Skip entries that do not terminate (exploration would saturate
        // the bound and time the bound, not the workload).
        if !matches!(
            entry.name,
            "independent" | "cascade_ordered" | "unordered_writers" | "ordered_observables"
        ) {
            continue;
        }
        let rules = entry.compile();
        let mut db = Database::new();
        for schema in starling_workloads::CorpusEntry::catalog().tables() {
            db.create_table(schema.clone()).unwrap();
        }
        db.insert("t", vec![Value::Int(0)]).unwrap();
        db.insert("u", vec![Value::Int(0)]).unwrap();
        let Statement::Dml(action) = parse_statement("insert into t values (1)").unwrap() else {
            unreachable!()
        };
        let actions = vec![action];
        g.bench_with_input(
            BenchmarkId::from_parameter(entry.name),
            &entry.name,
            |b, _| b.iter(|| explore(&rules, &db, &actions, &cfg).unwrap()),
        );
    }
    g.finish();
}

fn bench_case_study_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_case_studies");
    for w in [power_network::workload(), audit::workload()] {
        let (db, rules) = w.compile().unwrap();
        let actions = w.user_actions().unwrap();
        let cfg = ExploreConfig::default();
        g.bench_with_input(BenchmarkId::from_parameter(w.name), &w.name, |b, _| {
            b.iter(|| explore(&rules, &db, &actions, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(15);
    targets = bench_corpus_exploration, bench_case_study_exploration
}
criterion_main!(benches);
