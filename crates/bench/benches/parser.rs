//! SQL/rule-DDL parser throughput over generated scripts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use starling_bench::scale_config;
use starling_sql::parse_script;
use starling_workloads::random::generate;

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse_script");
    for &n in &[10usize, 50, 200] {
        let script = generate(&scale_config(n, 7)).script();
        g.throughput(Throughput::Bytes(script.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &script, |b, s| {
            b.iter(|| parse_script(s).expect("script parses"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(30);
    targets = bench_parser
}
criterion_main!(benches);
