//! Oracle throughput harness: measures exhaustive execution-graph
//! exploration over the corpus, the case studies, and the state-heavy
//! stress workload — plus the static-analysis scale families — and records
//! the numbers in `BENCH_oracle.json` so the perf trajectory is tracked
//! across PRs.
//!
//! Usage:
//!
//! ```text
//! bench_oracle [--smoke] [--label NAME] [--out PATH] [--filter SUBSTR] [--iters N]
//! ```
//!
//! * `--smoke` — one exploration per case (CI keep-alive mode; numbers are
//!   still recorded but labelled `smoke`);
//! * `--label` — the entry label stored in the JSON (e.g. `pre-PR`);
//! * `--out` — output path (default `BENCH_oracle.json`); the file holds a
//!   JSON array and each run **appends** one entry, preserving history;
//! * `--filter` — only run cases whose name contains the substring
//!   (`--filter scale` runs just the large-table family; skipped cases are
//!   never even built, so a filtered run avoids the 1M-row table setup);
//! * `--iters` — cap the measured iterations per case (overrides the
//!   smoke/full default; the 1.5 s time target still applies).
//!
//! ## The analysis families
//!
//! `analysis/*` measures the §6.4 interactive loop on fuzz-generated
//! programs of 1k–10k rules: one *single-rule refinement step* (a commute
//! certification toggle, a priority edit, or an add/drop of one rule)
//! followed by a re-analyze on a warm [`IncrementalAnalysis`].
//! `analysis-scratch/*` measures the same reports computed cold (a fresh
//! analyzer per iteration) — the from-scratch baseline the incremental
//! path is judged against, with `cold_10k_seq` additionally pinning the
//! sequential sweep so the parallel speedup on `cold_10k` is visible.
//! For these cases the JSON fields are reinterpreted: `states` is the rule
//! count, `edges` is `confluence.pairs_checked`, and `ms_per_explore` is
//! milliseconds per refine-and-analyze step.

use std::fmt::Write as _;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use starling_analysis::{Certifications, IncrementalAnalysis};
use starling_engine::{explore, explore_traced, ExecGraph, ExploreConfig, RuleSet};
use starling_fuzz::{generate, GenConfig};
use starling_sql::ast::{Action, Statement};
use starling_sql::parse_statement;
use starling_storage::{Database, Value};
use starling_workloads::{audit, cond_stress, corpus, power_network, scale, stress, CorpusEntry};

/// One benchmark case: a compiled rule set, an initial database, a user
/// transition, and the exploration budget.
struct Case {
    name: String,
    rules: RuleSet,
    db: Database,
    actions: Vec<Action>,
    cfg: ExploreConfig,
}

/// Measured numbers for one case.
struct Measurement {
    name: String,
    states: usize,
    edges: usize,
    iters: u32,
    total: Duration,
}

impl Measurement {
    fn ms_per_explore(&self) -> f64 {
        self.total.as_secs_f64() * 1e3 / f64::from(self.iters)
    }

    fn states_per_sec(&self) -> f64 {
        (self.states as f64) * f64::from(self.iters) / self.total.as_secs_f64()
    }
}

fn corpus_cases() -> Vec<Case> {
    // Mirrors `bench_corpus_exploration` in benches/oracle.rs: the
    // terminating corpus entries under the same budget and seeding.
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);
    let mut cases = Vec::new();
    for entry in corpus() {
        if !matches!(
            entry.name,
            "independent" | "cascade_ordered" | "unordered_writers" | "ordered_observables"
        ) {
            continue;
        }
        let rules = entry.compile();
        let mut db = Database::new();
        for schema in CorpusEntry::catalog().tables() {
            db.create_table(schema.clone()).unwrap();
        }
        db.insert("t", vec![Value::Int(0)]).unwrap();
        db.insert("u", vec![Value::Int(0)]).unwrap();
        let Statement::Dml(action) = parse_statement("insert into t values (1)").unwrap() else {
            unreachable!()
        };
        cases.push(Case {
            name: format!("corpus/{}", entry.name),
            rules,
            db,
            actions: vec![action],
            cfg,
        });
    }
    cases
}

fn case_study_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for w in [power_network::workload(), audit::workload()] {
        let (db, rules) = w.compile().unwrap();
        let actions = w.user_actions().unwrap();
        cases.push(Case {
            name: format!("case_study/{}", w.name),
            rules,
            db,
            actions,
            cfg: ExploreConfig::default(),
        });
    }
    cases
}

fn cond_cases() -> Vec<Case> {
    // Condition-heavy cases: small graphs whose cost is dominated by rule
    // condition evaluation over `cond_stress::BIG_ROWS` reference rows.
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);
    vec![
        Case {
            name: "cond/eq_join".to_owned(),
            rules: cond_stress::join_rules(),
            db: cond_stress::database(),
            actions: cond_stress::user_actions(),
            cfg,
        },
        Case {
            name: "cond/scan_filter".to_owned(),
            rules: cond_stress::filter_rules(),
            db: cond_stress::database(),
            actions: cond_stress::user_actions(),
            cfg,
        },
    ]
}

fn stress_case() -> Case {
    Case {
        name: "stress/fan_chain".to_owned(),
        rules: stress::compile(),
        db: stress::database(),
        actions: stress::user_actions(),
        cfg: ExploreConfig::default()
            .with_max_states(200_000)
            .with_max_paths(1_000_000),
    }
}

/// What a spec builds: an exploration case, or a self-contained operation
/// (used by the analysis families) that runs one step per iteration and
/// reports its own `(states, edges)` analogs.
enum BenchCase {
    Explore(Box<Case>),
    Op {
        name: String,
        op: Box<dyn FnMut() -> (usize, usize)>,
    },
}

/// A named case whose (possibly expensive) construction is deferred until
/// after `--filter` has decided it actually runs.
struct CaseSpec {
    name: String,
    build: Box<dyn FnOnce() -> BenchCase>,
}

impl CaseSpec {
    fn eager(case: Case) -> CaseSpec {
        CaseSpec {
            name: case.name.clone(),
            build: Box::new(move || BenchCase::Explore(Box::new(case))),
        }
    }
}

/// The large-table family: `cond_stress` condition shapes over 100k- and
/// 1M-row reference tables. Built lazily — populating the 1M-row database
/// dwarfs the cost of every small case combined.
fn scale_specs() -> Vec<CaseSpec> {
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);
    let mut specs = Vec::new();
    for (suffix, rows) in [("100k", 100_000i64), ("1m", 1_000_000)] {
        for flavor in ["filter", "join"] {
            let name = format!("scale/{flavor}_{suffix}");
            specs.push(CaseSpec {
                name: name.clone(),
                build: Box::new(move || {
                    BenchCase::Explore(Box::new(Case {
                        name,
                        rules: if flavor == "filter" {
                            scale::filter_rules(rows)
                        } else {
                            scale::join_rules(rows)
                        },
                        db: scale::database(rows),
                        actions: scale::user_actions(rows),
                        cfg,
                    }))
                }),
            });
        }
    }
    specs
}

/// The provenance family: traced counterparts of the `cond/*` shapes and
/// one `scale/*` shape. Same rules, database, transition, and budget as
/// the matching untraced case; the measured loop calls
/// [`explore_traced`] instead of [`explore`], so the delta between
/// `prov/X` and its `cond/X` / `scale/X` twin is exactly the
/// decision-log recording overhead (the ≤5% budget of DESIGN.md §4k).
fn prov_specs() -> Vec<CaseSpec> {
    let cfg = ExploreConfig::default()
        .with_max_states(5_000)
        .with_max_paths(10_000);
    let mut specs = Vec::new();
    for flavor in ["eq_join", "scan_filter"] {
        let name = format!("prov/{flavor}");
        specs.push(CaseSpec {
            name: name.clone(),
            build: Box::new(move || {
                let rules = if flavor == "eq_join" {
                    cond_stress::join_rules()
                } else {
                    cond_stress::filter_rules()
                };
                let db = cond_stress::database();
                let actions = cond_stress::user_actions();
                BenchCase::Op {
                    name,
                    op: Box::new(move || {
                        let (g, log) = explore_traced(&rules, &db, &actions, &cfg)
                            .expect("prov bench case explores");
                        std::hint::black_box(log.ambiguous());
                        (g.states.len(), g.edges.len())
                    }),
                }
            }),
        });
    }
    let name = "prov/filter_100k".to_owned();
    specs.push(CaseSpec {
        name: name.clone(),
        build: Box::new(move || {
            let rows = 100_000i64;
            let rules = scale::filter_rules(rows);
            let db = scale::database(rows);
            let actions = scale::user_actions(rows);
            BenchCase::Op {
                name,
                op: Box::new(move || {
                    let (g, log) = explore_traced(&rules, &db, &actions, &cfg)
                        .expect("prov bench case explores");
                    std::hint::black_box(log.ambiguous());
                    (g.states.len(), g.edges.len())
                }),
            }
        }),
    });
    specs
}

/// The pinned seed for the analysis families: the programs (and hence the
/// absolute numbers) are reproducible across machines and PRs.
const ANALYSIS_SEED: u64 = 42;

/// A fuzz-generated `n`-rule program compiled for analysis, refined the way
/// the §6.4 loop leaves it: every violating pair found by a first analyze
/// is commute-certified, so the measured state is a near-confluent set
/// whose report is small — the state an interactive session actually
/// iterates on. The last rule is stripped from every other rule's
/// `precedes` list so the add/drop case can pop and re-push it without
/// dangling priority references.
fn analysis_program(
    n: usize,
) -> (
    Vec<starling_sql::RuleDef>,
    starling_storage::Catalog,
    Certifications,
) {
    // Building a program includes a full cold analyze (for the bulk
    // certification), so share one build across the several specs of the
    // same scale; every caller gets its own clone to mutate.
    type Program = (
        Vec<starling_sql::RuleDef>,
        starling_storage::Catalog,
        Certifications,
    );
    static CACHE: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<usize, Program>>> =
        std::sync::OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut cache = cache.lock().expect("analysis program cache poisoned");
    cache
        .entry(n)
        .or_insert_with(|| build_analysis_program(n))
        .clone()
}

fn build_analysis_program(
    n: usize,
) -> (
    Vec<starling_sql::RuleDef>,
    starling_storage::Catalog,
    Certifications,
) {
    let case = generate(ANALYSIS_SEED, &GenConfig::scaled(n));
    let cat = case.catalog();
    let mut defs = case.defs;
    let last = defs.last().expect("scaled case has rules").name.clone();
    for d in &mut defs {
        d.precedes.retain(|p| p != &last);
    }
    let rules = RuleSet::compile(&defs, &cat).expect("scaled case compiles");
    let mut certs = Certifications::new();
    let mut warmer = IncrementalAnalysis::new();
    let first = warmer.analyze(&rules, &certs, false, &[]);
    for v in &first.confluence.violations {
        certs.certify_commute(&v.conflict.0, &v.conflict.1);
    }
    (defs, cat, certs)
}

/// One cold (from-scratch) analyze per iteration.
fn cold_spec(n: usize, tag: &str, parallel: bool) -> CaseSpec {
    let name = format!(
        "analysis-scratch/cold_{tag}{}",
        if parallel { "" } else { "_seq" }
    );
    CaseSpec {
        name: name.clone(),
        build: Box::new(move || {
            let (defs, cat, certs) = analysis_program(n);
            let rules = RuleSet::compile(&defs, &cat).expect("scaled case compiles");
            BenchCase::Op {
                name,
                op: Box::new(move || {
                    let mut analysis = if parallel {
                        IncrementalAnalysis::new()
                    } else {
                        IncrementalAnalysis::sequential()
                    };
                    let rep = analysis.analyze(&rules, &certs, false, &[]);
                    (rep.rule_count, rep.confluence.pairs_checked)
                }),
            }
        }),
    }
}

/// One warm single-rule refinement step per iteration: mutate, re-analyze
/// on a persistent analyzer. `kind` is `certify` (commute certification
/// toggled on/off), `order` (a `precedes` edge added/removed, with the
/// recompile the §6.4 loop really pays), or `adddrop` (the last rule
/// dropped/re-added, also recompiling).
fn refine_spec(n: usize, tag: &str, kind: &'static str) -> CaseSpec {
    let name = format!("analysis/{kind}_{tag}");
    CaseSpec {
        name: name.clone(),
        build: Box::new(move || {
            let (mut defs, cat, mut certs) = analysis_program(n);
            // The toggled pair must start uncertified so every iteration
            // really changes state (the bulk refinement may have hit it).
            certs.revoke_commute("r0", "r1");
            let mut rules = RuleSet::compile(&defs, &cat).expect("scaled case compiles");
            let mut analysis = IncrementalAnalysis::new();
            // Warm the memo: every measured iteration starts incremental.
            analysis.analyze(&rules, &certs, false, &[]);
            let mut on = false;
            let mut parked: Option<starling_sql::RuleDef> = None;
            BenchCase::Op {
                name,
                op: Box::new(move || {
                    on = !on;
                    match kind {
                        "certify" => {
                            if on {
                                certs.certify_commute("r0", "r1");
                            } else {
                                certs.revoke_commute("r0", "r1");
                            }
                        }
                        "order" => {
                            if on {
                                // Edges run low→high index only, so r0→r1
                                // can never form a priority cycle.
                                defs[0].precedes.push("r1".to_owned());
                            } else {
                                defs[0].precedes.pop();
                            }
                            rules = RuleSet::compile(&defs, &cat).expect("refined compile");
                        }
                        "adddrop" => {
                            match parked.take() {
                                Some(d) => defs.push(d),
                                None => parked = defs.pop(),
                            }
                            rules = RuleSet::compile(&defs, &cat).expect("refined compile");
                        }
                        other => unreachable!("unknown refine kind {other}"),
                    }
                    let rep = analysis.analyze(&rules, &certs, false, &[]);
                    (rep.rule_count, rep.confluence.pairs_checked)
                }),
            }
        }),
    }
}

/// The analysis scale families over fuzz-generated 1k/5k/10k-rule programs.
fn analysis_specs() -> Vec<CaseSpec> {
    let mut specs = Vec::new();
    for (n, tag) in [(1_000usize, "1k"), (5_000, "5k"), (10_000, "10k")] {
        specs.push(cold_spec(n, tag, true));
        for kind in ["certify", "order", "adddrop"] {
            specs.push(refine_spec(n, tag, kind));
        }
    }
    specs.push(cold_spec(10_000, "10k", false));
    specs
}

fn run_op(name: &str, mut op: Box<dyn FnMut() -> (usize, usize)>, max_iters: u32) -> Measurement {
    // Warm-up establishes the size analogs (for warm refine cases it also
    // performs the first mutation, so the timed loop is steady-state).
    let (states, edges) = op();
    let target = Duration::from_millis(1_500);
    let mut iters: u32 = 0;
    let start = Instant::now();
    while iters < max_iters {
        std::hint::black_box(op());
        iters += 1;
        if start.elapsed() >= target {
            break;
        }
    }
    Measurement {
        name: name.to_owned(),
        states,
        edges,
        iters,
        total: start.elapsed(),
    }
}

fn run_case(case: &Case, max_iters: u32) -> Measurement {
    let explore_once = || -> ExecGraph {
        explore(&case.rules, &case.db, &case.actions, &case.cfg).expect("bench case explores")
    };
    // Warm-up establishes the graph size (and pages in everything).
    let g = explore_once();
    assert!(
        !g.truncated(),
        "bench case {} truncated — budget too small to measure honestly",
        case.name
    );
    let (states, edges) = (g.states.len(), g.edges.len());

    let target = Duration::from_millis(1_500);
    let mut iters: u32 = 0;
    let start = Instant::now();
    while iters < max_iters {
        std::hint::black_box(explore_once());
        iters += 1;
        if start.elapsed() >= target {
            break;
        }
    }
    Measurement {
        name: case.name.clone(),
        states,
        edges,
        iters,
        total: start.elapsed(),
    }
}

/// Renders one history entry as a JSON object.
fn entry_json(label: &str, smoke: bool, measurements: &[Measurement]) -> String {
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "  {{");
    let _ = writeln!(s, "    \"label\": \"{}\",", label.replace('"', "'"));
    let _ = writeln!(s, "    \"unix_time\": {epoch},");
    let _ = writeln!(
        s,
        "    \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "    \"cases\": [");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"states\": {}, \"edges\": {}, \"iters\": {}, \
             \"wall_s\": {:.6}, \"ms_per_explore\": {:.4}, \"states_per_s\": {:.1}}}{sep}",
            m.name,
            m.states,
            m.edges,
            m.iters,
            m.total.as_secs_f64(),
            m.ms_per_explore(),
            m.states_per_sec(),
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}

/// Appends `entry` to the JSON array in `path` (creating the file if
/// needed). The file is a plain array; history accumulates.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let Some(without_close) = trimmed.strip_suffix(']') else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{path} does not end in ']' — not a JSON array"),
                ));
            };
            let without_close = without_close.trim_end();
            if without_close == "[" {
                format!("[\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{entry}\n]\n"),
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn main() {
    let mut smoke = false;
    let mut label = "current".to_owned();
    let mut out = "BENCH_oracle.json".to_owned();
    let mut filter = String::new();
    let mut iters: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = args.next().expect("--out needs a value"),
            "--filter" => filter = args.next().expect("--filter needs a value"),
            "--iters" => {
                iters = Some(
                    args.next()
                        .expect("--iters needs a value")
                        .parse()
                        .expect("--iters needs a positive integer"),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_oracle [--smoke] [--label NAME] [--out PATH] \
                     [--filter SUBSTR] [--iters N]"
                );
                std::process::exit(2);
            }
        }
    }
    let max_iters = iters.unwrap_or(if smoke { 1 } else { 200_000 }).max(1);

    let mut specs: Vec<CaseSpec> = corpus_cases()
        .into_iter()
        .chain(case_study_cases())
        .chain(cond_cases())
        .chain([stress_case()])
        .map(CaseSpec::eager)
        .collect();
    specs.extend(scale_specs());
    specs.extend(prov_specs());
    specs.extend(analysis_specs());
    let selected: Vec<CaseSpec> = specs
        .into_iter()
        .filter(|s| s.name.contains(&filter))
        .collect();
    if selected.is_empty() {
        eprintln!("--filter {filter:?} matches no bench case");
        std::process::exit(2);
    }

    let mut measurements = Vec::new();
    for spec in selected {
        let m = match (spec.build)() {
            BenchCase::Explore(case) => run_case(&case, max_iters),
            BenchCase::Op { name, op } => run_op(&name, op, max_iters),
        };
        println!(
            "{:<28} {:>7} states {:>7} edges  {:>5} iters  {:>10.3} ms/explore  {:>12.0} states/s",
            m.name,
            m.states,
            m.edges,
            m.iters,
            m.ms_per_explore(),
            m.states_per_sec(),
        );
        measurements.push(m);
    }

    let entry = entry_json(&label, smoke, &measurements);
    if let Err(e) = append_entry(&out, &entry) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("recorded entry \"{label}\" in {out}");
}
