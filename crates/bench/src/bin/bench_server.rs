//! Server load generator: measures the aggregate cost of N rule-engine
//! sessions served concurrently by `starling-server` against the same N
//! sessions run as sequential one-shot `starling explore` CLI invocations,
//! and records the numbers in `BENCH_server.json`.
//!
//! The workload is deliberately seed-heavy: every one-shot invocation pays
//! process spawn + script parse + seed execution + rule compilation before
//! doing any useful work, while the server pays them once — the shared
//! program cache hands every later session a copy-on-write snapshot and a
//! refcounted compiled rule set. The speedup measured here is that
//! amortization (the harness does not assume extra cores).
//!
//! Usage:
//!
//! ```text
//! bench_server [--smoke] [--sessions N] [--label NAME] [--out PATH]
//! bench_server --durability [--smoke] [--commits N] [--label NAME] [--out PATH]
//! bench_server --scale [--smoke] [--sessions N] [--label NAME] [--out PATH]
//! ```
//!
//! * `--smoke` — small seed and few sessions (CI keep-alive mode);
//! * `--sessions` — number of sessions (default 64, smoke default 8;
//!   scale family: default 1024, smoke default 128);
//! * `--durability` — run the durability family instead: committed
//!   transitions per second through one engine session, in-memory vs a
//!   WAL-attached store with `sync=batch` vs `sync=always` (one `fsync`
//!   per commit) — the price tag on each sync policy;
//! * `--commits N` — committed transitions per durability config
//!   (default 2000, smoke default 300);
//! * `--scale` — run the scale family instead: the pooled executor vs the
//!   legacy thread-per-connection executor at the same core count —
//!   connection-churn throughput, ping latency percentiles (p50/p95/p99)
//!   across N concurrent sessions, cheap-op p99 while a heavy exec
//!   saturates one worker, and the idle-session footprint (threads and
//!   resident memory for N parked connections);
//! * `--label` / `--out` — as in `bench_oracle`; the output file holds a
//!   JSON array and each run **appends** one entry, preserving history.
//!
//! Requires the release CLI next to this binary (`cargo build --release
//! -p starling-cli -p starling-bench`). The scale family is in-process
//! only and needs no CLI binary.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use starling_engine::{FirstEligible, Outcome, Session};
use starling_server::{raise_fd_limit, Client, ScriptCache, Server, ServerConfig, Threading};
use starling_sql::json::Json;
use starling_storage::SyncPolicy;

/// Builds the seed-heavy workload: schema, `seed_rows` seed inserts, an
/// audit rule and a capping rule, and a one-row user transition probed by
/// `explore`.
fn workload_script(seed_rows: usize) -> String {
    let mut s = String::with_capacity(seed_rows * 40 + 512);
    s.push_str("create table account (id int, balance int);\n");
    s.push_str("create table audit_log (id int, balance int);\n");
    for i in 0..seed_rows {
        let _ = writeln!(s, "insert into account values ({i}, {});", (i * 37) % 1000);
    }
    s.push_str(
        "create rule audit on account when inserted then \
           insert into audit_log select id, balance from inserted end;\n\
         create rule cap on account when inserted, updated(balance) \
           if exists (select * from account where balance > 100000) \
           then update account set balance = 100000 where balance > 100000 end;\n\
         insert into account values (999001, 55);\n",
    );
    s
}

/// The release `starling` binary, expected beside this one.
fn cli_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("starling");
    assert!(
        p.exists(),
        "{} not found — build it first: cargo build --release -p starling-cli",
        p.display()
    );
    p
}

/// N sequential one-shot CLI invocations (spawn + parse + seed + compile +
/// explore each time). Returns total wall time.
fn run_baseline(cli: &PathBuf, script_path: &std::path::Path, sessions: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..sessions {
        let out = Command::new(cli)
            .arg("explore")
            .arg(script_path)
            .args(["--max-states", "10000", "--json"])
            .output()
            .expect("spawn starling explore");
        assert!(
            out.status.success(),
            "baseline explore failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    start.elapsed()
}

/// N concurrent sessions against an in-process server: each connects,
/// loads the script (one cache miss total), explores, digests, quits.
/// Returns (total wall time, cache hits, cache misses).
fn run_server(script: &str, sessions: usize) -> (Duration, u64, u64) {
    let server = Server::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let load = Json::obj([("op", Json::from("load")), ("script", Json::from(script))]).to_string();
    // Attach-by-digest: sessions try the cheap path first and only the
    // loser(s) of the initial race upload the full script.
    let attach = Json::obj([
        ("op", Json::from("load")),
        (
            "digest",
            Json::from(format!("{:016x}", ScriptCache::digest(script))),
        ),
    ])
    .to_string();
    let explore = r#"{"op":"explore","budget":{"max_states":10000}}"#.to_owned();
    let digest = r#"{"op":"digest"}"#.to_owned();

    let start = Instant::now();
    let digests: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let (load, attach, explore, digest) = (&load, &attach, &explore, &digest);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let ok = |line: &str, c: &mut Client| {
                        let resp = c.raw_request(line).expect("request");
                        let resp = Json::parse(&resp).expect("response json");
                        assert_eq!(
                            resp.get("ok"),
                            Some(&Json::Bool(true)),
                            "error response: {resp}"
                        );
                        resp.get("result").cloned().unwrap_or(Json::Null)
                    };
                    let attached = c.raw_request(attach).expect("request");
                    if !attached.contains("\"ok\":true") {
                        ok(load, &mut c);
                    }
                    ok(explore, &mut c);
                    let d = ok(digest, &mut c)
                        .get("digest")
                        .and_then(Json::as_str)
                        .expect("digest string")
                        .to_owned();
                    c.quit().expect("quit");
                    d
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session"))
            .collect()
    });
    let wall = start.elapsed();

    // Sanity: snapshot isolation means every session saw the same state.
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "sessions diverged: {digests:?}"
    );
    let (hits, misses) = server.shared().cache.stats();
    server.shutdown();
    server.join();
    (wall, hits, misses)
}

/// One durability config: `commits` committed transitions (each firing an
/// audit rule) through a single session, optionally WAL-attached. Returns
/// wall time for the commit loop (setup and teardown excluded).
fn run_durability_config(commits: usize, sync: Option<SyncPolicy>) -> Duration {
    let mut s = Session::new();
    s.execute_script(
        "create table account (id int, balance int); \
         create table audit_log (id int, balance int); \
         create rule audit on account when inserted then \
           insert into audit_log select id, balance from inserted end;",
    )
    .expect("seed script");
    let dir = sync.map(|policy| {
        let dir = std::env::temp_dir().join(format!(
            "starling-bench-durability-{}-{}",
            std::process::id(),
            policy.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        s.persist_to(&dir, policy).expect("persist_to");
        dir
    });
    let start = Instant::now();
    for i in 0..commits {
        s.execute_script(&format!("insert into account values ({i}, {});", i % 997))
            .expect("transition");
        let run = s.commit(&mut FirstEligible).expect("commit");
        assert_eq!(run.outcome, Outcome::Quiescent, "{:?}", run.error);
    }
    let wall = start.elapsed();
    if let Some(dir) = dir {
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }
    wall
}

/// The durability family: ops/sec for in-memory vs WAL `sync=batch` vs
/// WAL `sync=always`, appended to the JSON history as one entry.
fn run_durability(commits: usize, smoke: bool, label: &str, out: &str) {
    println!("durability workload: {commits} committed transitions per config");
    let configs: [(&str, Option<SyncPolicy>); 3] = [
        ("memory", None),
        ("wal_batch", Some(SyncPolicy::Batch)),
        ("wal_always", Some(SyncPolicy::Always)),
    ];
    let mut rates = Vec::new();
    for (name, sync) in configs {
        let wall = run_durability_config(commits, sync);
        let rate = commits as f64 / wall.as_secs_f64();
        println!(
            "{name:>10}: {:>8.3} s  ({rate:>10.0} commits/s)",
            wall.as_secs_f64()
        );
        rates.push((name, wall, rate));
    }
    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = format!(
        "  {{\n    \"label\": \"{}\",\n    \"unix_time\": {epoch},\n    \
         \"family\": \"durability\",\n    \"mode\": \"{}\",\n    \
         \"commits\": {commits}",
        label.replace('"', "'"),
        if smoke { "smoke" } else { "full" },
    );
    for (name, wall, rate) in &rates {
        let _ = write!(
            entry,
            ",\n    \"{name}_wall_s\": {:.6},\n    \"{name}_commits_per_s\": {rate:.1}",
            wall.as_secs_f64()
        );
    }
    entry.push_str("\n  }");
    if let Err(e) = append_entry(out, &entry) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("recorded durability entry \"{label}\" in {out}");
}

/// The q-th percentile (0.0..=1.0) of a latency sample, in microseconds.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A numeric field from `/proc/self/status` (e.g. `Threads`, `VmRSS` in
/// kB); 0 where procfs is unavailable.
fn proc_status(key: &str) -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix(key)?
                    .trim_start_matches(':')
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Connection churn: `total` short-lived sessions (connect, one ping
/// round-trip, quit) pushed through `drivers` concurrent client threads.
/// The legacy executor pays a thread spawn per connection *on its accept
/// thread*; the pooled reactor pays an O(1) registration.
fn run_churn(addr: std::net::SocketAddr, total: usize, drivers: usize) -> Duration {
    let ping = Json::obj([("op", Json::from("ping"))]);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for d in 0..drivers {
            let ping = &ping;
            scope.spawn(move || {
                let mine = total / drivers + usize::from(d < total % drivers);
                for _ in 0..mine {
                    let mut c = Client::connect(addr).expect("churn connect");
                    c.expect_ok(ping).expect("churn ping");
                    c.quit().expect("churn quit");
                }
            });
        }
    });
    start.elapsed()
}

/// Ping round-trip latencies across `sessions` concurrent open
/// connections, `rounds` pings each, driven by `drivers` client threads
/// (each thread walks its own connection set, so driver-side queueing is
/// identical for both executors). Returns sorted latencies in µs.
fn run_ping_latency(
    addr: std::net::SocketAddr,
    sessions: usize,
    rounds: usize,
    drivers: usize,
) -> Vec<u64> {
    let ping = Json::obj([("op", Json::from("ping"))]);
    let mut all: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let ping = &ping;
                scope.spawn(move || {
                    let mine = sessions / drivers + usize::from(d < sessions % drivers);
                    let mut conns: Vec<Client> = (0..mine)
                        .map(|_| Client::connect(addr).expect("latency connect"))
                        .collect();
                    let mut lat = Vec::with_capacity(mine * rounds);
                    for _ in 0..rounds {
                        for c in conns.iter_mut() {
                            let t = Instant::now();
                            c.expect_ok(ping).expect("latency ping");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    for c in conns.iter_mut() {
                        c.quit().expect("latency quit");
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("latency driver"))
            .collect()
    });
    all.sort_unstable();
    all
}

/// Aggregate pipelined throughput: every session sends `batch` pings in
/// one write, then reads all responses — `sessions * batch` requests with
/// maximum decode-ahead. This is where executor overhead (syscalls per
/// response, scheduler rounds, context switches) dominates, because the
/// per-request work is trivial.
fn run_pipeline_throughput(
    addr: std::net::SocketAddr,
    sessions: usize,
    batch: usize,
    drivers: usize,
) -> f64 {
    let pings: Vec<Json> = (0..batch)
        .map(|_| Json::obj([("op", Json::from("ping"))]))
        .collect();
    // The timed window ends when the last driver has drained its last
    // response; connection teardown (quit round-trips) is not throughput.
    let drained = std::sync::Mutex::new(Duration::ZERO);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for d in 0..drivers {
            let (pings, drained) = (&pings, &drained);
            scope.spawn(move || {
                let mine = sessions / drivers + usize::from(d < sessions % drivers);
                let mut conns: Vec<Client> = (0..mine)
                    .map(|_| Client::connect(addr).expect("pipeline connect"))
                    .collect();
                // Send all batches first (the server decodes ahead), then
                // drain all responses.
                for c in conns.iter_mut() {
                    c.send_batch(pings).expect("pipeline send");
                }
                for c in conns.iter_mut() {
                    for _ in 0..pings.len() {
                        let resp = c.recv().expect("pipeline recv");
                        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp}");
                    }
                }
                let t = start.elapsed();
                let mut max = drained.lock().unwrap();
                if t > *max {
                    *max = t;
                }
                drop(max);
                for c in conns.iter_mut() {
                    c.quit().expect("pipeline quit");
                }
            });
        }
    });
    let wall = *drained.lock().unwrap();
    (sessions * batch) as f64 / wall.as_secs_f64()
}

/// Thread-count and resident-memory cost of `sessions` idle connections:
/// measures `/proc/self/status` before and after opening them (server and
/// harness share the process, so the delta includes everything the server
/// allocates per parked session — legacy: a full thread; pool: a state
/// object).
fn run_idle_footprint(addr: std::net::SocketAddr, sessions: usize) -> (i64, i64) {
    let threads0 = proc_status("Threads");
    let rss0 = proc_status("VmRSS");
    let idle: Vec<Client> = (0..sessions)
        .map(|_| Client::connect(addr).expect("idle connect"))
        .collect();
    // One round-trip proves every accept (and, legacy, every spawn) is done.
    let mut probe = Client::connect(addr).expect("idle probe");
    probe
        .expect_ok(&Json::obj([("op", Json::from("ping"))]))
        .expect("idle probe ping");
    let threads = proc_status("Threads") - threads0;
    let rss_kb = proc_status("VmRSS") - rss0;
    drop(probe);
    drop(idle);
    (threads, rss_kb)
}

/// One executor's scale measurements.
struct ScaleRow {
    churn_per_s: f64,
    pipelined_per_s: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    idle_threads: i64,
    idle_rss_kb: i64,
}

/// Requests per pipelined batch in the throughput phase.
const PIPELINE_BATCH: usize = 64;

/// Runs churn + pipelined throughput + latency + idle-footprint against
/// one executor.
fn run_scale_mode(threading: Threading, sessions: usize, rounds: usize) -> ScaleRow {
    let cfg = ServerConfig {
        threading,
        // The pipelined phase intentionally floods the server with
        // sessions*batch decode-ahead requests; disable admission control
        // so the bench measures executor overhead, not refusal latency.
        max_inflight: 0,
        ..ServerConfig::default()
    };
    let server = Server::bind_cfg("127.0.0.1:0", None, cfg).expect("bind");
    let addr = server.local_addr();
    let drivers = sessions.clamp(1, 8);

    let churn_wall = run_churn(addr, sessions, drivers);
    let pipelined_per_s = run_pipeline_throughput(addr, sessions, PIPELINE_BATCH, drivers);
    let lat = run_ping_latency(addr, sessions, rounds, drivers);
    let (idle_threads, idle_rss_kb) = run_idle_footprint(addr, sessions);

    server.shutdown();
    server.join();
    ScaleRow {
        churn_per_s: sessions as f64 / churn_wall.as_secs_f64(),
        pipelined_per_s,
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
        idle_threads,
        idle_rss_kb,
    }
}

/// Cheap-op latency percentiles on the pooled executor while one heavy
/// exec (a non-terminating rule under a huge consideration budget)
/// saturates a worker — the fairness datapoint behind the
/// `cheap_sessions_pass_a_heavy_pipeline` regression test.
fn run_contended(sessions: usize, rounds: usize) -> (u64, u64, u64) {
    let server = Server::bind_cfg("127.0.0.1:0", None, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let heavy = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("heavy connect");
        c.expect_ok(&Json::obj([
            ("op", Json::from("load")),
            (
                "script",
                Json::from(
                    "create table t (x int);\n\
                     create rule grow on t when inserted then \
                       insert into t select x + 1 from inserted end;",
                ),
            ),
        ]))
        .expect("heavy load");
        // Budget-bounded, with a wall-clock backstop: the bench must not
        // hang if the machine is slow.
        let resp = c
            .call(&Json::obj([
                ("op", Json::from("exec")),
                ("sql", Json::from("insert into t values (1);")),
                (
                    "budget",
                    Json::obj([
                        ("max_considerations", Json::from(4_000_000i64)),
                        ("timeout_ms", Json::from(20_000i64)),
                    ]),
                ),
            ]))
            .expect("heavy exec");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{resp}");
        let _ = c.quit();
    });
    // Measure while the heavy exec holds its worker.
    let drivers = sessions.clamp(1, 8);
    let lat = run_ping_latency(addr, sessions, rounds, drivers);
    heavy.join().expect("heavy session");
    server.shutdown();
    server.join();
    (
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
    )
}

/// The scale family: pooled vs thread-per-connection at equal core count,
/// appended to the JSON history as one entry.
fn run_scale(sessions: usize, smoke: bool, label: &str, out: &str) {
    raise_fd_limit(16 * 1024);
    let rounds = if smoke { 4 } else { 8 };
    println!("scale workload: {sessions} sessions, {rounds} ping rounds each");
    let pool = run_scale_mode(Threading::Pool, sessions, rounds);
    let legacy = run_scale_mode(Threading::PerConnection, sessions, rounds);
    // Contended latency uses a smaller cheap cohort so the datapoint is
    // about scheduling, not client-side queueing.
    let contended_sessions = sessions.min(256);
    let (c50, c95, c99) = run_contended(contended_sessions, rounds);

    let churn_speedup = pool.churn_per_s / legacy.churn_per_s.max(1e-9);
    let pipelined_speedup = pool.pipelined_per_s / legacy.pipelined_per_s.max(1e-9);
    for (name, row) in [("pool", &pool), ("per_conn", &legacy)] {
        println!(
            "{name:>9}: churn {:>9.0} conns/s | pipelined {:>9.0} req/s | \
             ping p50/p95/p99 {:>5}/{:>5}/{:>5} µs | idle +{} threads, +{} kB rss",
            row.churn_per_s,
            row.pipelined_per_s,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.idle_threads,
            row.idle_rss_kb,
        );
    }
    println!(
        "contended: ping p50/p95/p99 {c50}/{c95}/{c99} µs under one heavy exec \
         ({contended_sessions} cheap sessions)"
    );
    println!("pipelined speedup: {pipelined_speedup:.2}x  churn speedup: {churn_speedup:.2}x");

    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = format!(
        "  {{\n    \"label\": \"{}\",\n    \"unix_time\": {epoch},\n    \
         \"family\": \"scale\",\n    \"mode\": \"{}\",\n    \
         \"sessions\": {sessions},\n    \"rounds\": {rounds},\n    \
         \"pipeline_batch\": {PIPELINE_BATCH}",
        label.replace('"', "'"),
        if smoke { "smoke" } else { "full" },
    );
    for (name, row) in [("pool", &pool), ("per_conn", &legacy)] {
        let _ = write!(
            entry,
            ",\n    \"{name}_churn_conns_per_s\": {:.1},\n    \
             \"{name}_pipelined_req_per_s\": {:.1},\n    \
             \"{name}_ping_p50_us\": {},\n    \"{name}_ping_p95_us\": {},\n    \
             \"{name}_ping_p99_us\": {},\n    \"{name}_idle_threads\": {},\n    \
             \"{name}_idle_rss_kb\": {}",
            row.churn_per_s,
            row.pipelined_per_s,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.idle_threads,
            row.idle_rss_kb,
        );
    }
    let _ = write!(
        entry,
        ",\n    \"pipelined_speedup\": {pipelined_speedup:.3},\n    \
         \"churn_speedup\": {churn_speedup:.3},\n    \
         \"contended_sessions\": {contended_sessions},\n    \
         \"contended_p50_us\": {c50},\n    \"contended_p95_us\": {c95},\n    \
         \"contended_p99_us\": {c99}\n  }}"
    );
    if let Err(e) = append_entry(out, &entry) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("recorded scale entry \"{label}\" in {out}");
}

/// Appends `entry` to the JSON array in `path` (creating the file if
/// needed), preserving history — same convention as `bench_oracle`.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let Some(without_close) = trimmed.strip_suffix(']') else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{path} does not end in ']' — not a JSON array"),
                ));
            };
            let without_close = without_close.trim_end();
            if without_close == "[" {
                format!("[\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!("[\n{entry}\n]\n"),
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn main() {
    let mut smoke = false;
    let mut durability = false;
    let mut scale = false;
    let mut sessions: Option<usize> = None;
    let mut commits: Option<usize> = None;
    let mut label = "current".to_owned();
    let mut out = "BENCH_server.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--durability" => durability = true,
            "--scale" => scale = true,
            "--sessions" => {
                sessions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sessions needs a number"),
                )
            }
            "--commits" => {
                commits = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--commits needs a number"),
                )
            }
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_server [--smoke] [--sessions N] [--label NAME] [--out PATH]\n       \
                     bench_server --durability [--smoke] [--commits N] [--label NAME] [--out PATH]\n       \
                     bench_server --scale [--smoke] [--sessions N] [--label NAME] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if durability {
        let commits = commits.unwrap_or(if smoke { 300 } else { 2000 });
        run_durability(commits, smoke, &label, &out);
        return;
    }
    if scale {
        let sessions = sessions.unwrap_or(if smoke { 128 } else { 1024 });
        run_scale(sessions, smoke, &label, &out);
        return;
    }
    let sessions = sessions.unwrap_or(if smoke { 8 } else { 64 });
    let seed_rows = if smoke { 200 } else { 4000 };

    let script = workload_script(seed_rows);
    let script_path = std::env::temp_dir().join(format!("bench_server_{}.rql", std::process::id()));
    std::fs::write(&script_path, &script).expect("write workload script");

    let cli = cli_path();
    println!("workload: {seed_rows} seed rows, {sessions} sessions");
    let baseline = run_baseline(&cli, &script_path, sessions);
    println!(
        "baseline: {sessions} one-shot CLI invocations  {:>8.3} s  ({:.1} ms/session)",
        baseline.as_secs_f64(),
        baseline.as_secs_f64() * 1e3 / sessions as f64,
    );
    let (server, hits, misses) = run_server(&script, sessions);
    println!(
        "server:   {sessions} concurrent sessions       {:>8.3} s  ({:.1} ms/session, \
         cache {hits} hits / {misses} misses)",
        server.as_secs_f64(),
        server.as_secs_f64() * 1e3 / sessions as f64,
    );
    let speedup = baseline.as_secs_f64() / server.as_secs_f64();
    println!("aggregate speedup: {speedup:.2}x");
    let _ = std::fs::remove_file(&script_path);

    let epoch = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "  {{\n    \"label\": \"{}\",\n    \"unix_time\": {epoch},\n    \"mode\": \"{}\",\n    \
         \"sessions\": {sessions},\n    \"seed_rows\": {seed_rows},\n    \
         \"baseline_wall_s\": {:.6},\n    \"server_wall_s\": {:.6},\n    \
         \"cache_hits\": {hits},\n    \"cache_misses\": {misses},\n    \
         \"speedup\": {speedup:.3}\n  }}",
        label.replace('"', "'"),
        if smoke { "smoke" } else { "full" },
        baseline.as_secs_f64(),
        server.as_secs_f64(),
    );
    if let Err(e) = append_entry(&out, &entry) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("recorded entry \"{label}\" in {out}");
}
