//! Regenerates every experiment in `EXPERIMENTS.md` (E1–E13) and prints
//! the result tables.
//!
//! ```sh
//! cargo run --release -p starling-bench --bin experiments            # all
//! cargo run --release -p starling-bench --bin experiments -- e3 e6   # some
//! ```
//!
//! The paper is a theory paper — its "evaluation" is its figures, theorems,
//! case studies, and the Section 9 subsumption claim. Each experiment here
//! regenerates the corresponding artifact: soundness and conservatism rates
//! against the exhaustive oracle, the subsumption table, the case-study
//! narratives, and the scalability curves.

use std::time::Instant;

use starling_analysis::certifications::Certifications;
use starling_analysis::commutativity::{
    noncommutativity_reasons, noncommutativity_reasons_lemma61,
};
use starling_analysis::confluence::{analyze_confluence, corollary_checks};
use starling_analysis::context::AnalysisContext;
use starling_analysis::observable::{analyze_observable_determinism, corollary_8_2};
use starling_analysis::partial::{analyze_partial_confluence, significant_rules};
use starling_analysis::partition::{partition_rules, IncrementalAnalyzer};
use starling_analysis::restricted::analyze_restricted;
use starling_analysis::termination::{analyze_termination, TerminationVerdict};
use starling_analysis::InteractiveSession;
use starling_baselines::compare_all;
use starling_bench::{build, corpus_config, scale_config};
use starling_engine::{
    consider_rule, explore, explore_from_ops, EvalMode, ExecState, ExploreConfig, RuleId, RuleSet,
};
use starling_storage::Op;
use starling_workloads::{constraints, power_network};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("e1") {
        e1_commutativity();
    }
    if want("e2") || want("e3") || want("e5") {
        e2_e3_e5_oracle_agreement();
    }
    if want("e4") {
        e4_partial_confluence();
    }
    if want("e6") {
        e6_subsumption();
    }
    if want("e7") {
        e7_power_network();
    }
    if want("e8") {
        e8_interactive_confluence();
    }
    if want("e9") {
        e9_scalability();
    }
    if want("e10") {
        e10_corollaries();
    }
    if want("e11") {
        e11_restricted();
    }
    if want("e12") {
        e12_incremental();
    }
    if want("e13") {
        e13_masking_finding();
    }
    if want("e14") {
        e14_refinement();
    }
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// E1 — Lemma 6.1 commutativity vs the Figure 1 diamond oracle.
fn e1_commutativity() {
    header(
        "E1",
        "commutativity (Lemma 6.1 + condition 2') vs diamond oracle",
    );
    let mut total_pairs = 0usize;
    let mut static_commute = 0usize;
    let mut diamonds = 0usize;
    let mut violations = 0usize;
    let mut flagged_with_divergence = 0usize;
    let mut flagged_checked = 0usize;

    for seed in 0..60u64 {
        // Priority-free config: priorities are irrelevant to the diamond,
        // and without them commuting pairs co-trigger far more often.
        let cfg = starling_workloads::random::RandomConfig {
            n_rules: 6,
            p_priority: 0.0,
            p_observable: 0.3,
            ..corpus_config(seed)
        };
        let (w, rules, _ctx) = build(&cfg);
        let base_db = w.seed_database();
        let n = rules.len();
        for i in 0..n {
            for j in (i + 1)..n {
                total_pairs += 1;
                let commute =
                    noncommutativity_reasons(&rules.rules()[i].sig, &rules.rules()[j].sig)
                        .is_empty();
                static_commute += usize::from(commute);
                for salt in 0..4u64 {
                    let actions = w.user_transition(salt + 100);
                    let mut working = base_db.clone();
                    let Ok(ops) =
                        starling_engine::exec_graph::apply_user_actions(&mut working, &actions)
                    else {
                        continue;
                    };
                    let state = ExecState::new(working, rules.len(), &ops);
                    let (ri, rj) = (RuleId(i), RuleId(j));
                    if !state.is_triggered(&rules, ri) || !state.is_triggered(&rules, rj) {
                        continue;
                    }
                    let mut s1 = state.clone();
                    consider_rule(&rules, &mut s1, ri, &base_db, EvalMode::default()).unwrap();
                    consider_rule(&rules, &mut s1, rj, &base_db, EvalMode::default()).unwrap();
                    let mut s2 = state.clone();
                    consider_rule(&rules, &mut s2, rj, &base_db, EvalMode::default()).unwrap();
                    consider_rule(&rules, &mut s2, ri, &base_db, EvalMode::default()).unwrap();
                    let same = s1.semantic_digest(&rules) == s2.semantic_digest(&rules);
                    if commute {
                        diamonds += 1;
                        violations += usize::from(!same);
                    } else {
                        flagged_checked += 1;
                        flagged_with_divergence += usize::from(!same);
                    }
                }
            }
        }
    }
    println!("rule pairs examined:               {total_pairs}");
    println!("statically commuting:              {static_commute}");
    println!("diamond checks on commuting pairs: {diamonds}");
    println!("diamond violations (MUST be 0):    {violations}");
    println!(
        "flagged pairs with real divergence: {flagged_with_divergence}/{flagged_checked} \
         (the rest is conservatism)"
    );
    assert_eq!(violations, 0, "E1 soundness violated");
}

/// E2/E3/E5 — static verdicts vs oracle over the random corpus.
fn e2_e3_e5_oracle_agreement() {
    header(
        "E2/E3/E5",
        "termination / confluence / observable determinism vs oracle",
    );
    let cfg = ExploreConfig::default()
        .with_max_states(2_000)
        .with_max_paths(20_000);
    let mut rows = Vec::new();
    #[derive(Default)]
    struct Agg {
        accepted: usize,
        refuted: usize,
        rejected: usize,
        rejected_but_clean: usize,
    }
    let (mut term, mut conf, mut obs) = (Agg::default(), Agg::default(), Agg::default());

    for seed in 0..80u64 {
        let (w, rules, ctx) = build(&corpus_config(seed));
        let t = analyze_termination(&ctx);
        let c = analyze_confluence(&ctx);
        let o = analyze_observable_determinism(&ctx);
        let term_ok = t.verdict == TerminationVerdict::Guaranteed;
        let conf_ok = c.requirement_holds() && t.is_guaranteed();
        let obs_ok = o.is_guaranteed() && term_ok;

        let base_db = w.seed_database();
        let mut oracle_term = Some(true);
        let mut oracle_conf = Some(true);
        let mut oracle_obs = Some(true);
        for salt in 0..3u64 {
            let actions = w.user_transition(salt * 31 + 5);
            let mut working = base_db.clone();
            let Ok(ops) = starling_engine::exec_graph::apply_user_actions(&mut working, &actions)
            else {
                continue;
            };
            let Ok(g) = explore_from_ops(&rules, &base_db, working, &ops, &cfg) else {
                continue;
            };
            let merge = |acc: &mut Option<bool>, v: Option<bool>| match (v, &acc) {
                (Some(false), _) => *acc = Some(false),
                (None, Some(true)) => *acc = None,
                _ => {}
            };
            merge(&mut oracle_term, g.terminates());
            merge(&mut oracle_conf, g.confluent());
            merge(&mut oracle_obs, g.observably_deterministic(&cfg));
        }

        let tally = |agg: &mut Agg, ok: bool, oracle: Option<bool>| {
            if ok {
                agg.accepted += 1;
                agg.refuted += usize::from(oracle == Some(false));
            } else {
                agg.rejected += 1;
                agg.rejected_but_clean += usize::from(oracle == Some(true));
            }
        };
        tally(&mut term, term_ok, oracle_term);
        tally(&mut conf, conf_ok, oracle_conf);
        tally(&mut obs, obs_ok, oracle_obs);
        rows.push((seed, term_ok, conf_ok, obs_ok));
    }

    println!("property      accepted  oracle-refuted  rejected  rejected-but-clean*");
    for (name, a) in [
        ("termination", &term),
        ("confluence", &conf),
        ("observable", &obs),
    ] {
        println!(
            "{name:<13} {:>8}  {:>14}  {:>8}  {:>18}",
            a.accepted, a.refuted, a.rejected, a.rejected_but_clean
        );
    }
    println!("* clean on every sampled initial state — conservatism, not error");
    assert_eq!(
        term.refuted + conf.refuted + obs.refuted,
        0,
        "soundness violated"
    );
}

/// E4 — Sig(T') growth and partial-confluence verdicts.
fn e4_partial_confluence() {
    header("E4", "partial confluence: Sig(T') growth as T' grows");
    println!("seed  |T'|  |Sig|  rules  partial-confluent");
    for seed in [3u64, 7, 11, 19] {
        // A sparse 12-rule workload over 12 tables: Sig(T') grows with T'
        // instead of immediately saturating.
        let cfg = starling_workloads::random::RandomConfig {
            n_tables: 12,
            n_cols: 2,
            n_rules: 12,
            max_actions: 1,
            p_condition: 0.3,
            p_observable: 0.0,
            p_priority: 0.2,
            rows_per_table: 1,
            seed,
        };
        let (_w, rules, ctx) = build(&cfg);
        let all_tables: Vec<String> = (0..12).map(|i| format!("t{i}")).collect();
        for k in [1usize, 3, 6, 12] {
            let subset: Vec<&str> = all_tables.iter().take(k).map(String::as_str).collect();
            let sig = significant_rules(&ctx, &subset);
            let p = analyze_partial_confluence(&ctx, &subset);
            println!(
                "{seed:>4}  {k:>4}  {:>5}  {:>5}  {}",
                sig.len(),
                rules.len(),
                p.is_guaranteed()
            );
        }
    }
}

/// E6 — the Section 9 subsumption table.
fn e6_subsumption() {
    header("E6", "subsumption: Starling ⊇ HH91 ⊇ ZH90 ⊇ Ras90");
    let n = 200u64;
    // Two corpora: the standard (dense) one, where rules interact heavily
    // and the stricter criteria accept almost nothing, and a sparse one
    // (many tables, few shared references) where the whole chain separates.
    let sparse = |seed: u64| starling_workloads::random::RandomConfig {
        n_tables: 10,
        n_cols: 2,
        n_rules: 3,
        max_actions: 1,
        p_condition: 0.2,
        p_observable: 0.0,
        p_priority: 0.3,
        rows_per_table: 1,
        seed,
    };
    for (label, dense) in [("dense corpus", true), ("sparse corpus", false)] {
        let mut counts = [0usize; 4];
        let mut proper = [0usize; 3];
        let mut violations = 0usize;
        for seed in 0..n {
            let cfg = if dense {
                corpus_config(seed)
            } else {
                sparse(seed)
            };
            let (_w, _rules, ctx) = build(&cfg);
            let row = compare_all(&ctx);
            violations += usize::from(row.subsumption_violation().is_some());
            counts[0] += usize::from(row.starling);
            counts[1] += usize::from(row.hh91);
            counts[2] += usize::from(row.zh90);
            counts[3] += usize::from(row.ras90);
            proper[0] += usize::from(row.starling && !row.hh91);
            proper[1] += usize::from(row.hh91 && !row.zh90);
            proper[2] += usize::from(row.zh90 && !row.ras90);
        }
        println!("-- {label} --");
        println!("criterion     accepts/{n}");
        for (name, c) in ["starling", "hh91-analog", "zh90-analog", "ras90-analog"]
            .iter()
            .zip(counts)
        {
            println!("{name:<13} {c}");
        }
        println!(
            "proper separations: starling>hh91: {}, hh91>zh90: {}, zh90>ras90: {}",
            proper[0], proper[1], proper[2]
        );
        println!("subsumption violations (MUST be 0): {violations}");
        assert_eq!(violations, 0);
    }
}

/// E7 — the power-network termination case study.
fn e7_power_network() {
    header("E7", "power-network case study (CW90, paper Section 5)");
    let w = power_network::workload();
    let (db, defs, directives) = w.build().unwrap();
    let rules = RuleSet::compile(&defs, db.catalog()).unwrap();

    let bare = AnalysisContext::from_ruleset(&rules, Certifications::new());
    let t0 = analyze_termination(&bare);
    println!("cycles found: {}", t0.cycles.len());
    for c in &t0.cycles {
        println!(
            "  [{}] auto-certificates: {}, discharged: {}",
            c.rules.join(" -> "),
            c.certificates.len(),
            c.discharged
        );
    }
    let certs = Certifications::from_directives(&directives);
    let ctx = AnalysisContext::from_ruleset(&rules, certs);
    let t1 = analyze_termination(&ctx);
    println!("with user certificate: verdict = {:?}", t1.verdict);

    let g = explore(
        &rules,
        &db,
        &w.user_actions().unwrap(),
        &ExploreConfig::default(),
    )
    .unwrap();
    println!(
        "oracle: {} states, terminates = {:?}",
        g.states.len(),
        g.terminates()
    );
}

/// E8 — the iterative-confluence case study.
fn e8_interactive_confluence() {
    header(
        "E8",
        "constraint maintenance: the Section 6.4 interactive loop",
    );
    let w = constraints::workload();
    let (db, defs, _) = w.build().unwrap();
    let mut session = InteractiveSession::new(db.catalog().clone(), defs);
    let initial = session.analyze("initial").unwrap();
    println!(
        "initial: {} confluence violation(s), {} open cycle(s)",
        initial.confluence.violations.len(),
        initial
            .termination
            .cycles
            .iter()
            .filter(|c| !c.discharged)
            .count()
    );
    let added = session.order_until_confluent(25).unwrap();
    println!("orderings added by the loop: {added:?}");
    for (i, h) in session.history().iter().enumerate() {
        println!(
            "  round {i}: {} violation(s) [{}]",
            h.confluence_violations, h.action
        );
    }
    session.certify_terminates("cap_salary", "cap converges in one step");
    session.certify_terminates("maintain_totals", "recomputation is idempotent");
    session.certify_terminates("ri_emp_dept", "rollback ends processing");
    let f = session.analyze("final").unwrap();
    println!(
        "final: requirement holds = {}, termination = {:?}",
        f.confluence.requirement_holds(),
        f.termination.verdict
    );
}

/// E9 — analysis scalability (quick wall-clock sweep; criterion benches
/// give the rigorous numbers).
fn e9_scalability() {
    header(
        "E9",
        "analysis wall time vs rule-set size (single-shot, see benches)",
    );
    println!("rules  graph(us)  termination(us)  confluence(us)  observable(us)");
    for n in [10usize, 25, 50, 100, 200, 400] {
        let (_w, _rules, ctx) = build(&scale_config(n, 42));
        let t0 = Instant::now();
        let _ = starling_analysis::TriggeringGraph::build(&ctx);
        let g_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let _ = analyze_termination(&ctx);
        let t_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let _ = analyze_confluence(&ctx);
        let c_us = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let _ = analyze_observable_determinism(&ctx);
        let o_us = t0.elapsed().as_micros();
        println!("{n:>5}  {g_us:>9}  {t_us:>15}  {c_us:>14}  {o_us:>14}");
    }
}

/// E10 — corollary lints hold on every accepted rule set.
fn e10_corollaries() {
    header("E10", "corollaries 6.8/6.10 and 8.2 on accepted rule sets");
    let mut accepted = 0usize;
    let mut failures = 0usize;
    for seed in 0..200u64 {
        let (_w, _rules, ctx) = build(&corpus_config(seed));
        let conf = analyze_confluence(&ctx);
        if conf.requirement_holds() {
            accepted += 1;
            failures += corollary_checks(&ctx, &conf).len();
        }
        let obs = analyze_observable_determinism(&ctx);
        if obs.is_guaranteed() {
            failures += corollary_8_2(&ctx, &obs).len();
        }
    }
    println!("accepted rule sets: {accepted}; corollary failures (MUST be 0): {failures}");
    assert_eq!(failures, 0);
}

/// E11 — restricted user operations rescue properties.
fn e11_restricted() {
    header("E11", "restricted user operations (paper Section 9)");
    let mut total = 0usize;
    let mut rescued_term = 0usize;
    let mut rescued_conf = 0usize;
    for seed in 0..100u64 {
        let (w, _rules, ctx) = build(&corpus_config(seed));
        let full_term = analyze_termination(&ctx).is_guaranteed();
        let full_conf = analyze_confluence(&ctx).requirement_holds();
        if full_term && full_conf {
            continue;
        }
        total += 1;
        // Restrict to inserts into the first table only.
        let allowed = vec![Op::Insert("t0".to_owned())];
        let r = analyze_restricted(&ctx, &allowed);
        if !full_term && r.termination.is_guaranteed() {
            rescued_term += 1;
        }
        if !full_conf && r.confluence.requirement_holds() {
            rescued_conf += 1;
        }
        let _ = w;
    }
    println!(
        "problematic rule sets: {total}; termination rescued by restriction: \
         {rescued_term}; confluence rescued: {rescued_conf}"
    );
}

/// E12 — incremental re-analysis.
fn e12_incremental() {
    header("E12", "partitioned incremental analysis (paper Section 9)");
    let ctx = starling_bench::partitioned_context(8);
    let parts = partition_rules(&ctx);
    println!(
        "{}-rule workload splits into {} partition(s)",
        ctx.len(),
        parts.len()
    );
    let mut inc = IncrementalAnalyzer::new();
    let _ = inc.analyze(&ctx);
    println!(
        "cold run: {} recomputed, {} cached",
        inc.last_recomputed, inc.last_cached
    );
    let mut edited = ctx.clone();
    let name = edited.name(0).to_owned();
    edited.certs.certify_terminates(&name, "edit");
    let _ = inc.analyze(&edited);
    println!(
        "after single-rule edit: {} recomputed, {} cached",
        inc.last_recomputed, inc.last_cached
    );
}

/// E14 — the Section 9 predicate-level refinement: how many conservative
/// rejections does it recover on a corpus biased toward guarded writes?
fn e14_refinement() {
    header(
        "E14",
        "predicate-level refinement (paper Section 9, 'less conservative methods')",
    );
    let mut rejected_plain = 0usize;
    let mut recovered = 0usize;
    for seed in 0..150u64 {
        let (_w, rules, ctx) = build(&corpus_config(seed));
        let plain = analyze_confluence(&ctx).requirement_holds();
        if plain {
            continue;
        }
        rejected_plain += 1;
        let refined_ctx =
            AnalysisContext::from_ruleset(&rules, Certifications::new()).with_refinement();
        if analyze_confluence(&refined_ctx).requirement_holds() {
            recovered += 1;
        }
    }
    println!(
        "confluence rejections (plain): {rejected_plain}; recovered by refinement: {recovered}"
    );
    println!(
        "(the random generator rarely produces provably-disjoint predicates; \
         the curated cases are in tests/refinement_oracle.rs)"
    );
}

/// E13 — the masking finding (see tests/masking_finding.rs).
fn e13_masking_finding() {
    header(
        "E13",
        "finding: Lemma 6.1 vs the strict Section 2 semantics (insert-masking)",
    );
    let script = "
        create table t0 (x int); create table t1 (y int); create table t2 (z int);
    ";
    let rules_src = "
        create rule rule_a on t2 when inserted then insert into t0 values (8)
          precedes rule_d end;
        create rule rule_c on t0 when deleted then update t1 set y = y + 1
          precedes rule_d end;
        create rule rule_d on t1 when updated(y) then delete from t0 end;
    ";
    let mut session = starling_engine::Session::new();
    session.execute_script(script).unwrap();
    session
        .execute_script("insert into t0 values (5); insert into t1 values (0);")
        .unwrap();
    session.commit(&mut starling_engine::FirstEligible).unwrap();
    let defs: Vec<_> = starling_sql::parse_script(rules_src)
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            starling_sql::ast::Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
    let rules = RuleSet::compile(&defs, session.db().catalog()).unwrap();
    let a = rules.by_name("rule_a").unwrap();
    let c = rules.by_name("rule_c").unwrap();
    println!(
        "Lemma 6.1 (paper-exact) reasons for (rule_a, rule_c): {:?}",
        noncommutativity_reasons_lemma61(&a.sig, &c.sig)
    );
    println!(
        "Starling default reasons:                            {:?}",
        noncommutativity_reasons(&a.sig, &c.sig)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    let user: Vec<_> = starling_sql::parse_script("delete from t0; insert into t2 values (1);")
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            starling_sql::ast::Statement::Dml(x) => Some(x),
            _ => None,
        })
        .collect();
    let g = explore(&rules, session.db(), &user, &ExploreConfig::default()).unwrap();
    println!(
        "oracle: terminates = {:?}, distinct final DB states = {} (paper-exact \
         analysis accepts; Starling's condition 2' rejects)",
        g.terminates(),
        g.final_db_digests().len()
    );
}
