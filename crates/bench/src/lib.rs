//! Shared corpus builders for the Starling benchmarks and the
//! `experiments` binary (see `EXPERIMENTS.md` at the repository root for
//! the experiment index E1–E13).

use starling_analysis::certifications::Certifications;
use starling_analysis::context::AnalysisContext;
use starling_engine::RuleSet;
use starling_workloads::random::{generate, GeneratedWorkload, RandomConfig};

/// The standard experiment corpus configuration (matches the calibration
/// used by the integration tests: a healthy mix of accepted and rejected
/// rule sets).
pub fn corpus_config(seed: u64) -> RandomConfig {
    RandomConfig {
        n_tables: 4,
        n_cols: 2,
        n_rules: 4,
        max_actions: 2,
        p_condition: 0.5,
        p_observable: 0.2,
        p_priority: 0.4,
        rows_per_table: 2,
        seed,
    }
}

/// A scalability-sweep configuration with `n_rules` rules over
/// proportionally many tables (keeps triggering density roughly constant
/// as size grows).
pub fn scale_config(n_rules: usize, seed: u64) -> RandomConfig {
    RandomConfig {
        n_tables: (n_rules / 2).max(2),
        n_cols: 3,
        n_rules,
        max_actions: 2,
        p_condition: 0.5,
        p_observable: 0.1,
        p_priority: 0.3,
        rows_per_table: 2,
        seed,
    }
}

/// Generates and compiles a workload, returning everything the analyses
/// need.
pub fn build(cfg: &RandomConfig) -> (GeneratedWorkload, RuleSet, AnalysisContext) {
    let w = generate(cfg);
    let rules = w.compile();
    let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
    (w, rules, ctx)
}

/// A sparse corpus configuration: many tables, few rules, so rule sets
/// frequently decompose into independent groups and the strict comparator
/// criteria accept a meaningful fraction.
pub fn sparse_config(seed: u64) -> RandomConfig {
    RandomConfig {
        n_tables: 10,
        n_cols: 2,
        n_rules: 3,
        max_actions: 1,
        p_condition: 0.2,
        p_observable: 0.0,
        p_priority: 0.3,
        rows_per_table: 1,
        seed,
    }
}

/// Builds `k` genuinely independent partitions of ~5 rules each by
/// generating `k` small workloads over disjoint, namespaced table sets
/// (used by E12 and the incremental bench).
pub fn partitioned_context(k: usize) -> AnalysisContext {
    use starling_sql::RuleDef;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    let mut catalog = Catalog::new();
    let mut defs: Vec<RuleDef> = Vec::new();
    for p in 0..k {
        let w = generate(&RandomConfig {
            n_tables: 3,
            n_cols: 2,
            n_rules: 5,
            max_actions: 2,
            p_condition: 0.5,
            p_observable: 0.1,
            p_priority: 0.3,
            rows_per_table: 2,
            seed: p as u64,
        });
        for schema in w.catalog.tables() {
            catalog
                .add_table(
                    TableSchema::new(
                        format!("p{p}_{}", schema.name),
                        schema
                            .columns
                            .iter()
                            .map(|c| ColumnDef {
                                name: c.name.clone(),
                                ty: ValueType::Int,
                                nullable: c.nullable,
                            })
                            .collect(),
                    )
                    .expect("distinct columns"),
                )
                .expect("distinct tables");
        }
        for def in &w.defs {
            // Rename every generated table (`tN`) and rule (`rN`) token to
            // its namespaced form. Generated identifiers are exactly
            // `t<digits>` / `r<digits>` / `c<digits>`, so a simple
            // token-boundary scan is unambiguous.
            let script = def.to_string();
            let renamed = namespace_tokens(&script, p);
            let starling_sql::ast::Statement::CreateRule(r) =
                starling_sql::parse_statement(&renamed).expect("renamed rule parses")
            else {
                unreachable!()
            };
            defs.push(r);
        }
    }
    let rules = RuleSet::compile(&defs, &catalog).expect("partitioned set compiles");
    AnalysisContext::from_ruleset(&rules, Certifications::new())
}

/// Prefixes every `t<digits>` / `r<digits>` identifier token with `p{p}_`.
fn namespace_tokens(script: &str, p: usize) -> String {
    let chars: Vec<char> = script.chars().collect();
    let mut out = String::with_capacity(script.len() + 64);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let at_token_start = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if at_token_start && (c == 't' || c == 'r') {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            let ends_token = j == chars.len() || !(chars[j].is_alphanumeric() || chars[j] == '_');
            if j > i + 1 && ends_token {
                out.push_str(&format!("p{p}_"));
                out.extend(&chars[i..j]);
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}
