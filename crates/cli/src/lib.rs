//! Library backing the `starling` CLI: script loading and the command
//! implementations, separated from `main` so they are unit-testable.
//!
//! ## Script convention
//!
//! A `.rql` script is a single file of statements, processed in order:
//!
//! * `create table` — schema;
//! * DML *before the first rule definition* — seed data;
//! * `create rule ... end` — the rule set;
//! * `declare commute` / `declare terminates` — certifications;
//! * DML *after the first rule definition* — the user transition probed by
//!   `explore`.

use std::fmt::Write as _;

use starling_analysis::certifications::Certifications;
use starling_analysis::context::AnalysisContext;
use starling_analysis::report::{explore_json, AnalysisReport};
use starling_analysis::triggering_graph::TriggeringGraph;
use starling_baselines::compare_all;
use starling_engine::{
    explore, Budget, EngineError, ExploreConfig, FirstEligible, Outcome, RuleSet, RunResult,
    Session, Verdict,
};
use starling_sql::json::Json;

pub use starling_analysis::loader::{load_script, LoadedScript};

/// How a command concluded, beyond success/failure: `main` maps these to
/// distinct process exit codes so scripts and CI can react to "the oracle
/// ran out of budget" differently from "the script is wrong".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmdStatus {
    /// Definitive result (exit 0). A definitive "no" — e.g. a detected
    /// nontermination — is still a successful analysis.
    Ok,
    /// The transaction aborted mid-run (exit 2).
    Aborted,
    /// A resource budget was exhausted before a definitive answer (exit 3).
    Inconclusive,
    /// The fuzz harness found oracle disagreements (exit 4) — the analysis
    /// stack itself has a bug, as opposed to the analyzed script.
    Findings,
}

/// A command's rendered output plus its status.
#[derive(Clone, Debug)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// Status for the exit code.
    pub status: CmdStatus,
}

impl CmdOutput {
    fn ok(text: String) -> Self {
        CmdOutput {
            text,
            status: CmdStatus::Ok,
        }
    }
}

/// `starling analyze`: the full report. `refine` enables the Section 9
/// predicate-level commutativity refinement; `json` emits the
/// machine-readable shape shared with the server protocol.
pub fn cmd_analyze(
    src: &str,
    protect: &[Vec<String>],
    refine: bool,
    json: bool,
) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let mut ctx = script.context();
    ctx.refine = refine;
    let report = AnalysisReport::run(&ctx, protect);
    if json {
        return Ok(format!("{}\n", report.to_json()));
    }
    Ok(report.to_string())
}

/// `starling graph`: the triggering graph, as text or DOT.
pub fn cmd_graph(src: &str, dot: bool) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let graph = TriggeringGraph::build(&ctx);
    if dot {
        return Ok(graph.to_dot());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "triggering graph: {} rules, {} edges",
        graph.len(),
        graph.edge_count()
    );
    for (i, succs) in graph.succ.iter().enumerate() {
        let names: Vec<&str> = succs.iter().map(|&j| graph.names[j].as_str()).collect();
        let _ = writeln!(out, "  {} -> [{}]", graph.names[i], names.join(", "));
    }
    for scc in graph.cyclic_sccs() {
        let names: Vec<&str> = scc.iter().map(|&i| graph.names[i].as_str()).collect();
        let _ = writeln!(out, "  CYCLE: {}", names.join(" -> "));
    }
    Ok(out)
}

/// Renders a [`Verdict`] for the report: definitive answers stay terse
/// ("yes"/"NO"), non-answers carry their reason.
fn render_verdict(v: Verdict) -> String {
    match v {
        Verdict::Holds => "yes".to_owned(),
        Verdict::Fails => "NO".to_owned(),
        other => other.to_string(),
    }
}

/// `starling explore`: the execution-graph oracle over the script's user
/// transition, bounded by `cfg` (state/path budgets and optional deadline).
/// With `dot`, emits the graph as GraphViz instead of the verdict summary;
/// with `json`, the machine-readable shape shared with the server protocol.
///
/// The status is [`CmdStatus::Inconclusive`] when any budget ran out before
/// a verdict; a definitive negative verdict is still [`CmdStatus::Ok`].
pub fn cmd_explore(
    src: &str,
    cfg: &ExploreConfig,
    dot: bool,
    json: bool,
) -> Result<CmdOutput, EngineError> {
    let script = load_script(src)?;
    if script.user_actions.is_empty() {
        return Err(EngineError::InvalidStatement(
            "explore needs DML after the rule definitions (the user transition)".into(),
        ));
    }
    let g = explore(&script.rules, &script.db, &script.user_actions, cfg)?;
    if dot {
        return Ok(CmdOutput::ok(g.to_dot(&script.rules)));
    }
    let inconclusive = [
        g.termination_verdict(),
        g.confluence_verdict(),
        g.observable_determinism_verdict(cfg),
    ]
    .iter()
    .any(|v| matches!(v, Verdict::Inconclusive(_)));
    if json {
        return Ok(CmdOutput {
            text: format!("{}\n", explore_json(&g, cfg)),
            status: if inconclusive {
                CmdStatus::Inconclusive
            } else {
                CmdStatus::Ok
            },
        });
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "execution graph: {} states, {} edges, {} final state(s){}",
        g.states.len(),
        g.edges.len(),
        g.final_states.len(),
        match g.truncation {
            Some(r) => format!(" [TRUNCATED: {r}]"),
            None => String::new(),
        }
    );
    let verdicts = [
        ("terminates on all paths:", g.termination_verdict()),
        ("unique final state:     ", g.confluence_verdict()),
        (
            "deterministic observables:",
            g.observable_determinism_verdict(cfg),
        ),
    ];
    for (label, v) in &verdicts {
        let _ = writeln!(out, "  {label} {}", render_verdict(*v));
    }
    let _ = writeln!(
        out,
        "  distinct final DB states: {}",
        g.final_db_digests().len()
    );
    let status = if verdicts
        .iter()
        .any(|(_, v)| matches!(v, Verdict::Inconclusive(_)))
    {
        CmdStatus::Inconclusive
    } else {
        CmdStatus::Ok
    };
    Ok(CmdOutput { text: out, status })
}

/// `starling explain` without a rule argument: explores the script's user
/// transition with provenance tracing and, when the oracle reaches more
/// than one final database state, prints a minimal divergence witness —
/// one common state plus two firing sequences, replay-verified through the
/// engine before being reported.
///
/// A confluent exploration is [`CmdStatus::Ok`] with no witness; confluent
/// *so far* under an exhausted budget is [`CmdStatus::Inconclusive`].
pub fn cmd_explain_divergence(
    src: &str,
    cfg: &ExploreConfig,
    json: bool,
) -> Result<CmdOutput, EngineError> {
    let script = load_script(src)?;
    if script.user_actions.is_empty() {
        return Err(EngineError::InvalidStatement(
            "explain needs DML after the rule definitions (the user transition)".into(),
        ));
    }
    let ex = starling_provenance::explain_divergence(
        &script.rules,
        &script.db,
        &script.user_actions,
        cfg,
        starling_engine::EvalMode::default(),
    )?;
    let status = match &ex.witness {
        Some(_) => CmdStatus::Ok,
        None if ex.graph.truncated() => CmdStatus::Inconclusive,
        None => CmdStatus::Ok,
    };
    if json {
        let witness = match &ex.witness {
            Some(w) => starling_provenance::witness_json(&script.rules, w),
            None => Json::Null,
        };
        let text = format!(
            "{}\n",
            Json::obj([
                ("explore", explore_json(&ex.graph, cfg)),
                ("choice_points", Json::from(ex.log.ambiguous())),
                ("witness", witness),
            ])
        );
        return Ok(CmdOutput { text, status });
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "explored {} state(s), {} ambiguous choice point(s), {} distinct final DB state(s){}",
        ex.graph.states.len(),
        ex.log.ambiguous(),
        ex.graph.final_db_digests().len(),
        match ex.graph.truncation {
            Some(r) => format!(" [TRUNCATED: {r}]"),
            None => String::new(),
        }
    );
    match &ex.witness {
        Some(w) => out.push_str(&starling_provenance::witness_text(&script.rules, w)),
        None if ex.graph.truncated() => {
            let _ = writeln!(
                out,
                "no divergence found before the budget ran out — confluent as far as explored"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "confluent from this initial state: every path reaches the same final database"
            );
        }
    }
    Ok(CmdOutput { text: out, status })
}

/// Diagnoses an `Outcome::LimitExceeded` run: extracts the repeating rule
/// cycle from the tail of the consideration trace and cross-references it
/// against the *static* triggering graph, so the user sees both what
/// actually looped and that the analysis predicts the loop.
pub fn diagnose_limit(run: &RunResult, rules: &RuleSet, ctx: &AnalysisContext) -> String {
    let mut out = String::new();
    let reason = run
        .truncation
        .map(|r| r.to_string())
        .unwrap_or_else(|| "limit exceeded".to_owned());
    let _ = writeln!(
        out,
        "rule processing stopped after {} consideration(s): {reason}",
        run.considerations.len()
    );
    // The dynamic tail: names of the most recently considered rules.
    let tail: Vec<&str> = run
        .considerations
        .iter()
        .rev()
        .take(64)
        .map(|c| rules.get(c.rule).name())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() {
        return out;
    }
    // Smallest period p such that the last 2p entries repeat.
    let period = (1..=tail.len() / 2)
        .find(|&p| (0..p).all(|k| tail[tail.len() - p + k] == tail[tail.len() - 2 * p + k]));
    let Some(p) = period else {
        let shown = &tail[tail.len().saturating_sub(8)..];
        let _ = writeln!(
            out,
            "  no short repeating cycle in the consideration tail; last considered: {}",
            shown.join(" -> ")
        );
        return out;
    };
    let cycle = &tail[tail.len() - p..];
    let _ = writeln!(
        out,
        "  dynamic cycle in the consideration tail: {} -> {}",
        cycle.join(" -> "),
        cycle[0]
    );
    // Cross-reference each step of the dynamic cycle against the static
    // triggering graph (paper Section 5): an edge the static analysis does
    // not predict would indicate an analysis bug.
    let mut confirmed = Vec::new();
    let mut unexplained = Vec::new();
    for k in 0..cycle.len() {
        let (a, b) = (cycle[k], cycle[(k + 1) % cycle.len()]);
        match (ctx.index_of(a), ctx.index_of(b)) {
            (Some(i), Some(j)) if ctx.can_trigger(i, j) => {
                confirmed.push(format!("{a} -> {b}"));
            }
            _ => unexplained.push(format!("{a} -> {b}")),
        }
    }
    if unexplained.is_empty() {
        let _ = writeln!(
            out,
            "  static triggering graph confirms every step: {}",
            confirmed.join(", ")
        );
    } else {
        let _ = writeln!(
            out,
            "  static triggering graph does NOT predict: {} (confirmed: {})",
            unexplained.join(", "),
            if confirmed.is_empty() {
                "none".to_owned()
            } else {
                confirmed.join(", ")
            }
        );
    }
    out
}

/// `starling run`: executes the script end-to-end (user transition included)
/// with rule processing at commit, printing outcomes. The budget bounds the
/// commit-time rule processing (`max_considerations`, `deadline`).
///
/// Statuses: [`CmdStatus::Aborted`] when the transaction aborted (the
/// database was restored to the snapshot), [`CmdStatus::Inconclusive`] when
/// rule processing hit a budget — with the dynamic cycle diagnosis from
/// [`diagnose_limit`] appended.
pub fn cmd_run(src: &str, budget: &Budget) -> Result<CmdOutput, EngineError> {
    let mut session = Session::new();
    session.max_considerations = budget.max_considerations;
    session.deadline = budget.deadline;
    let outputs = session.execute_script(src)?;
    let mut out = String::new();
    for o in outputs {
        match o {
            starling_engine::session::ScriptOutput::Rows(rs) => {
                let _ = writeln!(out, "{}", rs.columns.join(" | "));
                for row in &rs.rows {
                    let vals: Vec<String> = row.iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "{}", vals.join(" | "));
                }
            }
            starling_engine::session::ScriptOutput::Modified(n) => {
                let _ = writeln!(out, "{n} tuple(s) modified");
            }
            starling_engine::session::ScriptOutput::TableCreated(t) => {
                let _ = writeln!(out, "table `{t}` created");
            }
            starling_engine::session::ScriptOutput::RuleCreated(r) => {
                let _ = writeln!(out, "rule `{r}` created");
            }
            starling_engine::session::ScriptOutput::RuleDropped(r) => {
                let _ = writeln!(out, "rule `{r}` dropped");
            }
            starling_engine::session::ScriptOutput::RuleAltered(r) => {
                let _ = writeln!(out, "rule `{r}` altered");
            }
            starling_engine::session::ScriptOutput::DirectiveRecorded => {
                let _ = writeln!(out, "directive recorded");
            }
            starling_engine::session::ScriptOutput::RolledBack => {
                let _ = writeln!(out, "transaction rolled back");
            }
        }
    }
    let run = session.commit(&mut FirstEligible)?;
    let _ = writeln!(
        out,
        "rule processing: {} consideration(s), {} fired, outcome {:?}",
        run.considerations.len(),
        run.fired_count(),
        run.outcome
    );
    let mut status = CmdStatus::Ok;
    match run.outcome {
        Outcome::Aborted => {
            status = CmdStatus::Aborted;
            let cause = run
                .error
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "unknown".to_owned());
            let _ = writeln!(
                out,
                "transaction ABORTED: {cause}\ndatabase restored to the transaction snapshot"
            );
        }
        Outcome::LimitExceeded => {
            status = CmdStatus::Inconclusive;
            let rules = session.ruleset()?.clone();
            let ctx = AnalysisContext::from_ruleset(
                &rules,
                Certifications::from_directives(session.directives()),
            );
            let _ = write!(out, "{}", diagnose_limit(&run, &rules, &ctx));
        }
        Outcome::Quiescent | Outcome::RolledBack => {}
    }
    for ev in &run.observables {
        match &ev.kind {
            starling_engine::ObservableKind::Rollback => {
                let _ = writeln!(out, "observable: rollback");
            }
            starling_engine::ObservableKind::Rows(rs) => {
                let _ = writeln!(out, "observable rows ({}):", rs.columns.join(", "));
                for row in &rs.rows {
                    let vals: Vec<String> = row.iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "  {}", vals.join(" | "));
                }
            }
        }
    }
    let _ = write!(out, "{}", session.db());
    Ok(CmdOutput { text: out, status })
}

/// `starling explain`: one rule's Section 3 signature and relations.
pub fn cmd_explain(src: &str, rule_name: &str) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let Some(idx) = ctx.index_of(rule_name) else {
        return Err(EngineError::InvalidStatement(format!(
            "no rule named `{rule_name}`"
        )));
    };
    let sig = &ctx.sigs[idx];
    let mut out = String::new();
    let _ = writeln!(out, "rule `{rule_name}` on `{}`", sig.table);
    let fmt_ops = |ops: &std::collections::BTreeSet<starling_storage::Op>| {
        ops.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "  Triggered-By: {{{}}}", fmt_ops(&sig.triggered_by));
    let _ = writeln!(out, "  Performs:     {{{}}}", fmt_ops(&sig.performs));
    let _ = writeln!(
        out,
        "  Reads:        {{{}}}",
        sig.reads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  Observable:   {}", sig.observable);
    let triggers: Vec<&str> = ctx.triggers(idx).into_iter().map(|j| ctx.name(j)).collect();
    let _ = writeln!(out, "  Triggers:     {{{}}}", triggers.join(", "));
    let triggered_by_rules: Vec<&str> = (0..ctx.len())
        .filter(|&j| ctx.can_trigger(j, idx))
        .map(|j| ctx.name(j))
        .collect();
    let _ = writeln!(
        out,
        "  Triggered by rules: {{{}}}",
        triggered_by_rules.join(", ")
    );
    let unordered: Vec<&str> = (0..ctx.len())
        .filter(|&j| j != idx && ctx.unordered(idx, j))
        .map(|j| ctx.name(j))
        .collect();
    let _ = writeln!(out, "  Unordered with: {{{}}}", unordered.join(", "));
    for j in 0..ctx.len() {
        if j == idx {
            continue;
        }
        let reasons = starling_analysis::noncommutativity_reasons(&ctx.sigs[idx], &ctx.sigs[j]);
        if !reasons.is_empty() {
            let _ = writeln!(out, "  may not commute with `{}`:", ctx.name(j));
            for r in reasons {
                let _ = writeln!(out, "    - {r}");
            }
        }
    }
    Ok(out)
}

/// `starling fuzz`: the differential fuzz campaign — generate random rule
/// programs, cross-check the five oracles, shrink and pin disagreements
/// (see `starling_fuzz`). Exit-code contract: [`CmdStatus::Findings`] on
/// any disagreement, so CI fails loudly; a clean campaign is
/// [`CmdStatus::Ok`] no matter how many explorations were truncated
/// (truncation is a budget fact, not a bug).
pub fn cmd_fuzz(config: starling_fuzz::FuzzConfig) -> CmdOutput {
    let report = starling_fuzz::run_fuzz(config);
    CmdOutput {
        status: if report.ok() {
            CmdStatus::Ok
        } else {
            CmdStatus::Findings
        },
        text: report.render(),
    }
}

/// `starling recover`: opens durable store(s) and reports what recovery
/// yields — the operator's view of a data dir after a crash.
///
/// `dir` is either one store (it contains `wal.log`) or a server data dir
/// (each subdirectory with a `wal.log` is a store). Recovery itself always
/// verifies frame checksums, truncates any torn tail, and checks the
/// recovered digest against the last logged commit digest; `verify`
/// additionally replays the recovered state through a full engine session
/// (rules re-parsed, directives re-applied) and cross-checks the digests.
///
/// Any unrecoverable store makes the command fail; a recovered-with-
/// truncation store is normal crash aftermath, reported but not an error.
pub fn cmd_recover(dir: &std::path::Path, verify: bool) -> Result<CmdOutput, EngineError> {
    use starling_storage::{SyncPolicy, WalStore};

    let bad = |msg: String| EngineError::InvalidStatement(msg);
    let is_store = |d: &std::path::Path| d.join("wal.log").is_file();
    let mut stores: Vec<(String, std::path::PathBuf)> = Vec::new();
    if is_store(dir) {
        stores.push((dir.display().to_string(), dir.to_path_buf()));
    } else if dir.is_dir() {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| bad(format!("cannot read `{}`: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if is_store(&path) {
                stores.push((entry.file_name().to_string_lossy().into_owned(), path));
            }
        }
        stores.sort();
    } else {
        return Err(bad(format!("`{}` is not a directory", dir.display())));
    }
    if stores.is_empty() {
        return Err(bad(format!(
            "no durable stores under `{}` (no wal.log found)",
            dir.display()
        )));
    }

    let mut out = String::new();
    for (name, path) in &stores {
        let (_store, recovered) = WalStore::open(path, SyncPolicy::Always)
            .map_err(|e| bad(format!("store `{name}`: recovery failed: {e}")))?;
        let db = &recovered.db;
        let rows: usize = db.tables().map(|t| t.len()).sum();
        let _ = writeln!(
            out,
            "store `{name}`: {} table(s), {rows} row(s), digest {:#018x}",
            db.tables().count(),
            db.state_digest()
        );
        let _ = writeln!(
            out,
            "  snapshot {}, {} WAL record(s) replayed, last seq {}{}",
            if recovered.snapshot_loaded {
                "loaded"
            } else {
                "absent"
            },
            recovered.records_applied,
            recovered.last_seq,
            if recovered.truncated_bytes > 0 {
                format!(
                    ", torn tail truncated ({} byte(s))",
                    recovered.truncated_bytes
                )
            } else {
                String::new()
            }
        );
        if verify {
            // The session-level reload re-parses the persisted rule program
            // and re-applies directives — catching anything the byte-level
            // recovery cannot see (e.g. rules text that no longer parses).
            let session = Session::open_durable(path, SyncPolicy::Always)
                .map_err(|e| bad(format!("store `{name}`: session reload failed: {e}")))?;
            if session.db().state_digest() != db.state_digest() {
                return Err(bad(format!(
                    "store `{name}`: session reload digest {:#018x} != recovered {:#018x}",
                    session.db().state_digest(),
                    db.state_digest()
                )));
            }
            let _ = writeln!(
                out,
                "  verified: {} rule(s), {} directive(s), session digest matches",
                session.rule_defs().len(),
                session.directives().len()
            );
        }
    }
    Ok(CmdOutput::ok(out))
}

/// `starling compare`: the baseline comparison (Section 9).
pub fn cmd_compare(src: &str) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let row = compare_all(&ctx);
    let mark = |b: bool| if b { "accept" } else { "reject" };
    let mut out = String::new();
    let _ = writeln!(out, "criterion        verdict");
    let _ = writeln!(out, "starling         {}", mark(row.starling));
    let _ = writeln!(out, "hh91-analog      {}", mark(row.hh91));
    let _ = writeln!(out, "zh90-analog      {}", mark(row.zh90));
    let _ = writeln!(out, "ras90-analog     {}", mark(row.ras90));
    if let Some((a, b)) = row.subsumption_violation() {
        let _ = writeln!(
            out,
            "SUBSUMPTION VIOLATION: {a:?} accepted but {b:?} rejected"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "
        create table t (x int);
        create table u (x int);
        insert into t values (1);
        insert into u values (0);
        create rule a on t when inserted then update u set x = 1 end;
        create rule b on t when inserted then update u set x = 2 end;
        insert into t values (5);
    ";

    #[test]
    fn load_splits_setup_and_transition() {
        let s = load_script(SCRIPT).unwrap();
        assert_eq!(s.rules.len(), 2);
        assert_eq!(s.user_actions.len(), 1);
        // Seed insert ran; user insert did not (it is the probe).
        assert_eq!(s.db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn analyze_reports_violation() {
        let text = cmd_analyze(SCRIPT, &[], false, false).unwrap();
        assert!(text.contains("MAY NOT BE CONFLUENT"), "{text}");
    }

    #[test]
    fn analyze_honors_directives() {
        let src = format!("{SCRIPT}\ndeclare commute a, b;");
        let text = cmd_analyze(&src, &[], false, false).unwrap();
        assert!(text.contains("CONFLUENCE: guaranteed"), "{text}");
    }

    #[test]
    fn graph_text_and_dot() {
        let text = cmd_graph(SCRIPT, false).unwrap();
        assert!(text.contains("2 rules"));
        let dot = cmd_graph(SCRIPT, true).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn explore_oracle() {
        let out = cmd_explore(SCRIPT, &ExploreConfig::default(), false, false).unwrap();
        assert!(
            out.text.contains("unique final state:      NO"),
            "{}",
            out.text
        );
        // A definitive NO is still a successful analysis.
        assert_eq!(out.status, CmdStatus::Ok);
    }

    #[test]
    fn explore_dot_output() {
        let out = cmd_explore(SCRIPT, &ExploreConfig::default(), true, false).unwrap();
        assert!(out.text.starts_with("digraph execution"), "{}", out.text);
        assert!(out.text.contains("doublecircle"), "{}", out.text);
    }

    #[test]
    fn explore_requires_transition() {
        let src = "create table t (x int); \
                   create rule a on t when inserted then delete from t end;";
        assert!(cmd_explore(src, &ExploreConfig::default(), false, false).is_err());
    }

    #[test]
    fn explore_truncation_is_inconclusive_with_reason() {
        let src = "create table t (x int);
                   create rule grow on t when inserted then \
                     insert into t select x + 1 from inserted end;
                   insert into t values (1);";
        let cfg = ExploreConfig::default().with_max_states(20);
        let out = cmd_explore(src, &cfg, false, false).unwrap();
        assert_eq!(out.status, CmdStatus::Inconclusive);
        assert!(
            out.text.contains("[TRUNCATED: state budget exhausted]"),
            "{}",
            out.text
        );
        assert!(
            out.text.contains("inconclusive (state budget exhausted)"),
            "{}",
            out.text
        );
    }

    #[test]
    fn run_executes_everything() {
        let out = cmd_run(
            "create table t (x int);
             create rule bump on t when inserted then update t set x = x + 1 end;
             insert into t values (1);
             select x from t;",
            &Budget::default(),
        )
        .unwrap();
        assert!(out.text.contains("rule processing"), "{}", out.text);
        assert_eq!(out.status, CmdStatus::Ok);
    }

    #[test]
    fn run_limit_reports_dynamic_cycle_with_static_cross_reference() {
        let out = cmd_run(
            "create table t (x int);
             create table u (x int);
             create rule ping on t when inserted then insert into u values (1) end;
             create rule pong on u when inserted then insert into t values (1) end;
             insert into t values (1);",
            &Budget::default().with_max_considerations(40),
        )
        .unwrap();
        assert_eq!(out.status, CmdStatus::Inconclusive);
        assert!(
            out.text.contains("consideration budget exhausted"),
            "{}",
            out.text
        );
        assert!(
            out.text
                .contains("dynamic cycle in the consideration tail:"),
            "{}",
            out.text
        );
        // Both steps of the ping/pong loop are statically predicted.
        assert!(
            out.text
                .contains("static triggering graph confirms every step"),
            "{}",
            out.text
        );
        assert!(out.text.contains("ping"), "{}", out.text);
        assert!(out.text.contains("pong"), "{}", out.text);
    }

    #[test]
    fn run_zero_deadline_is_inconclusive() {
        let out = cmd_run(
            "create table t (x int);
             create rule bump on t when inserted then update t set x = x + 1 end;
             insert into t values (1);",
            &Budget::default().with_deadline(std::time::Duration::ZERO),
        )
        .unwrap();
        assert_eq!(out.status, CmdStatus::Inconclusive);
        assert!(out.text.contains("deadline exceeded"), "{}", out.text);
    }

    #[test]
    fn explain_shows_signature() {
        let text = cmd_explain(SCRIPT, "a").unwrap();
        assert!(text.contains("Triggered-By: {(I, t)}"), "{text}");
        assert!(text.contains("Performs:     {(U, u.x)}"), "{text}");
        assert!(text.contains("may not commute with `b`"), "{text}");
        assert!(cmd_explain(SCRIPT, "zzz").is_err());
    }

    #[test]
    fn compare_prints_chain() {
        let text = cmd_compare(SCRIPT).unwrap();
        assert!(text.contains("starling"));
        assert!(text.contains("hh91-analog"));
        assert!(!text.contains("SUBSUMPTION VIOLATION"));
    }

    #[test]
    fn analyze_with_protected_tables() {
        let text = cmd_analyze(SCRIPT, &[vec!["t".to_owned()]], false, false).unwrap();
        assert!(text.contains("PARTIAL CONFLUENCE w.r.t. {t}"), "{text}");
    }

    #[test]
    fn recover_reports_and_verifies_stores() {
        use starling_storage::SyncPolicy;
        let root = std::env::temp_dir().join(format!("starling-cli-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = root.join("alpha");

        // Seed one store through the engine's durable path.
        let mut s = Session::new();
        s.execute_script(
            "create table t (x int); \
             create rule bump on t when inserted then update t set x = x + 1 end;",
        )
        .unwrap();
        s.persist_to(&store, SyncPolicy::Always).unwrap();
        s.execute_script("insert into t values (1);").unwrap();
        s.commit(&mut FirstEligible).unwrap();

        // Nothing recoverable: clear errors for both missing and empty dirs.
        let err = cmd_recover(&root.join("nothing-here"), false).unwrap_err();
        assert!(err.to_string().contains("not a directory"), "{err}");
        let empty = root.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = cmd_recover(&empty, false).unwrap_err();
        assert!(err.to_string().contains("no durable stores"), "{err}");

        // Single-store and data-dir-scan modes agree.
        let one = cmd_recover(&store, true).unwrap();
        assert!(one.text.contains("1 table(s), 1 row(s)"), "{}", one.text);
        assert!(one.text.contains("verified: 1 rule(s)"), "{}", one.text);
        let scan = cmd_recover(&root, false).unwrap();
        assert!(scan.text.contains("store `alpha`"), "{}", scan.text);
        let _ = std::fs::remove_dir_all(&root);
    }
}
