//! Library backing the `starling` CLI: script loading and the command
//! implementations, separated from `main` so they are unit-testable.
//!
//! ## Script convention
//!
//! A `.rql` script is a single file of statements, processed in order:
//!
//! * `create table` — schema;
//! * DML *before the first rule definition* — seed data;
//! * `create rule ... end` — the rule set;
//! * `declare commute` / `declare terminates` — certifications;
//! * DML *after the first rule definition* — the user transition probed by
//!   `explore`.

use std::fmt::Write as _;

use starling_analysis::certifications::Certifications;
use starling_analysis::context::AnalysisContext;
use starling_analysis::report::AnalysisReport;
use starling_analysis::triggering_graph::TriggeringGraph;
use starling_baselines::compare_all;
use starling_engine::{
    explore, EngineError, ExploreConfig, FirstEligible, RuleSet, Session,
};
use starling_sql::ast::{Action, Directive, Statement};
use starling_sql::parse_script;
use starling_storage::Database;

/// A loaded script, split per the convention above.
pub struct LoadedScript {
    /// Database after setup statements.
    pub db: Database,
    /// The compiled rule set.
    pub rules: RuleSet,
    /// Certifications from `declare` directives.
    pub certs: Certifications,
    /// DML after the first rule definition (the user transition).
    pub user_actions: Vec<Action>,
}

impl LoadedScript {
    /// The analysis context for the script.
    pub fn context(&self) -> AnalysisContext {
        AnalysisContext::from_ruleset(&self.rules, self.certs.clone())
    }
}

/// Parses and loads a script.
pub fn load_script(src: &str) -> Result<LoadedScript, EngineError> {
    let stmts = parse_script(src)?;
    let mut session = Session::new();
    let mut defs = Vec::new();
    let mut directives: Vec<Directive> = Vec::new();
    let mut user_actions = Vec::new();
    for stmt in stmts {
        match stmt {
            Statement::CreateTable(_) => {
                session.execute(&stmt)?;
            }
            Statement::CreateRule(r) => defs.push(r),
            Statement::DropRule(name) => {
                let before = defs.len();
                defs.retain(|r: &starling_sql::RuleDef| r.name != name);
                if defs.len() == before {
                    return Err(EngineError::InvalidStatement(format!(
                        "drop rule: no rule named `{name}`"
                    )));
                }
                for r in &mut defs {
                    r.precedes.retain(|p| p != &name);
                    r.follows.retain(|p| p != &name);
                }
            }
            Statement::AlterRule {
                name,
                precedes,
                follows,
            } => {
                let Some(def) = defs.iter_mut().find(|r| r.name == name) else {
                    return Err(EngineError::InvalidStatement(format!(
                        "alter rule: no rule named `{name}`"
                    )));
                };
                def.precedes.extend(precedes);
                def.follows.extend(follows);
            }
            Statement::Directive(d) => directives.push(d),
            Statement::Dml(a) => {
                if defs.is_empty() {
                    session.execute(&Statement::Dml(a))?;
                } else {
                    user_actions.push(a);
                }
            }
        }
    }
    session.commit(&mut FirstEligible)?;
    let rules = RuleSet::compile(&defs, session.db().catalog())?;
    Ok(LoadedScript {
        db: session.db().clone(),
        rules,
        certs: Certifications::from_directives(&directives),
        user_actions,
    })
}

/// `starling analyze`: the full report. `refine` enables the Section 9
/// predicate-level commutativity refinement.
pub fn cmd_analyze(
    src: &str,
    protect: &[Vec<String>],
    refine: bool,
) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let mut ctx = script.context();
    ctx.refine = refine;
    let report = AnalysisReport::run(&ctx, protect);
    Ok(report.to_string())
}

/// `starling graph`: the triggering graph, as text or DOT.
pub fn cmd_graph(src: &str, dot: bool) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let graph = TriggeringGraph::build(&ctx);
    if dot {
        return Ok(graph.to_dot());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "triggering graph: {} rules, {} edges",
        graph.len(),
        graph.edge_count()
    );
    for (i, succs) in graph.succ.iter().enumerate() {
        let names: Vec<&str> = succs.iter().map(|&j| graph.names[j].as_str()).collect();
        let _ = writeln!(out, "  {} -> [{}]", graph.names[i], names.join(", "));
    }
    for scc in graph.cyclic_sccs() {
        let names: Vec<&str> = scc.iter().map(|&i| graph.names[i].as_str()).collect();
        let _ = writeln!(out, "  CYCLE: {}", names.join(" -> "));
    }
    Ok(out)
}

/// `starling explore`: the execution-graph oracle over the script's user
/// transition. With `dot`, emits the graph as GraphViz instead of the
/// verdict summary.
pub fn cmd_explore(src: &str, max_states: usize, dot: bool) -> Result<String, EngineError> {
    let script = load_script(src)?;
    if script.user_actions.is_empty() {
        return Err(EngineError::InvalidStatement(
            "explore needs DML after the rule definitions (the user transition)".into(),
        ));
    }
    let cfg = ExploreConfig {
        max_states,
        ..ExploreConfig::default()
    };
    let g = explore(&script.rules, &script.db, &script.user_actions, &cfg)?;
    if dot {
        return Ok(g.to_dot(&script.rules));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "execution graph: {} states, {} edges, {} final state(s){}",
        g.states.len(),
        g.edges.len(),
        g.final_states.len(),
        if g.truncated { " [TRUNCATED]" } else { "" }
    );
    let verdict = |v: Option<bool>| match v {
        Some(true) => "yes",
        Some(false) => "NO",
        None => "unknown (truncated or cyclic)",
    };
    let _ = writeln!(out, "  terminates on all paths: {}", verdict(g.terminates()));
    let _ = writeln!(out, "  unique final state:      {}", verdict(g.confluent()));
    let _ = writeln!(
        out,
        "  deterministic observables: {}",
        verdict(g.observably_deterministic(&cfg))
    );
    let _ = writeln!(
        out,
        "  distinct final DB states: {}",
        g.final_db_digests().len()
    );
    Ok(out)
}

/// `starling run`: executes the script end-to-end (user transition included)
/// with rule processing at commit, printing outcomes.
pub fn cmd_run(src: &str) -> Result<String, EngineError> {
    let mut session = Session::new();
    let outputs = session.execute_script(src)?;
    let mut out = String::new();
    for o in outputs {
        match o {
            starling_engine::session::ScriptOutput::Rows(rs) => {
                let _ = writeln!(out, "{}", rs.columns.join(" | "));
                for row in &rs.rows {
                    let vals: Vec<String> =
                        row.iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "{}", vals.join(" | "));
                }
            }
            starling_engine::session::ScriptOutput::Modified(n) => {
                let _ = writeln!(out, "{n} tuple(s) modified");
            }
            starling_engine::session::ScriptOutput::TableCreated(t) => {
                let _ = writeln!(out, "table `{t}` created");
            }
            starling_engine::session::ScriptOutput::RuleCreated(r) => {
                let _ = writeln!(out, "rule `{r}` created");
            }
            starling_engine::session::ScriptOutput::RuleDropped(r) => {
                let _ = writeln!(out, "rule `{r}` dropped");
            }
            starling_engine::session::ScriptOutput::RuleAltered(r) => {
                let _ = writeln!(out, "rule `{r}` altered");
            }
            starling_engine::session::ScriptOutput::DirectiveRecorded => {
                let _ = writeln!(out, "directive recorded");
            }
            starling_engine::session::ScriptOutput::RolledBack => {
                let _ = writeln!(out, "transaction rolled back");
            }
        }
    }
    let run = session.commit(&mut FirstEligible)?;
    let _ = writeln!(
        out,
        "rule processing: {} consideration(s), {} fired, outcome {:?}",
        run.considerations.len(),
        run.fired_count(),
        run.outcome
    );
    for ev in &run.observables {
        match &ev.kind {
            starling_engine::ObservableKind::Rollback => {
                let _ = writeln!(out, "observable: rollback");
            }
            starling_engine::ObservableKind::Rows(rs) => {
                let _ = writeln!(out, "observable rows ({}):", rs.columns.join(", "));
                for row in &rs.rows {
                    let vals: Vec<String> =
                        row.iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "  {}", vals.join(" | "));
                }
            }
        }
    }
    let _ = write!(out, "{}", session.db());
    Ok(out)
}

/// `starling explain`: one rule's Section 3 signature and relations.
pub fn cmd_explain(src: &str, rule_name: &str) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let Some(idx) = ctx.index_of(rule_name) else {
        return Err(EngineError::InvalidStatement(format!(
            "no rule named `{rule_name}`"
        )));
    };
    let sig = &ctx.sigs[idx];
    let mut out = String::new();
    let _ = writeln!(out, "rule `{rule_name}` on `{}`", sig.table);
    let fmt_ops = |ops: &std::collections::BTreeSet<starling_storage::Op>| {
        ops.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    };
    let _ = writeln!(out, "  Triggered-By: {{{}}}", fmt_ops(&sig.triggered_by));
    let _ = writeln!(out, "  Performs:     {{{}}}", fmt_ops(&sig.performs));
    let _ = writeln!(
        out,
        "  Reads:        {{{}}}",
        sig.reads.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(out, "  Observable:   {}", sig.observable);
    let triggers: Vec<&str> = ctx.triggers(idx).into_iter().map(|j| ctx.name(j)).collect();
    let _ = writeln!(out, "  Triggers:     {{{}}}", triggers.join(", "));
    let triggered_by_rules: Vec<&str> = (0..ctx.len())
        .filter(|&j| ctx.can_trigger(j, idx))
        .map(|j| ctx.name(j))
        .collect();
    let _ = writeln!(out, "  Triggered by rules: {{{}}}", triggered_by_rules.join(", "));
    let unordered: Vec<&str> = (0..ctx.len())
        .filter(|&j| j != idx && ctx.unordered(idx, j))
        .map(|j| ctx.name(j))
        .collect();
    let _ = writeln!(out, "  Unordered with: {{{}}}", unordered.join(", "));
    for j in 0..ctx.len() {
        if j == idx {
            continue;
        }
        let reasons = starling_analysis::noncommutativity_reasons(&ctx.sigs[idx], &ctx.sigs[j]);
        if !reasons.is_empty() {
            let _ = writeln!(out, "  may not commute with `{}`:", ctx.name(j));
            for r in reasons {
                let _ = writeln!(out, "    - {r}");
            }
        }
    }
    Ok(out)
}

/// `starling compare`: the baseline comparison (Section 9).
pub fn cmd_compare(src: &str) -> Result<String, EngineError> {
    let script = load_script(src)?;
    let ctx = script.context();
    let row = compare_all(&ctx);
    let mark = |b: bool| if b { "accept" } else { "reject" };
    let mut out = String::new();
    let _ = writeln!(out, "criterion        verdict");
    let _ = writeln!(out, "starling         {}", mark(row.starling));
    let _ = writeln!(out, "hh91-analog      {}", mark(row.hh91));
    let _ = writeln!(out, "zh90-analog      {}", mark(row.zh90));
    let _ = writeln!(out, "ras90-analog     {}", mark(row.ras90));
    if let Some((a, b)) = row.subsumption_violation() {
        let _ = writeln!(out, "SUBSUMPTION VIOLATION: {a:?} accepted but {b:?} rejected");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "
        create table t (x int);
        create table u (x int);
        insert into t values (1);
        insert into u values (0);
        create rule a on t when inserted then update u set x = 1 end;
        create rule b on t when inserted then update u set x = 2 end;
        insert into t values (5);
    ";

    #[test]
    fn load_splits_setup_and_transition() {
        let s = load_script(SCRIPT).unwrap();
        assert_eq!(s.rules.len(), 2);
        assert_eq!(s.user_actions.len(), 1);
        // Seed insert ran; user insert did not (it is the probe).
        assert_eq!(s.db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn analyze_reports_violation() {
        let text = cmd_analyze(SCRIPT, &[], false).unwrap();
        assert!(text.contains("MAY NOT BE CONFLUENT"), "{text}");
    }

    #[test]
    fn analyze_honors_directives() {
        let src = format!("{SCRIPT}\ndeclare commute a, b;");
        let text = cmd_analyze(&src, &[], false).unwrap();
        assert!(text.contains("CONFLUENCE: guaranteed"), "{text}");
    }

    #[test]
    fn graph_text_and_dot() {
        let text = cmd_graph(SCRIPT, false).unwrap();
        assert!(text.contains("2 rules"));
        let dot = cmd_graph(SCRIPT, true).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn explore_oracle() {
        let text = cmd_explore(SCRIPT, 1000, false).unwrap();
        assert!(text.contains("unique final state:      NO"), "{text}");
    }

    #[test]
    fn explore_dot_output() {
        let dot = cmd_explore(SCRIPT, 1000, true).unwrap();
        assert!(dot.starts_with("digraph execution"), "{dot}");
        assert!(dot.contains("doublecircle"), "{dot}");
    }

    #[test]
    fn explore_requires_transition() {
        let src = "create table t (x int); \
                   create rule a on t when inserted then delete from t end;";
        assert!(cmd_explore(src, 100, false).is_err());
    }

    #[test]
    fn run_executes_everything() {
        let text = cmd_run(
            "create table t (x int);
             create rule bump on t when inserted then update t set x = x + 1 end;
             insert into t values (1);
             select x from t;",
        )
        .unwrap();
        assert!(text.contains("rule processing"), "{text}");
    }

    #[test]
    fn explain_shows_signature() {
        let text = cmd_explain(SCRIPT, "a").unwrap();
        assert!(text.contains("Triggered-By: {(I, t)}"), "{text}");
        assert!(text.contains("Performs:     {(U, u.x)}"), "{text}");
        assert!(text.contains("may not commute with `b`"), "{text}");
        assert!(cmd_explain(SCRIPT, "zzz").is_err());
    }

    #[test]
    fn compare_prints_chain() {
        let text = cmd_compare(SCRIPT).unwrap();
        assert!(text.contains("starling"));
        assert!(text.contains("hh91-analog"));
        assert!(!text.contains("SUBSUMPTION VIOLATION"));
    }

    #[test]
    fn analyze_with_protected_tables() {
        let text = cmd_analyze(SCRIPT, &[vec!["t".to_owned()]], false).unwrap();
        assert!(text.contains("PARTIAL CONFLUENCE w.r.t. {t}"), "{text}");
    }
}
