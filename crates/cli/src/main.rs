//! `starling` — static analyzer and runtime for Starburst-style database
//! production rules.
//!
//! ```text
//! starling analyze <file> [--protect t1,t2]...   full analysis report
//! starling graph <file> [--dot]                  triggering graph
//! starling explore <file> [--max-states N]       execution-graph oracle
//! starling run <file>                            execute with rule processing
//! starling compare <file>                        baseline comparison (Sec. 9)
//! ```

use std::process::ExitCode;

use starling_cli::{cmd_analyze, cmd_compare, cmd_explore, cmd_graph, cmd_run};

const USAGE: &str = "\
starling — analysis of database production rules (SIGMOD '92 reproduction)

USAGE:
    starling <COMMAND> <FILE> [OPTIONS]

COMMANDS:
    analyze    Termination, confluence, and observable-determinism report
    graph      Print the triggering graph (--dot for GraphViz)
    explore    Exhaustive execution-graph oracle over the script's
               user transition (--max-states N, default 20000)
    explain    One rule's Section 3 signature and interactions
               (starling explain <file> <rule>)
    run        Execute the script with rule processing at commit
    compare    Compare against HH91/ZH90/Ras90-analog criteria

OPTIONS:
    --protect t1,t2    (analyze) also check partial confluence w.r.t. the
                       listed tables; repeatable
    --dot              (graph/explore) emit GraphViz DOT
    --max-states N     (explore) exploration bound
    --refine           (analyze) enable the Section 9 predicate-level
                       commutativity refinement
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(USAGE.to_owned());
    }
    let file = args.get(1).ok_or("missing script file")?;
    let src = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read `{file}`: {e}"))?;

    let mut rule_arg: Option<String> = None;
    let mut protect: Vec<Vec<String>> = Vec::new();
    let mut dot = false;
    let mut refine = false;
    let mut max_states = 20_000usize;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--protect" => {
                let v = args
                    .get(i + 1)
                    .ok_or("--protect needs a table list")?;
                protect.push(v.split(',').map(|s| s.trim().to_owned()).collect());
                i += 2;
            }
            "--dot" => {
                dot = true;
                i += 1;
            }
            "--refine" => {
                refine = true;
                i += 1;
            }
            "--max-states" => {
                max_states = args
                    .get(i + 1)
                    .ok_or("--max-states needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --max-states: {e}"))?;
                i += 2;
            }
            other if command == "explain" && rule_arg.is_none() => {
                rule_arg = Some(other.to_owned());
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let result = match command.as_str() {
        "analyze" => cmd_analyze(&src, &protect, refine),
        "graph" => cmd_graph(&src, dot),
        "explore" => cmd_explore(&src, max_states, dot),
        "explain" => {
            let rule = rule_arg.ok_or("explain needs a rule name")?;
            starling_cli::cmd_explain(&src, &rule)
        }
        "run" => cmd_run(&src),
        "compare" => cmd_compare(&src),
        other => return Err(format!("unknown command `{other}`")),
    };
    result.map_err(|e| e.to_string())
}
