//! `starling` — static analyzer and runtime for Starburst-style database
//! production rules.
//!
//! ```text
//! starling analyze <file> [--protect t1,t2]...   full analysis report
//! starling graph <file> [--dot]                  triggering graph
//! starling explore <file> [--max-states N]       execution-graph oracle
//! starling run <file>                            execute with rule processing
//! starling compare <file>                        baseline comparison (Sec. 9)
//! starling serve [--addr H:P] [--workers N]      multi-session server
//! starling client [--addr H:P]                   stdin/stdout protocol client
//! starling recover <dir> [--verify]              inspect/verify durable stores
//! starling fuzz [--seed N] [--cases N]           differential fuzz campaign
//! ```
//!
//! Exit codes: `0` success (including definitive negative verdicts), `1`
//! usage or script error, `2` transaction aborted, `3` inconclusive (a
//! resource budget ran out before a verdict), `4` the fuzz harness found
//! oracle disagreements.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use starling_cli::{
    cmd_analyze, cmd_compare, cmd_explore, cmd_graph, cmd_run, CmdOutput, CmdStatus,
};
use starling_engine::Budget;

const USAGE: &str = "\
starling — analysis of database production rules (SIGMOD '92 reproduction)

USAGE:
    starling <COMMAND> <FILE> [OPTIONS]

COMMANDS:
    analyze    Termination, confluence, and observable-determinism report
    graph      Print the triggering graph (--dot for GraphViz)
    explore    Exhaustive execution-graph oracle over the script's
               user transition (--max-states N, default 20000)
    explain    With a rule name: that rule's Section 3 signature and
               interactions (starling explain <file> <rule>). Without one:
               explore the script's user transition with provenance tracing
               and, if the oracle finds divergent final states, print a
               minimal replay-verified divergence witness (--json,
               --max-states N, --timeout MS)
    run        Execute the script with rule processing at commit
    compare    Compare against HH91/ZH90/Ras90-analog criteria
    serve      Serve concurrent sessions over newline-delimited JSON
               (no file argument; --addr HOST:PORT, default 127.0.0.1:7878,
               port 0 picks an ephemeral port; --data-dir DIR enables durable
               named stores — sessions bind via load's \"persist\" parameter —
               with --sync always|batch, default always)
    client     Connect to a server: one JSON request per stdin line, one
               response per stdout line (--addr HOST:PORT)
    recover    Open the durable store(s) under <dir> (a store or a server
               data dir) and report what crash recovery yields; --verify
               additionally reloads each store through a full engine session
               and cross-checks digests
    fuzz       Differential fuzz campaign: random rule programs cross-checked
               through analyzer-vs-oracle, plan-vs-interp, sequential-vs-
               parallel, and server-vs-CLI; disagreements are shrunk and
               pinned (no file argument; --seed N, --cases N, --budget N
               per-case state bound, --corpus-dir DIR, --mutate NAME)

OPTIONS:
    --protect t1,t2           (analyze) also check partial confluence w.r.t.
                              the listed tables; repeatable
    --dot                     (graph/explore) emit GraphViz DOT
    --max-states N            (explore) state budget, default 20000
    --max-considerations N    (run) rule-consideration budget, default 10000
    --timeout MS              (explore/run) wall-clock budget in milliseconds
    --refine                  (analyze) enable the Section 9 predicate-level
                              commutativity refinement
    --json                    (analyze/explore/explain) machine-readable
                              output: one JSON object, same shape as the
                              server protocol
    --addr HOST:PORT          (serve/client) listen/connect address,
                              default 127.0.0.1:7878
    --data-dir DIR            (serve) durable data directory: every committed
                              session bound to a store is recoverable after a
                              crash (WAL + snapshots; created if missing)
    --sync always|batch       (serve) WAL fsync policy, default always
                              (batch trades the fsync-per-commit for one
                              every 32 commits plus snapshot points)
    --workers N               (serve) worker threads executing requests,
                              default 0 = one per available core (min 2)
    --max-inflight N          (serve) admission cap: requests admitted but
                              not yet completed across all sessions; beyond
                              it requests are refused with an `overloaded`
                              error (default 4096, 0 = unlimited)
    --threading pool|per-connection
                              (serve) executor: `pool` (default) multiplexes
                              all connections over the worker pool;
                              `per-connection` spawns one thread per
                              connection (legacy, ignores --workers and
                              --max-inflight)
    --verify                  (recover) reload stores through a full engine
                              session and cross-check digests
    --seed N                  (fuzz) campaign seed, default 0; same seed ⇒
                              byte-identical report
    --cases N                 (fuzz) number of generated programs, default 500
    --budget N                (fuzz) per-case exploration state bound,
                              default 300
    --max-rows N              (fuzz) seed rows generated per table, default 3
    --rules N                 (fuzz) generate exactly N rules per program
                              (tables scale along; seed rows drop to 0) —
                              the 1k-10k-rule analysis-scale shape
                              (the exploration row budget scales with it)
    --corpus-dir DIR          (fuzz) where shrunk reproducers are written;
                              default tests/fuzz_corpus when it exists
    --mutate NAME             (fuzz) inject an analyzer bug to self-test the
                              harness: certify-termination,
                              certify-confluence, certify-observable

EXIT CODES:
    0    success (definitive verdicts, including negative ones)
    1    usage or script error
    2    transaction aborted (database restored to the snapshot)
    3    inconclusive: a budget (--max-states / --max-considerations /
         --timeout) ran out before a verdict
    4    fuzz: oracle disagreement(s) found (reproducers in the corpus dir)
";

/// Exit code for usage/script errors.
const EXIT_ERROR: u8 = 1;
/// Exit code for an aborted transaction.
const EXIT_ABORTED: u8 = 2;
/// Exit code for budget-exhausted, inconclusive results.
const EXIT_INCONCLUSIVE: u8 = 3;
/// Exit code for fuzz-harness oracle disagreements.
const EXIT_FINDINGS: u8 = 4;

fn main() -> ExitCode {
    // Panics are bugs (errors travel through Result): keep the one-line
    // pointer so reports reach the tracker instead of dying in a backtrace.
    // Writes ignore failure — a closed stderr (`starling ... 2>&1 | head`)
    // must not turn a report into a panic-in-panic abort.
    std::panic::set_hook(Box::new(|info| {
        let _ = writeln!(
            std::io::stderr(),
            "starling internal error: {info}\n\
             this is a bug — please report it at \
             https://github.com/starling-db/starling/issues with the command \
             line and script that triggered it"
        );
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            let _ = write!(std::io::stdout(), "{}", out.text);
            match out.status {
                CmdStatus::Ok => ExitCode::SUCCESS,
                CmdStatus::Aborted => ExitCode::from(EXIT_ABORTED),
                CmdStatus::Inconclusive => ExitCode::from(EXIT_INCONCLUSIVE),
                CmdStatus::Findings => ExitCode::from(EXIT_FINDINGS),
            }
        }
        Err(msg) => {
            let _ = writeln!(std::io::stderr(), "error: {msg}\n\n{USAGE}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn run(args: &[String]) -> Result<CmdOutput, String> {
    let command = args.first().ok_or("missing command")?;
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(CmdOutput {
            text: USAGE.to_owned(),
            status: CmdStatus::Ok,
        });
    }
    if command == "serve" || command == "client" {
        return serve_or_client(command, &args[1..]);
    }
    if command == "fuzz" {
        return fuzz(&args[1..]);
    }
    if command == "recover" {
        return recover(&args[1..]);
    }
    let file = args.get(1).ok_or("missing script file")?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;

    let mut rule_arg: Option<String> = None;
    let mut protect: Vec<Vec<String>> = Vec::new();
    let mut dot = false;
    let mut refine = false;
    let mut json = false;
    let mut budget = Budget::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--protect" => {
                let v = args.get(i + 1).ok_or("--protect needs a table list")?;
                protect.push(v.split(',').map(|s| s.trim().to_owned()).collect());
                i += 2;
            }
            "--dot" => {
                dot = true;
                i += 1;
            }
            "--refine" => {
                refine = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--max-states" => {
                budget.max_states = args
                    .get(i + 1)
                    .ok_or("--max-states needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --max-states: {e}"))?;
                i += 2;
            }
            "--max-considerations" => {
                budget.max_considerations = args
                    .get(i + 1)
                    .ok_or("--max-considerations needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --max-considerations: {e}"))?;
                i += 2;
            }
            "--timeout" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or("--timeout needs milliseconds")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                budget.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            other if command == "explain" && rule_arg.is_none() => {
                rule_arg = Some(other.to_owned());
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    let result = match command.as_str() {
        "analyze" => cmd_analyze(&src, &protect, refine, json).map(|text| CmdOutput {
            text,
            status: CmdStatus::Ok,
        }),
        "graph" => cmd_graph(&src, dot).map(|text| CmdOutput {
            text,
            status: CmdStatus::Ok,
        }),
        "explore" => cmd_explore(&src, &budget, dot, json),
        "explain" => match rule_arg {
            Some(rule) => starling_cli::cmd_explain(&src, &rule).map(|text| CmdOutput {
                text,
                status: CmdStatus::Ok,
            }),
            None => starling_cli::cmd_explain_divergence(&src, &budget, json),
        },
        "run" => cmd_run(&src, &budget),
        "compare" => cmd_compare(&src).map(|text| CmdOutput {
            text,
            status: CmdStatus::Ok,
        }),
        other => return Err(format!("unknown command `{other}`")),
    };
    result.map_err(|e| e.to_string())
}

/// The `fuzz` subcommand: a differential fuzz campaign (no file argument).
/// `--cases` defaults to 500, the acceptance-criteria campaign size; the
/// corpus dir defaults to `tests/fuzz_corpus` when running from a checkout
/// (where the pinned-reproducer replay test will pick new findings up), and
/// to nowhere otherwise.
fn fuzz(args: &[String]) -> Result<CmdOutput, String> {
    let mut config = starling_fuzz::FuzzConfig {
        cases: 500,
        ..starling_fuzz::FuzzConfig::default()
    };
    let mut corpus_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                config.seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
                i += 2;
            }
            "--cases" => {
                config.cases = args
                    .get(i + 1)
                    .ok_or("--cases needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --cases: {e}"))?;
                i += 2;
            }
            "--budget" => {
                config.budget.max_states = args
                    .get(i + 1)
                    .ok_or("--budget needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
                i += 2;
            }
            "--max-rows" => {
                let rows: usize = args
                    .get(i + 1)
                    .ok_or("--max-rows needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --max-rows: {e}"))?;
                config.gen.max_rows = rows;
                // Generated tables start larger, so the exploration row cap
                // must scale with them or every case truncates immediately.
                // The default ratio (3 seed rows : 2000 budget rows) is
                // preserved, with the stock budget as the floor.
                config.budget.max_rows = config.budget.max_rows.max(rows.saturating_mul(700));
                i += 2;
            }
            "--rules" => {
                let rules: usize = args
                    .get(i + 1)
                    .ok_or("--rules needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --rules: {e}"))?;
                if rules == 0 {
                    return Err("--rules must be at least 1".into());
                }
                // Scale the whole generator shape, not just the rule count:
                // tables grow with rules so the conflict density (and hence
                // report size) stays bounded, and seed rows drop to zero.
                // --max-rows after --rules can re-enable seed data.
                let scaled = starling_fuzz::GenConfig::scaled(rules);
                config.gen.max_rules = scaled.max_rules;
                config.gen.min_rules = scaled.min_rules;
                config.gen.max_tables = scaled.max_tables;
                config.gen.max_rows = scaled.max_rows;
                i += 2;
            }
            "--corpus-dir" => {
                corpus_dir = Some(args.get(i + 1).ok_or("--corpus-dir needs a path")?.clone());
                i += 2;
            }
            "--mutate" => {
                let name = args.get(i + 1).ok_or("--mutate needs a name")?;
                config.mutation = starling_fuzz::Mutation::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown mutation `{name}` (expected certify-termination, \
                         certify-confluence, or certify-observable)"
                    )
                })?;
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    config.corpus_dir = match corpus_dir {
        Some(d) => Some(std::path::PathBuf::from(d)),
        None => {
            let default = std::path::Path::new("tests/fuzz_corpus");
            default.is_dir().then(|| default.to_path_buf())
        }
    };
    Ok(starling_cli::cmd_fuzz(config))
}

/// The `recover` subcommand: report (and with `--verify` cross-check) what
/// crash recovery yields for the durable store(s) under a directory.
fn recover(args: &[String]) -> Result<CmdOutput, String> {
    let mut dir: Option<&str> = None;
    let mut verify = false;
    for arg in args {
        match arg.as_str() {
            "--verify" => verify = true,
            other if dir.is_none() && !other.starts_with("--") => dir = Some(other),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let dir = dir.ok_or("recover needs a store or data directory")?;
    starling_cli::cmd_recover(std::path::Path::new(dir), verify).map_err(|e| e.to_string())
}

/// The `serve` and `client` subcommands. Both stream to stdout directly
/// (the listening line must appear before `serve` blocks; responses must
/// appear as they arrive), so they return an empty [`CmdOutput`].
fn serve_or_client(command: &str, args: &[String]) -> Result<CmdOutput, String> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut data_dir: Option<String> = None;
    let mut sync = starling_storage::SyncPolicy::Always;
    let mut cfg = starling_server::ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr needs HOST:PORT")?.clone();
                i += 2;
            }
            "--data-dir" if command == "serve" => {
                data_dir = Some(args.get(i + 1).ok_or("--data-dir needs a path")?.clone());
                i += 2;
            }
            "--sync" if command == "serve" => {
                let name = args.get(i + 1).ok_or("--sync needs always|batch")?;
                sync = starling_storage::SyncPolicy::from_name(name)
                    .ok_or_else(|| format!("bad --sync `{name}` (expected always or batch)"))?;
                i += 2;
            }
            "--workers" if command == "serve" => {
                let n = args.get(i + 1).ok_or("--workers needs a count")?;
                cfg.workers = n
                    .parse()
                    .map_err(|_| format!("bad --workers `{n}` (expected a count; 0 = per core)"))?;
                i += 2;
            }
            "--max-inflight" if command == "serve" => {
                let n = args.get(i + 1).ok_or("--max-inflight needs a count")?;
                cfg.max_inflight = n.parse().map_err(|_| {
                    format!("bad --max-inflight `{n}` (expected a count; 0 = unlimited)")
                })?;
                i += 2;
            }
            "--threading" if command == "serve" => {
                let name = args
                    .get(i + 1)
                    .ok_or("--threading needs pool|per-connection")?;
                cfg.threading = match name.as_str() {
                    "pool" => starling_server::Threading::Pool,
                    "per-connection" => starling_server::Threading::PerConnection,
                    _ => {
                        return Err(format!(
                            "bad --threading `{name}` (expected pool or per-connection)"
                        ))
                    }
                };
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    match command {
        "serve" => {
            let durable = match &data_dir {
                None => None,
                Some(d) => {
                    let dir = std::path::Path::new(d);
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create data dir `{d}`: {e}"))?;
                    // Startup recovery scan: prove every existing store is
                    // recoverable (and report torn tails) before serving.
                    match starling_cli::cmd_recover(dir, false) {
                        Ok(out) => print!("{}", out.text),
                        Err(e) if e.to_string().contains("no durable stores") => {
                            println!("data dir `{d}`: no stores yet");
                        }
                        Err(e) => return Err(format!("data dir `{d}`: {e}")),
                    }
                    Some(starling_server::DurableRoot::new(dir, sync))
                }
            };
            let server = starling_server::Server::bind_cfg(&addr, durable, cfg)
                .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
            // Scripts parse this line for the (possibly ephemeral) port.
            println!("starling-server listening on {}", server.local_addr());
            server.join();
            println!("starling-server drained");
        }
        "client" => {
            let mut client = starling_server::Client::connect(&addr)
                .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                let n = stdin
                    .read_line(&mut line)
                    .map_err(|e| format!("stdin: {e}"))?;
                if n == 0 {
                    break;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let response = client
                    .raw_request(line.trim_end())
                    .map_err(|e| format!("connection lost: {e}"))?;
                println!("{response}");
            }
        }
        _ => unreachable!("dispatched on serve/client only"),
    }
    Ok(CmdOutput {
        text: String::new(),
        status: CmdStatus::Ok,
    })
}
