//! End-to-end tests of the compiled `starling` binary: argument handling,
//! exit codes, and output, via `CARGO_BIN_EXE`.

use std::process::Command;

/// Runs the binary and returns `(exit_code, stdout, stderr)`.
fn starling(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_starling"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().expect("not killed by signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn script_file(content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "starling_e2e_{}_{}.rql",
        std::process::id(),
        content.len()
    ));
    std::fs::write(&path, content).unwrap();
    path
}

const SCRIPT: &str = "
    create table t (x int);
    create table u (x int);
    insert into u values (0);
    create rule a on t when inserted then update u set x = 1 end;
    create rule b on t when inserted then update u set x = 2 end;
    insert into t values (1);
";

#[test]
fn help_prints_usage() {
    let (code, stdout, _) = starling(&["help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("USAGE:"));
    assert!(stdout.contains("EXIT CODES:"), "{stdout}");
}

#[test]
fn missing_command_fails_with_usage() {
    let (code, _, stderr) = starling(&[]);
    assert_eq!(code, 1);
    assert!(stderr.contains("missing command"));
}

#[test]
fn unknown_file_fails() {
    let (code, _, stderr) = starling(&["analyze", "/nonexistent/path.rql"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn analyze_explore_graph_compare_pipeline() {
    let path = script_file(SCRIPT);
    let p = path.to_str().unwrap();

    let (code, stdout, _) = starling(&["analyze", p]);
    assert_eq!(code, 0);
    assert!(stdout.contains("MAY NOT BE CONFLUENT"), "{stdout}");

    // A definitive negative verdict is still a successful analysis: exit 0.
    let (code, stdout, _) = starling(&["explore", p]);
    assert_eq!(code, 0);
    assert!(stdout.contains("unique final state:      NO"), "{stdout}");

    let (code, stdout, _) = starling(&["graph", p, "--dot"]);
    assert_eq!(code, 0);
    assert!(stdout.starts_with("digraph"), "{stdout}");

    let (code, stdout, _) = starling(&["compare", p]);
    assert_eq!(code, 0);
    assert!(stdout.contains("hh91-analog"), "{stdout}");

    let (code, stdout, _) = starling(&["explain", p, "a"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("Triggered-By"), "{stdout}");

    let (code, stdout, _) = starling(&["run", p]);
    assert_eq!(code, 0);
    assert!(stdout.contains("rule processing"), "{stdout}");

    std::fs::remove_file(path).ok();
}

#[test]
fn bad_script_reports_parse_error() {
    let path = script_file("create rule broken on");
    let (code, _, stderr) = starling(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stderr.contains("parse error"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn explore_truncation_exits_inconclusive() {
    // Unbounded growth truncates at the tiny bound: exit code 3 and the
    // truncation reason named in the report.
    let path = script_file(
        "create table t (x int);
         create rule grow on t when inserted then insert into t select x + 1 from inserted end;
         insert into t values (1);",
    );
    let (code, stdout, _) = starling(&["explore", path.to_str().unwrap(), "--max-states", "20"]);
    assert_eq!(code, 3);
    assert!(
        stdout.contains("[TRUNCATED: state budget exhausted]"),
        "{stdout}"
    );
    assert!(stdout.contains("inconclusive"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_limit_exits_inconclusive_with_diagnosis() {
    // A ping-pong pair never quiesces; a small consideration budget makes
    // `run` stop, report the dynamic cycle, and exit 3.
    let path = script_file(
        "create table t (x int);
         create table u (x int);
         create rule ping on t when inserted then insert into u values (1) end;
         create rule pong on u when inserted then insert into t values (1) end;
         insert into t values (1);",
    );
    let (code, stdout, _) =
        starling(&["run", path.to_str().unwrap(), "--max-considerations", "40"]);
    assert_eq!(code, 3);
    assert!(stdout.contains("dynamic cycle"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_zero_timeout_exits_inconclusive() {
    let path = script_file(SCRIPT);
    let (code, stdout, _) = starling(&["run", path.to_str().unwrap(), "--timeout", "0"]);
    assert_eq!(code, 3);
    assert!(stdout.contains("deadline exceeded"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let path = script_file(SCRIPT);
    let (code, _, stderr) = starling(&[
        "explore",
        path.to_str().unwrap(),
        "--max-states",
        "not-a-number",
    ]);
    assert_eq!(code, 1);
    assert!(stderr.contains("bad --max-states"), "{stderr}");
    std::fs::remove_file(path).ok();
}
