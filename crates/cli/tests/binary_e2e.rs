//! End-to-end tests of the compiled `starling` binary: argument handling,
//! exit codes, and output, via `CARGO_BIN_EXE`.

use std::process::Command;

fn starling(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_starling"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn script_file(content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "starling_e2e_{}_{}.rql",
        std::process::id(),
        content.len()
    ));
    std::fs::write(&path, content).unwrap();
    path
}

const SCRIPT: &str = "
    create table t (x int);
    create table u (x int);
    insert into u values (0);
    create rule a on t when inserted then update u set x = 1 end;
    create rule b on t when inserted then update u set x = 2 end;
    insert into t values (1);
";

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = starling(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE:"));
}

#[test]
fn missing_command_fails_with_usage() {
    let (ok, _, stderr) = starling(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing command"));
}

#[test]
fn unknown_file_fails() {
    let (ok, _, stderr) = starling(&["analyze", "/nonexistent/path.rql"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn analyze_explore_graph_compare_pipeline() {
    let path = script_file(SCRIPT);
    let p = path.to_str().unwrap();

    let (ok, stdout, _) = starling(&["analyze", p]);
    assert!(ok);
    assert!(stdout.contains("MAY NOT BE CONFLUENT"), "{stdout}");

    let (ok, stdout, _) = starling(&["explore", p]);
    assert!(ok);
    assert!(stdout.contains("unique final state:      NO"), "{stdout}");

    let (ok, stdout, _) = starling(&["graph", p, "--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"), "{stdout}");

    let (ok, stdout, _) = starling(&["compare", p]);
    assert!(ok);
    assert!(stdout.contains("hh91-analog"), "{stdout}");

    let (ok, stdout, _) = starling(&["explain", p, "a"]);
    assert!(ok);
    assert!(stdout.contains("Triggered-By"), "{stdout}");

    let (ok, stdout, _) = starling(&["run", p]);
    assert!(ok);
    assert!(stdout.contains("rule processing"), "{stdout}");

    std::fs::remove_file(path).ok();
}

#[test]
fn bad_script_reports_parse_error() {
    let path = script_file("create rule broken on");
    let (ok, _, stderr) = starling(&["analyze", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn explore_respects_max_states() {
    // Unbounded growth truncates at the tiny bound.
    let path = script_file(
        "create table t (x int);
         create rule grow on t when inserted then insert into t select x + 1 from inserted end;
         insert into t values (1);",
    );
    let (ok, stdout, _) = starling(&["explore", path.to_str().unwrap(), "--max-states", "20"]);
    assert!(ok);
    assert!(stdout.contains("[TRUNCATED]"), "{stdout}");
    std::fs::remove_file(path).ok();
}
