//! User certifications: the interactive inputs of Sections 5 and 6.1.
//!
//! The analyses are conservative; the paper's remedy is interaction:
//!
//! * "We allow the user to declare that pairs of rules that appear
//!   noncommutative according to Lemma 6.1 actually do commute" (§6.1) —
//!   [`Certifications::certify_commute`];
//! * "If the user is able to verify that, on each cycle, there is some rule
//!   r such that repeated consideration ... guarantees that r's condition
//!   eventually becomes false or r's action eventually has no effect, then
//!   the rules are guaranteed to terminate" (§5) —
//!   [`Certifications::certify_terminates`].

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;
use starling_sql::ast::Directive;

/// The set of user certifications in force for an analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Certifications {
    commute: BTreeSet<(String, String)>,
    terminates: BTreeMap<String, String>,
}

fn norm(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

impl Certifications {
    /// No certifications.
    pub fn new() -> Self {
        Certifications::default()
    }

    /// Builds from parsed `declare` directives.
    pub fn from_directives<'a>(ds: impl IntoIterator<Item = &'a Directive>) -> Self {
        let mut c = Certifications::new();
        for d in ds {
            c.record(d);
        }
        c
    }

    /// Records one directive.
    pub fn record(&mut self, d: &Directive) {
        match d {
            Directive::Commute(a, b) => self.certify_commute(a, b),
            Directive::Terminates {
                rule,
                justification,
            } => self.certify_terminates(rule, justification),
        }
    }

    /// Declares that two rules commute despite Lemma 6.1 (unordered pair).
    pub fn certify_commute(&mut self, a: &str, b: &str) {
        self.commute.insert(norm(a, b));
    }

    /// Declares that cycles through `rule` terminate, with a recorded
    /// justification.
    pub fn certify_terminates(&mut self, rule: &str, justification: &str) {
        self.terminates
            .insert(rule.to_owned(), justification.to_owned());
    }

    /// Removes a commutativity certification (returns whether it existed).
    pub fn revoke_commute(&mut self, a: &str, b: &str) -> bool {
        self.commute.remove(&norm(a, b))
    }

    /// Whether the pair is certified commutative.
    pub fn commute_certified(&self, a: &str, b: &str) -> bool {
        self.commute.contains(&norm(a, b))
    }

    /// Whether the rule carries a termination certificate; returns its
    /// justification.
    pub fn termination_certificate(&self, rule: &str) -> Option<&str> {
        self.terminates.get(rule).map(String::as_str)
    }

    /// All commutativity certifications (normalized pairs).
    pub fn commute_pairs(&self) -> impl Iterator<Item = &(String, String)> {
        self.commute.iter()
    }

    /// All termination certificates.
    pub fn termination_certificates(&self) -> impl Iterator<Item = (&str, &str)> {
        self.terminates
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of certifications of both kinds.
    pub fn len(&self) -> usize {
        self.commute.len() + self.terminates.len()
    }

    /// Whether no certifications are recorded.
    pub fn is_empty(&self) -> bool {
        self.commute.is_empty() && self.terminates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commute_is_symmetric() {
        let mut c = Certifications::new();
        c.certify_commute("b", "a");
        assert!(c.commute_certified("a", "b"));
        assert!(c.commute_certified("b", "a"));
        assert!(!c.commute_certified("a", "c"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_certifications_collapse() {
        let mut c = Certifications::new();
        c.certify_commute("a", "b");
        c.certify_commute("b", "a");
        assert_eq!(c.len(), 1);
        assert!(c.revoke_commute("a", "b"));
        assert!(!c.revoke_commute("a", "b"));
        assert!(c.is_empty());
    }

    #[test]
    fn terminates_with_justification() {
        let mut c = Certifications::new();
        c.certify_terminates("cleanup", "only deletes");
        assert_eq!(c.termination_certificate("cleanup"), Some("only deletes"));
        assert_eq!(c.termination_certificate("other"), None);
    }

    #[test]
    fn from_directives() {
        let ds = vec![
            Directive::Commute("x".into(), "y".into()),
            Directive::Terminates {
                rule: "z".into(),
                justification: "monotone".into(),
            },
        ];
        let c = Certifications::from_directives(&ds);
        assert!(c.commute_certified("y", "x"));
        assert_eq!(c.termination_certificate("z"), Some("monotone"));
    }
}
