//! Rule commutativity analysis (paper Section 6.1, Lemma 6.1).
//!
//! Two rules `r_i`, `r_j` commute when considering them in either order from
//! any execution-graph state produces the same state (Figure 1). Lemma 6.1
//! gives six syntactic conditions under which they *may not* commute; if
//! none holds, the rules are guaranteed to commute. The conditions are
//! deliberately conservative (e.g., inserts "affecting" deletes of the same
//! table even when the delete predicate can never select the inserted
//! tuples) — the user may override per pair via
//! [`crate::Certifications::certify_commute`].

use std::fmt;

use serde::Serialize;
use starling_sql::RuleSignature;
use starling_storage::Op;

use crate::certifications::Certifications;
use crate::context::AnalysisContext;

/// One reason a pair of rules may not commute (a condition of Lemma 6.1
/// that fired). `who`/`whom` are rule names; each condition is reported in
/// the direction it fired (condition 6 is covered by testing both
/// directions).
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum NoncommutativityReason {
    /// Condition 1: `who` can cause `whom` to become triggered.
    Triggers {
        /// The triggering rule.
        who: String,
        /// The rule that may become triggered.
        whom: String,
    },
    /// Condition 2: `who`'s deletions can untrigger `whom`.
    Untriggers {
        /// The untriggering rule.
        who: String,
        /// The rule that may be untriggered.
        whom: String,
    },
    /// Condition 2′ (Starling extension, not in the paper): `who`'s
    /// insertions into `table` can sit in `whom`'s pending transition
    /// window and annihilate a later delete (net-effect rule 4), masking a
    /// triggering deletion of `whom`. See `tests/masking_finding.rs` for a
    /// concrete counterexample to Lemma 6.1 without this condition.
    InsertMasksDelete {
        /// The inserting rule.
        who: String,
        /// The shared table.
        table: String,
        /// The delete-triggered rule whose re-triggering can be masked.
        whom: String,
    },
    /// Condition 3: `who`'s operation can affect what `whom` reads.
    WriteRead {
        /// The writing rule.
        who: String,
        /// The written operation, e.g. `(U, emp.salary)`.
        op: String,
        /// The reading rule.
        whom: String,
    },
    /// Condition 4: `who`'s insertions into `table` can affect what `whom`
    /// updates or deletes there.
    InsertWrite {
        /// The inserting rule.
        who: String,
        /// The shared table.
        table: String,
        /// The updating/deleting rule.
        whom: String,
    },
    /// Condition 5: both rules update the same column.
    UpdateUpdate {
        /// One updating rule.
        who: String,
        /// The shared column, e.g. `emp.salary`.
        column: String,
        /// The other updating rule.
        whom: String,
    },
}

impl fmt::Display for NoncommutativityReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoncommutativityReason::Triggers { who, whom } => {
                write!(f, "`{who}` can trigger `{whom}` (Lemma 6.1, condition 1)")
            }
            NoncommutativityReason::Untriggers { who, whom } => {
                write!(f, "`{who}` can untrigger `{whom}` (condition 2)")
            }
            NoncommutativityReason::InsertMasksDelete { who, table, whom } => write!(
                f,
                "`{who}` inserts into `{table}`, which can mask a deletion that would \
                 re-trigger `{whom}` (condition 2\u{2032}, Starling extension)"
            ),
            NoncommutativityReason::WriteRead { who, op, whom } => {
                write!(
                    f,
                    "`{who}` performs {op}, which `{whom}` reads (condition 3)"
                )
            }
            NoncommutativityReason::InsertWrite { who, table, whom } => write!(
                f,
                "`{who}` inserts into `{table}`, which `{whom}` updates or deletes (condition 4)"
            ),
            NoncommutativityReason::UpdateUpdate { who, column, whom } => write!(
                f,
                "`{who}` and `{whom}` both update `{column}` (condition 5)"
            ),
        }
    }
}

/// All Lemma 6.1 conditions that fire for the (ordered) direction
/// `a`-affects-`b`, given the `Triggers`/`Can-Untrigger` predicates of a
/// context. Exposed at signature level so the Section 8 extended
/// definitions reuse it.
fn directed_reasons(
    a: &RuleSignature,
    b: &RuleSignature,
    with_masking: bool,
    out: &mut Vec<NoncommutativityReason>,
) {
    // Condition 1: a's Performs intersects b's Triggered-By.
    if b.triggered_by.iter().any(|op| a.performs.contains(op)) {
        out.push(NoncommutativityReason::Triggers {
            who: a.name.clone(),
            whom: b.name.clone(),
        });
    }
    // Condition 2: b ∈ Can-Untrigger(Performs(a)).
    let untriggers = a.performs.iter().any(|op| match op {
        Op::Delete(t) => b.triggered_by.iter().any(|tb| match tb {
            Op::Insert(t2) => t2 == t,
            Op::Update(c) => &c.table == t,
            Op::Delete(_) => false,
        }),
        _ => false,
    });
    if untriggers {
        out.push(NoncommutativityReason::Untriggers {
            who: a.name.clone(),
            whom: b.name.clone(),
        });
    }
    // Condition 2′: a's inserts can mask b's triggering deletes.
    if with_masking {
        for op in &a.performs {
            let Op::Insert(t) = op else { continue };
            if b.triggered_by.contains(&Op::Delete(t.clone())) {
                out.push(NoncommutativityReason::InsertMasksDelete {
                    who: a.name.clone(),
                    table: t.clone(),
                    whom: b.name.clone(),
                });
            }
        }
    }
    // Condition 3: a writes something b reads.
    for op in &a.performs {
        let hit = match op {
            Op::Insert(t) | Op::Delete(t) => b.reads.iter().any(|c| &c.table == t),
            Op::Update(c) => b.reads.contains(c),
        };
        if hit {
            out.push(NoncommutativityReason::WriteRead {
                who: a.name.clone(),
                op: op.to_string(),
                whom: b.name.clone(),
            });
        }
    }
    // Condition 4: a inserts into t; b updates or deletes t.
    for op in &a.performs {
        let Op::Insert(t) = op else { continue };
        let hit = b.performs.iter().any(|p| match p {
            Op::Delete(t2) => t2 == t,
            Op::Update(c) => &c.table == t,
            Op::Insert(_) => false,
        });
        if hit {
            out.push(NoncommutativityReason::InsertWrite {
                who: a.name.clone(),
                table: t.clone(),
                whom: b.name.clone(),
            });
        }
    }
    // Condition 5: both update the same column (report once, from a's
    // perspective; the reversed direction would duplicate it).
    for op in &a.performs {
        let Op::Update(c) = op else { continue };
        if b.performs.contains(op) && a.name <= b.name {
            out.push(NoncommutativityReason::UpdateUpdate {
                who: a.name.clone(),
                column: c.to_string(),
                whom: b.name.clone(),
            });
        }
    }
}

/// All reasons the pair may not commute (conditions 1–5 in both directions;
/// condition 6 of the lemma is exactly the reversal). Empty means the rules
/// are guaranteed to commute.
///
/// A rule trivially commutes with itself ("each rule clearly commutes with
/// itself"): the result is empty for identical names.
pub fn noncommutativity_reasons(
    a: &RuleSignature,
    b: &RuleSignature,
) -> Vec<NoncommutativityReason> {
    reasons_with(a, b, true)
}

/// The conditions exactly as published in Lemma 6.1, *without* condition
/// 2′. Unsound for the strict Section 2 operational semantics (see
/// `tests/masking_finding.rs`) but faithful to the paper — used by the
/// fidelity experiments.
pub fn noncommutativity_reasons_lemma61(
    a: &RuleSignature,
    b: &RuleSignature,
) -> Vec<NoncommutativityReason> {
    reasons_with(a, b, false)
}

fn reasons_with(
    a: &RuleSignature,
    b: &RuleSignature,
    with_masking: bool,
) -> Vec<NoncommutativityReason> {
    if a.name == b.name {
        return Vec::new();
    }
    let mut out = Vec::new();
    directed_reasons(a, b, with_masking, &mut out);
    directed_reasons(b, a, with_masking, &mut out);
    out
}

/// Whether the pair commutes, honoring user certifications.
pub fn commutes(a: &RuleSignature, b: &RuleSignature, certs: &Certifications) -> bool {
    a.name == b.name
        || certs.commute_certified(&a.name, &b.name)
        || noncommutativity_reasons(a, b).is_empty()
}

/// Index-based variant over a context; honors certifications and, when
/// [`AnalysisContext::refine`] is set, the Section 9 predicate-level
/// refinement.
///
/// Pair verdicts are memoized in the context's bound [`crate::pair_store::
/// PairStore`] (the confluence analyses ask about the same pair once per
/// subset and once per generating-pair closure containing it): each Lemma
/// 6.1 derivation runs at most once per store binding, and — unlike the old
/// per-context cache — survives into the next analysis when the bind-time
/// diff proves the pair unaffected.
pub fn commutes_idx(ctx: &AnalysisContext, i: usize, j: usize) -> bool {
    if i == j {
        return true;
    }
    let (a, b) = (ctx.sid(i), ctx.sid(j));
    if let Some(hit) = ctx.pair_store().verdict(a, b) {
        return hit;
    }
    let result = commutes_idx_uncached(ctx, i, j);
    ctx.pair_store().set_verdict(a, b, result);
    result
}

/// The pure per-pair verdict, bypassing the store. Exposed crate-wide so
/// the parallel cold sweep can compute verdicts without lock traffic.
pub(crate) fn commutes_idx_uncached(ctx: &AnalysisContext, i: usize, j: usize) -> bool {
    if commutes(&ctx.sigs[i], &ctx.sigs[j], &ctx.certs) {
        return true;
    }
    if ctx.refine {
        let reasons = noncommutativity_reasons(&ctx.sigs[i], &ctx.sigs[j]);
        return crate::refine::refine_reasons(ctx, i, j, reasons).is_empty();
    }
    false
}

/// [`noncommutativity_reasons`] over context indices, memoized per ordered
/// pair (the reported direction matters for display, so `(i, j)` and
/// `(j, i)` cache separately).
pub fn noncommutativity_reasons_idx(
    ctx: &AnalysisContext,
    i: usize,
    j: usize,
) -> Vec<NoncommutativityReason> {
    let (a, b) = (ctx.sid(i), ctx.sid(j));
    if let Some(hit) = ctx.pair_store().reasons(a, b) {
        return hit;
    }
    let reasons = noncommutativity_reasons(&ctx.sigs[i], &ctx.sigs[j]);
    ctx.pair_store().set_reasons(a, b, reasons.clone());
    reasons
}

/// Computes every missing pair verdict for the context with scoped worker
/// threads — the parallel cold-start sweep. Downstream reports are
/// byte-identical to the sequential path because each verdict is a pure
/// function of the pair (certifications and the refinement included): the
/// sweep only changes *when* verdicts are computed, never *what* they are.
/// Workers probe a point-in-time snapshot of the known-bits (zero lock
/// traffic on the hot path) and flush disjoint batches; bit positions are
/// per-pair, so merge order cannot affect the final store state.
pub fn prewarm_pairs(ctx: &AnalysisContext) {
    let n = ctx.len();
    let total = n * n.saturating_sub(1) / 2;
    if total == 0 {
        return;
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(total);
    if workers <= 1 {
        for j in 1..n {
            for i in 0..j {
                commutes_idx(ctx, i, j);
            }
        }
        return;
    }
    let known = ctx.pair_store().known_snapshot();
    let chunk = total.div_ceil(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(total));
            let known = &known;
            s.spawn(move || {
                // Invert the triangular index: pair t sits at (i, j) with
                // j(j-1)/2 <= t < j(j+1)/2; walk (i, j) forward from there.
                let mut j = ((1.0 + (1.0 + 8.0 * lo as f64).sqrt()) / 2.0) as usize;
                while j * (j - 1) / 2 > lo {
                    j -= 1;
                }
                while j * (j + 1) / 2 <= lo {
                    j += 1;
                }
                let mut i = lo - j * (j - 1) / 2;
                let mut buf: Vec<(u32, u32, bool)> = Vec::new();
                for _ in lo..hi {
                    let (a, b) = (ctx.sid(i), ctx.sid(j));
                    if !known.contains(a, b) {
                        buf.push((a, b, commutes_idx_uncached(ctx, i, j)));
                        if buf.len() >= 1 << 16 {
                            ctx.pair_store().merge_verdicts(&buf);
                            buf.clear();
                        }
                    }
                    i += 1;
                    if i == j {
                        i = 0;
                        j += 1;
                    }
                }
                ctx.pair_store().merge_verdicts(&buf);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use super::*;

    fn sigs(src: &str, tables: &[(&str, &[&str])]) -> Vec<RuleSignature> {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        RuleSet::compile(&defs, &cat)
            .unwrap()
            .rules()
            .iter()
            .map(|r| r.sig.clone())
            .collect()
    }

    const TABLES: &[(&str, &[&str])] = &[("t", &["x", "y"]), ("u", &["x"]), ("v", &["x"])];

    #[test]
    fn disjoint_rules_commute() {
        let s = sigs(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on t when deleted then insert into v values (1) end;",
            TABLES,
        );
        assert!(noncommutativity_reasons(&s[0], &s[1]).is_empty());
        assert!(commutes(&s[0], &s[1], &Certifications::new()));
    }

    #[test]
    fn condition1_triggering() {
        let s = sigs(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then insert into v values (1) end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs.iter().any(
            |r| matches!(r, NoncommutativityReason::Triggers { who, whom }
                if who == "a" && whom == "b")
        ));
    }

    #[test]
    fn condition2_untriggering() {
        // a deletes from u; b is triggered by inserts into u.
        let s = sigs(
            "create rule a on t when inserted then delete from u end;
             create rule b on u when inserted then insert into v values (1) end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs.iter().any(
            |r| matches!(r, NoncommutativityReason::Untriggers { who, whom }
                if who == "a" && whom == "b")
        ));
    }

    #[test]
    fn condition3_write_read() {
        let s = sigs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted \
               if exists (select * from u where x > 0) \
               then insert into v values (1) end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs.iter().any(
            |r| matches!(r, NoncommutativityReason::WriteRead { who, whom, .. }
                if who == "a" && whom == "b")
        ));
    }

    #[test]
    fn condition4_insert_vs_write_without_read() {
        // b deletes from u without reading it (paper footnote 3: possible
        // in SQL) — condition 4 is what catches this, not condition 3.
        let s = sigs(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on t when deleted then delete from u end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs.iter().any(
            |r| matches!(r, NoncommutativityReason::InsertWrite { who, table, whom }
                if who == "a" && table == "u" && whom == "b")
        ));
    }

    #[test]
    fn condition5_update_update() {
        let s = sigs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted then update u set x = 2 end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        let count = rs
            .iter()
            .filter(|r| matches!(r, NoncommutativityReason::UpdateUpdate { .. }))
            .count();
        assert_eq!(count, 1, "condition 5 reported exactly once: {rs:?}");
    }

    #[test]
    fn condition6_reversal() {
        // The asymmetric case: only b affects a; reversal must catch it.
        let s = sigs(
            "create rule a on u when inserted then insert into v values (1) end;
             create rule b on t when inserted then insert into u values (1) end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs.iter().any(
            |r| matches!(r, NoncommutativityReason::Triggers { who, whom }
                if who == "b" && whom == "a")
        ));
    }

    #[test]
    fn self_commutes() {
        let s = sigs(
            "create rule a on t when inserted then update t set x = x + 1 end",
            TABLES,
        );
        assert!(noncommutativity_reasons(&s[0], &s[0]).is_empty());
        assert!(commutes(&s[0], &s[0], &Certifications::new()));
    }

    #[test]
    fn certification_overrides() {
        let s = sigs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted then update u set x = 2 end;",
            TABLES,
        );
        let mut certs = Certifications::new();
        assert!(!commutes(&s[0], &s[1], &certs));
        certs.certify_commute("a", "b");
        assert!(commutes(&s[0], &s[1], &certs));
    }

    #[test]
    fn reads_via_own_action_where_clause() {
        // a updates t.y; b deletes from t where y > 0 (reads t.y).
        let s = sigs(
            "create rule a on u when inserted then update t set y = 1 end;
             create rule b on u when deleted then delete from t where y > 0 end;",
            TABLES,
        );
        let rs = noncommutativity_reasons(&s[0], &s[1]);
        assert!(rs
            .iter()
            .any(|r| matches!(r, NoncommutativityReason::WriteRead { .. })));
    }

    /// The memoized index-level queries agree with the signature-level
    /// ground truth on every pair, on first and repeated queries, and the
    /// cache is dropped when its inputs change.
    #[test]
    fn memoized_pair_results_match_ground_truth() {
        let mut ctx = crate::context::tests::ctx_from(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted then update u set x = 2 end;
             create rule c on t when inserted then insert into v values (1) end;",
            TABLES,
        );
        for _round in 0..2 {
            for i in 0..ctx.len() {
                for j in 0..ctx.len() {
                    assert_eq!(
                        commutes_idx(&ctx, i, j),
                        commutes(&ctx.sigs[i], &ctx.sigs[j], &ctx.certs),
                        "pair ({i}, {j})"
                    );
                    assert_eq!(
                        noncommutativity_reasons_idx(&ctx, i, j),
                        noncommutativity_reasons(&ctx.sigs[i], &ctx.sigs[j]),
                        "pair ({i}, {j})"
                    );
                }
            }
        }
        // Certifying after the fact requires a cache clear — and then the
        // new verdict shows through.
        assert!(!commutes_idx(&ctx, 0, 1));
        ctx.certs.certify_commute("a", "b");
        ctx.clear_pair_cache();
        assert!(commutes_idx(&ctx, 0, 1));
    }

    /// The parallel sweep stores exactly the sequential verdicts, and a
    /// post-sweep query is answered from the store.
    #[test]
    fn prewarm_matches_sequential_verdicts() {
        let ctx = crate::context::tests::ctx_from(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted then update u set x = 2 end;
             create rule c on t when inserted then insert into v values (1) end;
             create rule d on u when inserted then delete from v end;",
            TABLES,
        );
        prewarm_pairs(&ctx);
        let warm = ctx.pair_store().stats();
        for i in 0..ctx.len() {
            for j in 0..ctx.len() {
                assert_eq!(
                    commutes_idx(&ctx, i, j),
                    commutes(&ctx.sigs[i], &ctx.sigs[j], &ctx.certs),
                    "pair ({i}, {j})"
                );
            }
        }
        let after = ctx.pair_store().stats();
        assert_eq!(after.misses, warm.misses, "queries after prewarm all hit");
    }

    #[test]
    fn display_reasons() {
        let r = NoncommutativityReason::UpdateUpdate {
            who: "a".into(),
            column: "u.x".into(),
            whom: "b".into(),
        };
        assert!(r.to_string().contains("condition 5"));
    }
}
