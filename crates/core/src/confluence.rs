//! Confluence analysis (paper Section 6).
//!
//! The rules in `R` are confluent when every execution graph has at most
//! one final state. The analysis follows the paper exactly:
//!
//! 1. For every **unordered** pair `(r_i, r_j)` (Observation 6.2: such a
//!    pair very likely has a state with both outgoing edges), build the
//!    mutually recursive sets `R1`, `R2` of Definition 6.5 — starting from
//!    `{r_i}`/`{r_j}` and closing under "rules triggered by a member that
//!    have priority over a member of the *other* set".
//! 2. Every `r_1 ∈ R1` must commute with every `r_2 ∈ R2` (Lemma 6.1,
//!    modulo user certifications).
//!
//! Theorem 6.7: the Confluence Requirement plus guaranteed termination
//! imply confluence. Violations are isolated per generating pair, with the
//! §6.4 remedies attached (certify commutativity, or order the pair).

use serde::Serialize;

use crate::commutativity::{commutes_idx, noncommutativity_reasons_idx, NoncommutativityReason};
use crate::context::AnalysisContext;

/// The Definition 6.5 closure for one unordered pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct PairClosure {
    /// The generating unordered pair (rule indices `(i, j)`).
    pub pair: (usize, usize),
    /// `R1` (contains `i`).
    pub r1: Vec<usize>,
    /// `R2` (contains `j`).
    pub r2: Vec<usize>,
}

/// Builds `R1`/`R2` per Definition 6.5 for an unordered pair `(ri, rj)`.
///
/// ```text
/// R1 ← {ri};  R2 ← {rj}
/// repeat until unchanged:
///   R1 ← R1 ∪ {r | r ∈ Triggers(r1) for some r1 ∈ R1
///                  and r > r2 ∈ P for some r2 ∈ R2 and r ≠ rj}
///   R2 ← R2 ∪ {r | r ∈ Triggers(r2) for some r2 ∈ R2
///                  and r > r1 ∈ P for some r1 ∈ R1 and r ≠ ri}
/// ```
pub fn pair_closure(ctx: &AnalysisContext, ri: usize, rj: usize) -> PairClosure {
    // The closure is the least fixed point of two monotone set equations,
    // so iterating candidates from the members' triggering adjacency (a few
    // edges) instead of scanning all n rules per round reaches the same
    // sets — the difference between O(deg) and O(n²) per generating pair,
    // which is what makes the 10k-rule cold sweep feasible. A candidate
    // enters a side only if it has priority over a member of the *other*
    // side, so when the priority order is empty the closure is just the
    // generating pair.
    let mut r1 = vec![ri];
    let mut r2 = vec![rj];
    if ctx.priority.ordered_pair_count() > 0 {
        let adj = std::sync::Arc::clone(ctx.triggers_adjacency());
        loop {
            let mut changed = false;
            let mut grow = |own: &mut Vec<usize>, other: &Vec<usize>, excluded: usize| {
                let mut k = 0;
                while k < own.len() {
                    for &r in &adj[own[k]] {
                        if r != excluded
                            && !own.contains(&r)
                            && ctx.priority.dominates_any(r)
                            && other.iter().any(|&q| ctx.gt(r, q))
                        {
                            own.push(r);
                            changed = true;
                        }
                    }
                    k += 1;
                }
            };
            grow(&mut r1, &r2, rj);
            grow(&mut r2, &r1, ri);
            if !changed {
                break;
            }
        }
    }
    r1.sort_unstable();
    r2.sort_unstable();
    PairClosure {
        pair: (ri, rj),
        r1,
        r2,
    }
}

/// The full Confluence Requirement check for one unordered generating pair:
/// its Def 6.5 closure plus every `R1 × R2` violation, in closure order.
/// Shared verbatim by the from-scratch sweep below and the incremental
/// analyzer's dirty-pair rechecks, so the two cannot produce different
/// violation content for the same pair.
pub(crate) fn check_pair(
    ctx: &AnalysisContext,
    i: usize,
    j: usize,
) -> (PairClosure, Vec<ConfluenceViolation>) {
    let cl = pair_closure(ctx, i, j);
    let mut violations = Vec::new();
    for &r1 in &cl.r1 {
        for &r2 in &cl.r2 {
            if commutes_idx(ctx, r1, r2) {
                continue;
            }
            let reasons = noncommutativity_reasons_idx(ctx, r1, r2);
            violations.push(ConfluenceViolation {
                pair: (ctx.name(i).to_owned(), ctx.name(j).to_owned()),
                conflict: (ctx.name(r1).to_owned(), ctx.name(r2).to_owned()),
                suggestions: suggestions(ctx, (i, j), (r1, r2)),
                reasons,
            });
        }
    }
    (cl, violations)
}

/// One violation of the Confluence Requirement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ConfluenceViolation {
    /// The generating unordered pair (names).
    pub pair: (String, String),
    /// The non-commuting rules found in `R1 × R2` (names).
    pub conflict: (String, String),
    /// The Lemma 6.1 conditions that fired.
    pub reasons: Vec<NoncommutativityReason>,
    /// §6.4 remedies, human-readable.
    pub suggestions: Vec<String>,
}

/// Verdict of the confluence analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ConfluenceVerdict {
    /// The Confluence Requirement holds: confluent, **provided termination
    /// is also guaranteed** (Theorem 6.7's second premise).
    RequirementHolds,
    /// The requirement is violated: the rule set may not be confluent.
    MayNotBeConfluent,
}

/// The result of confluence analysis.
#[derive(Clone, Debug, Serialize)]
pub struct ConfluenceAnalysis {
    /// Verdict.
    pub verdict: ConfluenceVerdict,
    /// All violations found (empty iff the requirement holds).
    pub violations: Vec<ConfluenceViolation>,
    /// Number of unordered pairs examined.
    pub pairs_checked: usize,
}

impl ConfluenceAnalysis {
    /// Whether the Confluence Requirement holds.
    pub fn requirement_holds(&self) -> bool {
        self.verdict == ConfluenceVerdict::RequirementHolds
    }
}

/// Runs confluence analysis over the whole rule set (Section 6.3).
pub fn analyze_confluence(ctx: &AnalysisContext) -> ConfluenceAnalysis {
    analyze_confluence_of(ctx, &(0..ctx.len()).collect::<Vec<_>>())
}

/// Runs the Confluence Requirement restricted to a subset of rules (used by
/// partial confluence, where the subset is `Sig(T')`).
pub fn analyze_confluence_of(ctx: &AnalysisContext, subset: &[usize]) -> ConfluenceAnalysis {
    let mut violations = Vec::new();
    let mut pairs_checked = 0;
    for (a_pos, &i) in subset.iter().enumerate() {
        for &j in &subset[a_pos + 1..] {
            if !ctx.unordered(i, j) {
                continue;
            }
            pairs_checked += 1;
            let (_, mut found) = check_pair(ctx, i, j);
            violations.append(&mut found);
        }
    }
    ConfluenceAnalysis {
        verdict: if violations.is_empty() {
            ConfluenceVerdict::RequirementHolds
        } else {
            ConfluenceVerdict::MayNotBeConfluent
        },
        violations,
        pairs_checked,
    }
}

/// The §6.4 remedies for a violation. Approach 3 (removing orderings) is
/// deliberately omitted — the paper shows it is "non-intuitive and in fact
/// useless".
fn suggestions(
    ctx: &AnalysisContext,
    pair: (usize, usize),
    conflict: (usize, usize),
) -> Vec<String> {
    let (r1, r2) = conflict;
    let (i, j) = pair;
    vec![
        format!(
            "certify that `{}` and `{}` actually commute: declare commute {}, {}",
            ctx.name(r1),
            ctx.name(r2),
            ctx.name(r1),
            ctx.name(r2)
        ),
        format!(
            "order the generating pair: add `precedes`/`follows` between `{}` and `{}` \
             (note: this may surface new violations elsewhere)",
            ctx.name(i),
            ctx.name(j)
        ),
    ]
}

/// Corollary 6.8/6.9/6.10 checks: structural facts that *must* hold of any
/// rule set our analysis finds confluent. Returns human-readable failures
/// (all empty on a confluent-verdict rule set — property-tested).
pub fn corollary_checks(ctx: &AnalysisContext, analysis: &ConfluenceAnalysis) -> Vec<String> {
    let mut out = Vec::new();
    if !analysis.requirement_holds() {
        return out;
    }
    let n = ctx.len();
    for i in 0..n {
        for j in (i + 1)..n {
            if ctx.unordered(i, j) {
                out.extend(corollary_pair(ctx, i, j));
            }
        }
    }
    out
}

/// The Corollary 6.8/6.10 lint messages for one **unordered** pair, in the
/// order `corollary_checks` emits them. Shared by the incremental
/// analyzer, which caches them per pair.
pub(crate) fn corollary_pair(ctx: &AnalysisContext, i: usize, j: usize) -> Vec<String> {
    let mut out = Vec::new();
    // Corollary 6.8: unordered pairs commute.
    if !commutes_idx(ctx, i, j) {
        out.push(format!(
            "corollary 6.8 violated: unordered `{}`/`{}` do not commute",
            ctx.name(i),
            ctx.name(j)
        ));
    }
    // Corollary 6.10: triggering pairs are ordered.
    if ctx.can_trigger(i, j) || ctx.can_trigger(j, i) {
        out.push(format!(
            "corollary 6.10 violated: `{}` may trigger `{}` but they are unordered",
            ctx.name(i),
            ctx.name(j)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str, tables: &[(&str, &[&str])], certs: Certifications) -> AnalysisContext {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, certs)
    }

    const TABLES: &[(&str, &[&str])] =
        &[("t", &["x"]), ("u", &["x"]), ("v", &["x"]), ("w", &["x"])];

    #[test]
    fn disjoint_rules_confluent() {
        let a = analyze_confluence(&ctx(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on t when deleted then insert into v values (1) end;",
            TABLES,
            Certifications::new(),
        ));
        assert!(a.requirement_holds());
        assert_eq!(a.pairs_checked, 1);
    }

    #[test]
    fn conflicting_unordered_pair_flagged() {
        let a = analyze_confluence(&ctx(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
            TABLES,
            Certifications::new(),
        ));
        assert_eq!(a.verdict, ConfluenceVerdict::MayNotBeConfluent);
        assert_eq!(a.violations.len(), 1);
        let v = &a.violations[0];
        assert_eq!(v.pair, ("a".to_owned(), "b".to_owned()));
        assert_eq!(v.conflict, ("a".to_owned(), "b".to_owned()));
        assert!(!v.suggestions.is_empty());
    }

    #[test]
    fn ordering_the_pair_restores_confluence() {
        let a = analyze_confluence(&ctx(
            "create rule a on t when inserted then update u set x = 1 precedes b end;
             create rule b on t when inserted then update u set x = 2 end;",
            TABLES,
            Certifications::new(),
        ));
        assert!(a.requirement_holds());
        assert_eq!(a.pairs_checked, 0);
    }

    #[test]
    fn certification_restores_confluence() {
        let mut certs = Certifications::new();
        certs.certify_commute("a", "b");
        let a = analyze_confluence(&ctx(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
            TABLES,
            certs,
        ));
        assert!(a.requirement_holds());
    }

    #[test]
    fn closure_pulls_in_prioritized_triggered_rules() {
        // ri triggers h (via insert into u), and h > rj. Then h ∈ R1, and
        // h vs rj must commute — they don't (both update v.x).
        let a = analyze_confluence(&ctx(
            "create rule ri on t when inserted then insert into u values (1) end;
             create rule rj on t when inserted then update v set x = 2 end;
             create rule h on u when inserted then update v set x = 1 precedes rj end;",
            TABLES,
            Certifications::new(),
        ));
        assert_eq!(a.verdict, ConfluenceVerdict::MayNotBeConfluent);
        // The conflict must be (h, rj) — generated by the (ri, rj) pair.
        assert!(
            a.violations
                .iter()
                .any(|v| v.conflict == ("h".to_owned(), "rj".to_owned())
                    && v.pair == ("ri".to_owned(), "rj".to_owned())),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn closure_ignores_unprioritized_triggered_rules() {
        // Same as above but h has no priority over rj: h does not enter R1
        // (Definition 6.5 requires r > r2 ∈ P), so no violation from (ri, rj)
        // via h... but (rj, h) is itself an unordered pair and h/rj still
        // conflict directly through their own pair.
        let c = ctx(
            "create rule ri on t when inserted then insert into u values (1) end;
             create rule rj on t when inserted then update v set x = 2 end;
             create rule h on u when inserted then update v set x = 1 end;",
            TABLES,
            Certifications::new(),
        );
        let cl = pair_closure(&c, 0, 1);
        assert_eq!(cl.r1, vec![0]);
        assert_eq!(cl.r2, vec![1]);
        // Direct pair (rj, h) still catches the conflict.
        let a = analyze_confluence(&c);
        assert!(a
            .violations
            .iter()
            .all(|v| v.pair != ("ri".to_owned(), "rj".to_owned())));
        assert!(a
            .violations
            .iter()
            .any(|v| v.pair == ("rj".to_owned(), "h".to_owned())));
    }

    #[test]
    fn self_pair_never_checked() {
        // A self-triggering rule must not generate a (r, r) violation.
        let a = analyze_confluence(&ctx(
            "create rule grow on t when inserted then insert into t values (1) end",
            TABLES,
            Certifications::new(),
        ));
        assert!(a.requirement_holds());
        assert_eq!(a.pairs_checked, 0);
    }

    #[test]
    fn corollaries_hold_on_confluent_sets() {
        let c = ctx(
            "create rule a on t when inserted then insert into u values (1) precedes b end;
             create rule b on u when inserted then insert into v values (1) end;",
            TABLES,
            Certifications::new(),
        );
        let a = analyze_confluence(&c);
        assert!(a.requirement_holds());
        assert!(corollary_checks(&c, &a).is_empty());
    }

    #[test]
    fn corollary_610_triggering_pairs_must_be_ordered() {
        // a triggers b, unordered: the Confluence Requirement itself must
        // flag this (condition 1 makes them noncommutative).
        let c = ctx(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then insert into v values (1) end;",
            TABLES,
            Certifications::new(),
        );
        let a = analyze_confluence(&c);
        assert_eq!(a.verdict, ConfluenceVerdict::MayNotBeConfluent);
    }

    #[test]
    fn totally_ordered_set_trivially_confluent() {
        let a = analyze_confluence(&ctx(
            "create rule a on t when inserted then update u set x = 1 precedes b, c end;
             create rule b on t when inserted then update u set x = 2 precedes c end;
             create rule c on t when inserted then update u set x = 3 end;",
            TABLES,
            Certifications::new(),
        ));
        assert!(a.requirement_holds());
        assert_eq!(a.pairs_checked, 0);
    }
}
