//! The analysis context: rule signatures, priorities, and certifications,
//! with the derived Section 3 relations (`Triggers`, `Can-Untrigger`,
//! `Choose`).
//!
//! Analyses operate on this context rather than on the engine's `RuleSet`
//! directly so that Section 8's *extended* definitions (signatures augmented
//! with the fictional `Obs` table) can reuse every algorithm unchanged.

use std::cell::RefCell;
use std::collections::HashMap;

use starling_engine::{PriorityOrder, RuleId, RuleSet};
use starling_sql::RuleSignature;
use starling_storage::Op;

use crate::certifications::Certifications;
use crate::commutativity::NoncommutativityReason;

/// Memoized per-pair Lemma 6.1 results, keyed by `(i, j)` rule indices.
///
/// `analyze_confluence_of` re-derives commutativity for the same pair from
/// every subset and every generating-pair closure that contains it; the
/// inputs (signatures, certifications, refinement flag) are fixed for a
/// context's lifetime, so the pair verdicts are too. Interior mutability
/// keeps the analysis entry points `&ctx`. Not `Sync` — a context is
/// analyzed from one thread (clones carry their own cache).
#[derive(Clone, Debug, Default)]
pub(crate) struct PairCache {
    /// `commutes_idx` results (certification- and refinement-aware).
    pub(crate) commutes: RefCell<HashMap<(usize, usize), bool>>,
    /// `noncommutativity_reasons` results, in the `(i, j)` direction.
    pub(crate) reasons: RefCell<HashMap<(usize, usize), Vec<NoncommutativityReason>>>,
}

impl PairCache {
    fn clear(&self) {
        self.commutes.borrow_mut().clear();
        self.reasons.borrow_mut().clear();
    }
}

/// Everything the static analyses need to know about a rule set.
#[derive(Clone, Debug)]
pub struct AnalysisContext {
    /// Per-rule static signatures (Section 3 definitions).
    pub sigs: Vec<RuleSignature>,
    /// The transitively closed priority order `P`.
    pub priority: PriorityOrder,
    /// User certifications in force.
    pub certs: Certifications,
    /// Rule definitions, when available (absent for synthetic/extended
    /// signatures such as the Section 8 `Obs` extension). Only the
    /// expression-level special-case detectors need them.
    pub defs: Vec<Option<starling_sql::RuleDef>>,
    /// The catalog, when available (needed by the predicate-level
    /// commutativity refinement).
    pub catalog: Option<starling_storage::Catalog>,
    /// Enable the Section 9 "less conservative methods" refinement:
    /// predicate-level analysis may discharge Lemma 6.1 conditions 4/5 when
    /// the conflicting writes are provably disjoint. Off by default
    /// (paper-faithful behavior).
    pub refine: bool,
    /// Memoized pair results. Valid as long as `sigs`/`certs`/`refine` are
    /// unchanged; code that mutates them after construction must call
    /// [`Self::clear_pair_cache`].
    pub(crate) pair_cache: PairCache,
}

impl AnalysisContext {
    /// Builds a context from a compiled rule set.
    pub fn from_ruleset(rules: &RuleSet, certs: Certifications) -> Self {
        AnalysisContext {
            sigs: rules.rules().iter().map(|r| r.sig.clone()).collect(),
            priority: rules.priority().clone(),
            certs,
            defs: rules.rules().iter().map(|r| Some(r.def.clone())).collect(),
            catalog: Some(rules.catalog().clone()),
            refine: false,
            pair_cache: PairCache::default(),
        }
    }

    /// Enables the predicate-level commutativity refinement (Section 9,
    /// "less conservative methods").
    pub fn with_refinement(mut self) -> Self {
        self.refine = true;
        // Cached pair verdicts were computed without the refinement.
        self.pair_cache.clear();
        self
    }

    /// Drops all memoized pair results. Must be called after mutating
    /// `sigs`, `certs`, or `refine` on an already-queried context.
    pub fn clear_pair_cache(&mut self) {
        self.pair_cache.clear();
    }

    /// The rule definition for rule `i`, when available.
    pub fn rule_def(&self, i: usize) -> Option<&starling_sql::RuleDef> {
        self.defs.get(i).and_then(Option::as_ref)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Rule name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.sigs[i].name
    }

    /// Rule index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.sigs.iter().position(|s| s.name == name)
    }

    /// The paper's `Triggers(r)`: all rules that can become triggered as a
    /// result of `r`'s action — `{r' | Performs(r) ∩ Triggered-By(r') ≠ ∅}`
    /// (possibly including `r` itself).
    pub fn triggers(&self, r: usize) -> Vec<usize> {
        let performs = &self.sigs[r].performs;
        self.sigs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.triggered_by.iter().any(|op| performs.contains(op)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `r`'s action can trigger `q`.
    pub fn can_trigger(&self, r: usize, q: usize) -> bool {
        self.sigs[q]
            .triggered_by
            .iter()
            .any(|op| self.sigs[r].performs.contains(op))
    }

    /// The paper's `Can-Untrigger(O')`: rules that can be untriggered by
    /// operations in `O'` — a rule triggered by insertions into (or updates
    /// of) `t` can be untriggered by deletions from `t`, which may undo the
    /// triggering changes.
    pub fn can_untrigger<'o>(&self, ops: impl IntoIterator<Item = &'o Op> + Clone) -> Vec<usize> {
        self.sigs
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                ops.clone().into_iter().any(|op| match op {
                    Op::Delete(t) => s.triggered_by.iter().any(|tb| match tb {
                        Op::Insert(t2) => t2 == t,
                        Op::Update(c) => &c.table == t,
                        Op::Delete(_) => false,
                    }),
                    _ => false,
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether rule `q` can be untriggered by `r`'s action
    /// (`q ∈ Can-Untrigger(Performs(r))`).
    pub fn can_untrigger_rule(&self, r: usize, q: usize) -> bool {
        self.sigs[r].performs.iter().any(|op| match op {
            Op::Delete(t) => self.sigs[q].triggered_by.iter().any(|tb| match tb {
                Op::Insert(t2) => t2 == t,
                Op::Update(c) => &c.table == t,
                Op::Delete(_) => false,
            }),
            _ => false,
        })
    }

    /// Whether two rules are unordered (Section 6.2): neither has priority
    /// over the other.
    pub fn unordered(&self, a: usize, b: usize) -> bool {
        self.priority.unordered(RuleId(a), RuleId(b))
    }

    /// Whether `a` has precedence over `b`.
    pub fn gt(&self, a: usize, b: usize) -> bool {
        self.priority.gt(RuleId(a), RuleId(b))
    }

    /// All unordered pairs `(i, j)` with `i < j`.
    pub fn unordered_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.unordered(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use super::*;

    pub(crate) fn ctx_from(src: &str, tables: &[(&str, &[&str])]) -> AnalysisContext {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    #[test]
    fn triggers_relation() {
        let ctx = ctx_from(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then delete from t end;
             create rule c on t when deleted then update t set x = 0 end;",
            &[("t", &["x"]), ("u", &["y"])],
        );
        // a inserts into u -> triggers b; b deletes from t -> triggers c;
        // c updates t.x -> triggers nobody (no updated-rules on t.x).
        assert_eq!(ctx.triggers(0), vec![1]);
        assert_eq!(ctx.triggers(1), vec![2]);
        assert!(ctx.triggers(2).is_empty());
        assert!(ctx.can_trigger(0, 1));
        assert!(!ctx.can_trigger(0, 2));
    }

    #[test]
    fn self_triggering() {
        let ctx = ctx_from(
            "create rule grow on t when inserted then insert into t values (1) end",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.triggers(0), vec![0]);
    }

    #[test]
    fn can_untrigger() {
        let ctx = ctx_from(
            "create rule ins_watch on t when inserted then update u set y = 0 end;
             create rule upd_watch on t when updated(x) then update u set y = 0 end;
             create rule del_watch on t when deleted then update u set y = 0 end;
             create rule killer on u when inserted then delete from t end;",
            &[("t", &["x"]), ("u", &["y"])],
        );
        // killer deletes from t: can untrigger insert- and update-triggered
        // rules on t, but not delete-triggered ones.
        assert!(ctx.can_untrigger_rule(3, 0));
        assert!(ctx.can_untrigger_rule(3, 1));
        assert!(!ctx.can_untrigger_rule(3, 2));
        // Non-deleting rules untrigger nothing.
        assert!(!ctx.can_untrigger_rule(0, 3));
        let ops: Vec<Op> = ctx.sigs[3].performs.iter().cloned().collect();
        assert_eq!(ctx.can_untrigger(&ops), vec![0, 1]);
    }

    #[test]
    fn unordered_pairs_respect_priorities() {
        let ctx = ctx_from(
            "create rule a on t when inserted then delete from t precedes b end;
             create rule b on t when inserted then delete from t end;
             create rule c on t when inserted then delete from t end;",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.unordered_pairs(), vec![(0, 2), (1, 2)]);
        assert!(ctx.gt(0, 1));
    }

    #[test]
    fn name_index_round_trip() {
        let ctx = ctx_from(
            "create rule a on t when inserted then delete from t end",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.index_of("a"), Some(0));
        assert_eq!(ctx.name(0), "a");
        assert_eq!(ctx.index_of("zz"), None);
    }
}
