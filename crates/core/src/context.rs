//! The analysis context: rule signatures, priorities, and certifications,
//! with the derived Section 3 relations (`Triggers`, `Can-Untrigger`,
//! `Choose`).
//!
//! Analyses operate on this context rather than on the engine's `RuleSet`
//! directly so that Section 8's *extended* definitions (signatures augmented
//! with the fictional `Obs` table) can reuse every algorithm unchanged.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use starling_engine::{PriorityOrder, RuleId, RuleSet};
use starling_sql::RuleSignature;
use starling_storage::Op;

use crate::certifications::Certifications;
use crate::pair_store::{BindOutcome, PairStore};

/// Everything the static analyses need to know about a rule set.
#[derive(Clone, Debug)]
pub struct AnalysisContext {
    /// Per-rule static signatures (Section 3 definitions).
    pub sigs: Vec<RuleSignature>,
    /// The transitively closed priority order `P`.
    pub priority: PriorityOrder,
    /// User certifications in force.
    pub certs: Certifications,
    /// Rule definitions, when available (absent for synthetic/extended
    /// signatures such as the Section 8 `Obs` extension). Only the
    /// expression-level special-case detectors need them.
    pub defs: Vec<Option<starling_sql::RuleDef>>,
    /// The catalog, when available (needed by the predicate-level
    /// commutativity refinement).
    pub catalog: Option<starling_storage::Catalog>,
    /// Enable the Section 9 "less conservative methods" refinement:
    /// predicate-level analysis may discharge Lemma 6.1 conditions 4/5 when
    /// the conflicting writes are provably disjoint. Off by default
    /// (paper-faithful behavior).
    pub refine: bool,
    /// The persistent pair-verdict store this context is bound to. A
    /// standalone context gets a private store; the incremental analyzer
    /// binds successive contexts to one shared store so verdicts survive
    /// across refinement steps (see [`crate::pair_store`]).
    pub(crate) store: Arc<PairStore>,
    /// Store id of each rule, in `sigs` order.
    pub(crate) sids: Vec<u32>,
    /// The pair store for the Section 8 `Obs`-extended context, when the
    /// caller wants that side kept warm too (set by the incremental
    /// analyzer; `extend_with_obs` binds the extended signatures to it).
    pub(crate) obs_store: Option<Arc<PairStore>>,
    /// Lazily built `Triggers` adjacency (rule → sorted triggered rules),
    /// shared by the triggering graph and the Def 6.5 closures.
    trig: OnceLock<Arc<Vec<Vec<usize>>>>,
}

impl AnalysisContext {
    /// Builds a context from a compiled rule set, with a private store.
    pub fn from_ruleset(rules: &RuleSet, certs: Certifications) -> Self {
        Self::bound_to_store(rules, certs, false, &Arc::new(PairStore::new())).0
    }

    /// Builds a context bound to a shared persistent store. The returned
    /// [`BindOutcome`] describes exactly which cached pair verdicts the
    /// bind invalidated — the incremental analyzer's dirty-set seed.
    pub fn bound_to_store(
        rules: &RuleSet,
        certs: Certifications,
        refine: bool,
        store: &Arc<PairStore>,
    ) -> (Self, BindOutcome) {
        let sigs: Vec<RuleSignature> = rules.rules().iter().map(|r| r.sig.clone()).collect();
        let outcome = store.bind(&sigs, &certs, refine);
        let ctx = AnalysisContext {
            sigs,
            priority: rules.priority().clone(),
            certs,
            defs: rules.rules().iter().map(|r| Some(r.def.clone())).collect(),
            catalog: Some(rules.catalog().clone()),
            refine,
            store: Arc::clone(store),
            sids: outcome.sids.clone(),
            obs_store: None,
            trig: OnceLock::new(),
        };
        (ctx, outcome)
    }

    /// Builds a context directly from parts (used by `extend_with_obs`,
    /// whose synthetic signatures have no rule set behind them).
    pub(crate) fn from_parts(
        sigs: Vec<RuleSignature>,
        priority: PriorityOrder,
        certs: Certifications,
        defs: Vec<Option<starling_sql::RuleDef>>,
        catalog: Option<starling_storage::Catalog>,
        refine: bool,
        store: Arc<PairStore>,
    ) -> Self {
        let outcome = store.bind(&sigs, &certs, refine);
        AnalysisContext {
            sigs,
            priority,
            certs,
            defs,
            catalog,
            refine,
            store,
            sids: outcome.sids,
            obs_store: None,
            trig: OnceLock::new(),
        }
    }

    /// Enables the predicate-level commutativity refinement (Section 9,
    /// "less conservative methods").
    pub fn with_refinement(mut self) -> Self {
        self.refine = true;
        // Re-bind: cached verdicts were computed without the refinement,
        // and the bind-time diff drops exactly those.
        self.sids = self.store.bind(&self.sigs, &self.certs, true).sids;
        self
    }

    /// Keeps the Section 8 `Obs`-side pair store warm across analyses.
    pub fn set_obs_store(&mut self, store: Arc<PairStore>) {
        self.obs_store = Some(store);
    }

    /// The pair store this context is bound to.
    pub fn pair_store(&self) -> &Arc<PairStore> {
        &self.store
    }

    /// Drops all memoized pair results by rebinding to a fresh private
    /// store. Must be called after mutating `sigs`, `certs`, or `refine`
    /// on an already-queried context (a bound store diffs signatures by
    /// content, so this is only needed by code that edits a context in
    /// place without rebinding).
    pub fn clear_pair_cache(&mut self) {
        let store = Arc::new(PairStore::new());
        self.sids = store.bind(&self.sigs, &self.certs, self.refine).sids;
        self.store = store;
        self.trig = OnceLock::new();
    }

    /// Store id of rule `i`.
    pub(crate) fn sid(&self, i: usize) -> u32 {
        self.sids[i]
    }

    /// The `Triggers` adjacency for every rule at once: `out[r]` is the
    /// sorted list of rules `q` with `Performs(r) ∩ Triggered-By(q) ≠ ∅`.
    /// Built once per context via an op → listeners index (O(n + e) rather
    /// than the O(n²) pairwise scan), then shared by the triggering graph
    /// and the Def 6.5 pair closures.
    pub fn triggers_adjacency(&self) -> &Arc<Vec<Vec<usize>>> {
        self.trig.get_or_init(|| {
            let mut listeners: BTreeMap<&Op, Vec<usize>> = BTreeMap::new();
            for (i, s) in self.sigs.iter().enumerate() {
                for op in &s.triggered_by {
                    listeners.entry(op).or_default().push(i);
                }
            }
            Arc::new(
                self.sigs
                    .iter()
                    .map(|s| {
                        let mut out: Vec<usize> = s
                            .performs
                            .iter()
                            .flat_map(|op| listeners.get(op).into_iter().flatten().copied())
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        out
                    })
                    .collect(),
            )
        })
    }

    /// The rule definition for rule `i`, when available.
    pub fn rule_def(&self, i: usize) -> Option<&starling_sql::RuleDef> {
        self.defs.get(i).and_then(Option::as_ref)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Rule name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.sigs[i].name
    }

    /// Rule index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.sigs.iter().position(|s| s.name == name)
    }

    /// The paper's `Triggers(r)`: all rules that can become triggered as a
    /// result of `r`'s action — `{r' | Performs(r) ∩ Triggered-By(r') ≠ ∅}`
    /// (possibly including `r` itself).
    pub fn triggers(&self, r: usize) -> Vec<usize> {
        let performs = &self.sigs[r].performs;
        self.sigs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.triggered_by.iter().any(|op| performs.contains(op)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `r`'s action can trigger `q`.
    pub fn can_trigger(&self, r: usize, q: usize) -> bool {
        self.sigs[q]
            .triggered_by
            .iter()
            .any(|op| self.sigs[r].performs.contains(op))
    }

    /// The paper's `Can-Untrigger(O')`: rules that can be untriggered by
    /// operations in `O'` — a rule triggered by insertions into (or updates
    /// of) `t` can be untriggered by deletions from `t`, which may undo the
    /// triggering changes.
    pub fn can_untrigger<'o>(&self, ops: impl IntoIterator<Item = &'o Op> + Clone) -> Vec<usize> {
        self.sigs
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                ops.clone().into_iter().any(|op| match op {
                    Op::Delete(t) => s.triggered_by.iter().any(|tb| match tb {
                        Op::Insert(t2) => t2 == t,
                        Op::Update(c) => &c.table == t,
                        Op::Delete(_) => false,
                    }),
                    _ => false,
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether rule `q` can be untriggered by `r`'s action
    /// (`q ∈ Can-Untrigger(Performs(r))`).
    pub fn can_untrigger_rule(&self, r: usize, q: usize) -> bool {
        self.sigs[r].performs.iter().any(|op| match op {
            Op::Delete(t) => self.sigs[q].triggered_by.iter().any(|tb| match tb {
                Op::Insert(t2) => t2 == t,
                Op::Update(c) => &c.table == t,
                Op::Delete(_) => false,
            }),
            _ => false,
        })
    }

    /// Whether two rules are unordered (Section 6.2): neither has priority
    /// over the other.
    pub fn unordered(&self, a: usize, b: usize) -> bool {
        self.priority.unordered(RuleId(a), RuleId(b))
    }

    /// Whether `a` has precedence over `b`.
    pub fn gt(&self, a: usize, b: usize) -> bool {
        self.priority.gt(RuleId(a), RuleId(b))
    }

    /// All unordered pairs `(i, j)` with `i < j`.
    pub fn unordered_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.unordered(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use super::*;

    pub(crate) fn ctx_from(src: &str, tables: &[(&str, &[&str])]) -> AnalysisContext {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    #[test]
    fn triggers_relation() {
        let ctx = ctx_from(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then delete from t end;
             create rule c on t when deleted then update t set x = 0 end;",
            &[("t", &["x"]), ("u", &["y"])],
        );
        // a inserts into u -> triggers b; b deletes from t -> triggers c;
        // c updates t.x -> triggers nobody (no updated-rules on t.x).
        assert_eq!(ctx.triggers(0), vec![1]);
        assert_eq!(ctx.triggers(1), vec![2]);
        assert!(ctx.triggers(2).is_empty());
        assert!(ctx.can_trigger(0, 1));
        assert!(!ctx.can_trigger(0, 2));
    }

    #[test]
    fn self_triggering() {
        let ctx = ctx_from(
            "create rule grow on t when inserted then insert into t values (1) end",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.triggers(0), vec![0]);
    }

    #[test]
    fn can_untrigger() {
        let ctx = ctx_from(
            "create rule ins_watch on t when inserted then update u set y = 0 end;
             create rule upd_watch on t when updated(x) then update u set y = 0 end;
             create rule del_watch on t when deleted then update u set y = 0 end;
             create rule killer on u when inserted then delete from t end;",
            &[("t", &["x"]), ("u", &["y"])],
        );
        // killer deletes from t: can untrigger insert- and update-triggered
        // rules on t, but not delete-triggered ones.
        assert!(ctx.can_untrigger_rule(3, 0));
        assert!(ctx.can_untrigger_rule(3, 1));
        assert!(!ctx.can_untrigger_rule(3, 2));
        // Non-deleting rules untrigger nothing.
        assert!(!ctx.can_untrigger_rule(0, 3));
        let ops: Vec<Op> = ctx.sigs[3].performs.iter().cloned().collect();
        assert_eq!(ctx.can_untrigger(&ops), vec![0, 1]);
    }

    #[test]
    fn unordered_pairs_respect_priorities() {
        let ctx = ctx_from(
            "create rule a on t when inserted then delete from t precedes b end;
             create rule b on t when inserted then delete from t end;
             create rule c on t when inserted then delete from t end;",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.unordered_pairs(), vec![(0, 2), (1, 2)]);
        assert!(ctx.gt(0, 1));
    }

    #[test]
    fn indexed_adjacency_matches_pairwise_triggers() {
        let ctx = ctx_from(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then delete from t end;
             create rule c on t when deleted then update t set x = 0 end;
             create rule grow on t when inserted then insert into t values (1) end;",
            &[("t", &["x"]), ("u", &["y"])],
        );
        let adj = Arc::clone(ctx.triggers_adjacency());
        for r in 0..ctx.len() {
            assert_eq!(adj[r], ctx.triggers(r), "rule {r}");
        }
    }

    #[test]
    fn name_index_round_trip() {
        let ctx = ctx_from(
            "create rule a on t when inserted then delete from t end",
            &[("t", &["x"])],
        );
        assert_eq!(ctx.index_of("a"), Some(0));
        assert_eq!(ctx.name(0), "a");
        assert_eq!(ctx.index_of("zz"), None);
    }
}
