//! The incremental whole-report analyzer behind the §6.4 interactive loop.
//!
//! [`IncrementalAnalysis`] produces [`AnalysisReport`]s **byte-identical**
//! to [`AnalysisReport::run`] while re-deriving, after a single refinement
//! step (certify / order / add / drop / redefine), only the work that step
//! can actually have changed:
//!
//! * Lemma 6.1 pair verdicts live in a persistent [`PairStore`] shared
//!   across analyses; bind-time structural diffs invalidate exactly the
//!   pairs mentioning a changed rule or toggled certification.
//! * The per-pair *confluence* results (Def 6.5 closures, their `R1 × R2`
//!   violations, and the Corollary 6.8/6.10 lints) are memoized in a
//!   confluence memo keyed by rule-pair identity. Each analyze computes a
//!   **dirty pair set** from the bind outcome plus a priority-closure diff
//!   and rechecks only those pairs; everything else is reused verbatim.
//! * Termination, observable determinism, and partial confluence are
//!   recomputed each time — they are `O(n + e)` or proportional to the
//!   (small) significant-rule sets once the pair stores are warm, so they
//!   never dominate.
//!
//! # Dirty-set rules per mutation kind
//!
//! Writing `pairs(x)` for "all current pairs `{x, q}` plus every pair whose
//! memoized closure contains `x` as a non-generating member":
//!
//! * **redefined rule `x`** → `pairs(x)`, plus `pairs(m)` for every rule
//!   `m` whose can-trigger edge to `x` changed (`m ∈ preds_old(x) Δ
//!   preds_new(x)`), guarded on `x` being able to enter a closure at all
//!   (some outgoing priority, old or new);
//! * **added rule `x`** → all pairs `{x, q}`, plus `pairs(m)` for
//!   `m ∈ preds(x)` under the same guard;
//! * **dropped rule `r`** → its memo entries are deleted; pairs listing `r`
//!   as a closure extra are rechecked. No predecessor expansion is needed:
//!   for a pair whose closure never contained `r`, the fixpoint rejected
//!   `r` at every step, and rejection is indistinguishable from absence;
//! * **certification toggle on `(a, b)`** → `pairs(a)`: an affected pair's
//!   closure must contain *both* endpoints, hence `a`;
//! * **priority edit** → the old and new transitive closures are diffed;
//!   every changed directed fact `x > y` dirties the pair `{x, y}` plus
//!   every pair whose memoized closure contains `y` *and* a
//!   trigger-predecessor of `x`. Soundness: the Def 6.5 fixpoint only
//!   consults `gt(x, y)` for a candidate `x` against a *member* `y`, and
//!   admission also requires a member that triggers `x`; at the first step
//!   where old and new computations can diverge every member is still an
//!   old-closure member, so both witnesses are visible in the memo;
//! * **refinement toggle** → full resweep (every verdict changed meaning).
//!
//! # Parallel cold start
//!
//! The first analyze (and any fallback resweep) can prewarm the pair store
//! with [`prewarm_pairs`], which fans the `O(n²)` verdict computations out
//! over scoped threads. Verdicts are pure per-pair functions merged into
//! disjoint bit positions, so thread scheduling cannot affect the store
//! state and the assembled report stays byte-identical to a sequential
//! sweep (property-tested in `tests/incremental_props.rs`).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use starling_engine::{PriorityOrder, RuleSet};

use crate::certifications::Certifications;
use crate::commutativity::prewarm_pairs;
use crate::confluence::{
    check_pair, corollary_pair, ConfluenceAnalysis, ConfluenceVerdict, ConfluenceViolation,
};
use crate::context::AnalysisContext;
use crate::observable::analyze_observable_determinism;
use crate::pair_store::{BindOutcome, PairStore, PairStoreStats};
use crate::partial::analyze_partial_confluence;
use crate::report::AnalysisReport;
use crate::termination::analyze_termination;

/// Don't bother spinning up threads below this many pairs.
const PREWARM_MIN_PAIRS: usize = 1 << 12;

/// Memoized per-pair confluence results for one non-trivial unordered pair.
#[derive(Clone, Debug)]
struct PairEntry {
    violations: Vec<ConfluenceViolation>,
    corollary: Vec<String>,
    /// Closure members beyond the generating pair, as store ids (sorted).
    extras: Vec<u32>,
}

/// Everything the dirty-set propagation diffs against.
#[derive(Debug)]
struct ConfluenceMemo {
    /// Store ids of the rules at the last analyze, in rule order.
    sids: Vec<u32>,
    /// The transitively closed priority at the last analyze (indices are
    /// positions in `sids`).
    priority: PriorityOrder,
    /// sid → sids of rules that could trigger it at the last analyze.
    preds: HashMap<u32, Vec<u32>>,
    /// Unordered pairs with any violations, lints, or closure extras,
    /// keyed `(sid_i, sid_j)` in rule-index orientation. Pairs absent here
    /// are known-clean.
    entries: HashMap<(u32, u32), PairEntry>,
    /// sid → pairs whose closure contains it as a non-generating member.
    extra_index: HashMap<u32, BTreeSet<(u32, u32)>>,
}

/// Cumulative counters for one [`IncrementalAnalysis`] (surfaced by the
/// server's `stats` op).
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalStats {
    /// Main pair store counters.
    pub pair: PairStoreStats,
    /// Section 8 `Obs`-side pair store counters.
    pub obs_pair: PairStoreStats,
    /// Analyses that swept every unordered pair.
    pub full_sweeps: u64,
    /// Analyses that only rechecked a dirty set.
    pub incremental_sweeps: u64,
    /// Dirty pairs rechecked by the most recent incremental analyze.
    pub last_rechecked_pairs: u64,
}

/// See the module docs.
pub struct IncrementalAnalysis {
    store: Arc<PairStore>,
    obs_store: Arc<PairStore>,
    parallel: bool,
    memo: Option<ConfluenceMemo>,
    full_sweeps: u64,
    incremental_sweeps: u64,
    last_rechecked: u64,
}

impl Default for IncrementalAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalAnalysis {
    /// A fresh analyzer with parallel cold sweeps enabled.
    pub fn new() -> Self {
        IncrementalAnalysis {
            store: Arc::new(PairStore::new()),
            obs_store: Arc::new(PairStore::new()),
            parallel: true,
            memo: None,
            full_sweeps: 0,
            incremental_sweeps: 0,
            last_rechecked: 0,
        }
    }

    /// A fresh analyzer that never spawns threads (identical reports; used
    /// by the determinism property tests and as a bench baseline).
    pub fn sequential() -> Self {
        IncrementalAnalysis {
            parallel: false,
            ..Self::new()
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            pair: self.store.stats(),
            obs_pair: self.obs_store.stats(),
            full_sweeps: self.full_sweeps,
            incremental_sweeps: self.incremental_sweeps,
            last_rechecked_pairs: self.last_rechecked,
        }
    }

    /// Runs the full analysis, reusing everything the inputs' diff against
    /// the previous call permits. Output is byte-identical to
    /// [`AnalysisReport::run`] on a fresh context with the same inputs.
    pub fn analyze(
        &mut self,
        rules: &RuleSet,
        certs: &Certifications,
        refine: bool,
        protect: &[Vec<String>],
    ) -> AnalysisReport {
        let (mut ctx, outcome) =
            AnalysisContext::bound_to_store(rules, certs.clone(), refine, &self.store);
        ctx.set_obs_store(Arc::clone(&self.obs_store));
        let confluence = self.confluence(&ctx, &outcome);
        let termination = analyze_termination(&ctx);
        let corollary_failures = self.corollary_failures(&ctx, &confluence);
        let observable = analyze_observable_determinism(&ctx);
        let partial = protect
            .iter()
            .map(|tables| {
                let refs: Vec<&str> = tables.iter().map(String::as_str).collect();
                analyze_partial_confluence(&ctx, &refs)
            })
            .collect();
        AnalysisReport {
            rule_count: ctx.len(),
            termination,
            confluence,
            corollary_failures,
            observable,
            partial,
        }
    }

    fn confluence(&mut self, ctx: &AnalysisContext, outcome: &BindOutcome) -> ConfluenceAnalysis {
        let incremental = self.memo.is_some() && !outcome.refine_flipped && !outcome.first_bind;
        if incremental && !self.incremental_sweep(ctx, outcome) {
            self.incremental_sweeps += 1;
        } else {
            if !incremental {
                self.memo = None;
                self.full_sweep(ctx);
            }
            self.full_sweeps += 1;
        }
        self.assemble(ctx)
    }

    /// Sweeps every unordered pair, rebuilding the memo from nothing.
    fn full_sweep(&mut self, ctx: &AnalysisContext) {
        let n = ctx.len();
        if self.parallel && n * n.saturating_sub(1) / 2 >= PREWARM_MIN_PAIRS {
            prewarm_pairs(ctx);
        }
        let mut memo = ConfluenceMemo {
            sids: ctx.sids.clone(),
            priority: ctx.priority.clone(),
            preds: HashMap::new(),
            entries: HashMap::new(),
            extra_index: HashMap::new(),
        };
        let mut rechecked = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if !ctx.unordered(i, j) {
                    continue;
                }
                rechecked += 1;
                Self::recheck_into(ctx, &mut memo, i, j);
            }
        }
        memo.preds = Self::preds_of(ctx);
        self.last_rechecked = rechecked;
        self.memo = Some(memo);
    }

    /// Propagates the dirty set and rechecks only those pairs. Returns
    /// `true` if it fell back to a full sweep (huge dirty set, or rule
    /// reordering the memo keys cannot survive).
    fn incremental_sweep(&mut self, ctx: &AnalysisContext, outcome: &BindOutcome) -> bool {
        let mut memo = self.memo.take().expect("incremental sweep without memo");
        let n = ctx.len();
        let cur: HashMap<u32, usize> = ctx.sids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let prev: HashMap<u32, usize> =
            memo.sids.iter().enumerate().map(|(i, &s)| (s, i)).collect();

        // Memo keys are oriented by relative rule order, which add/drop
        // preserves. Wholesale reordering would silently flip orientations,
        // so detect it and resweep.
        let survivors_now = ctx.sids.iter().copied().filter(|s| prev.contains_key(s));
        let survivors_then = memo.sids.iter().copied().filter(|s| cur.contains_key(s));
        if !survivors_now.eq(survivors_then) {
            self.full_sweep(ctx);
            return true;
        }

        let added: Vec<u32> = ctx
            .sids
            .iter()
            .copied()
            .filter(|s| !prev.contains_key(s))
            .collect();
        let removed: Vec<u32> = memo
            .sids
            .iter()
            .copied()
            .filter(|s| !cur.contains_key(s))
            .collect();
        let norm = |a: u32, b: u32| if cur[&a] < cur[&b] { (a, b) } else { (b, a) };

        // Rules all of whose pairs (mentions + closure extras) are dirty.
        let mut dirty_rules: BTreeSet<u32> = BTreeSet::new();
        dirty_rules.extend(outcome.changed_rules.iter().copied());
        dirty_rules.extend(added.iter().copied());
        let mut dirty_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();

        // Certification toggle on (a, b): an affected pair's closure must
        // contain both endpoints — so dirtying everything that contains `a`
        // is a superset. Endpoints outside the current rule set cannot
        // appear in any current closure.
        for &(a, b) in &outcome.changed_certs {
            if cur.contains_key(&a) && cur.contains_key(&b) {
                dirty_rules.insert(a);
            }
        }

        // Priority-closure diff over survivors. The common refinement
        // steps (certify, add/drop with orderings untouched) leave the
        // closure alone, so compare wholesale first: identical sid lists
        // and identical closure rows mean no `gt` fact changed. Otherwise
        // diff the two (sparse) closure pair sets in sid space — the
        // mapping is index-shift-proof, so add/drop renumbering is fine.
        //
        // The Def 6.5 fixpoint consults a changed fact `gt(x, y)` only when
        // testing candidate `x` against member `y`, and admitting `x` also
        // requires a member that triggers it. At the first step where the
        // old and new computations can diverge every member is still an
        // *old* member, so a pair is affected only if its memoized closure
        // contains `y` **and** a trigger-predecessor of `x` (trigger-edge
        // changes themselves are covered by the `changed_rules` machinery).
        // Both memberships are answerable from the memo — endpoints plus
        // `extras` — so the dirty set stays proportional to the real blast
        // radius instead of `pairs(y)`'s whole rows.
        let mut preds_new: Option<HashMap<u32, Vec<u32>>> = None;
        if memo.sids != ctx.sids || memo.priority != ctx.priority {
            let to_sids = |pairs: Vec<(usize, usize)>, sids: &[u32]| -> BTreeSet<(u32, u32)> {
                pairs.into_iter().map(|(x, y)| (sids[x], sids[y])).collect()
            };
            let old_gt = to_sids(memo.priority.gt_pairs(), &memo.sids);
            let new_gt = to_sids(ctx.priority.gt_pairs(), &ctx.sids);
            let mut px_cache: Option<(u32, BTreeSet<u32>)> = None;
            for &(x, y) in old_gt.symmetric_difference(&new_gt) {
                // Only survivor↔survivor changes matter: pairs with a dead
                // endpoint are purged wholesale below, and an added rule
                // already dirties its whole row.
                if !(prev.contains_key(&x)
                    && prev.contains_key(&y)
                    && cur.contains_key(&x)
                    && cur.contains_key(&y))
                {
                    continue;
                }
                // The generating pair itself: its unordered() status flips.
                dirty_pairs.insert(norm(x, y));
                // preds(x), old ∪ new (they differ only when trigger edges
                // changed, which dirties those rules wholesale anyway).
                if px_cache.as_ref().map(|c| c.0) != Some(x) {
                    let preds_new = preds_new.get_or_insert_with(|| Self::preds_of(ctx));
                    let mut px: BTreeSet<u32> = memo
                        .preds
                        .get(&x)
                        .into_iter()
                        .flatten()
                        .chain(preds_new.get(&x).into_iter().flatten())
                        .copied()
                        .collect();
                    px.retain(|p| cur.contains_key(p));
                    px_cache = Some((x, px));
                }
                let px = &px_cache.as_ref().unwrap().1;
                if px.is_empty() {
                    continue; // x is never triggered, so it joins no closure
                }
                if px.contains(&y) {
                    // y itself triggers x: every pair with y as a member
                    // passes both tests, which is exactly pairs(y).
                    dirty_rules.insert(y);
                    continue;
                }
                // Pairs whose closure contains y as an endpoint and a pred
                // of x as the other endpoint or an extra.
                for &p in px.iter() {
                    if p != y {
                        dirty_pairs.insert(norm(y, p));
                    }
                    if let Some(pairs) = memo.extra_index.get(&p) {
                        for &k in pairs {
                            if (k.0 == y || k.1 == y)
                                && cur.contains_key(&k.0)
                                && cur.contains_key(&k.1)
                            {
                                dirty_pairs.insert(k);
                            }
                        }
                    }
                }
                // Pairs whose closure contains y as an extra and a pred of
                // x anywhere (endpoint or fellow extra).
                if let Some(pairs) = memo.extra_index.get(&y) {
                    for &k in pairs {
                        if !(cur.contains_key(&k.0) && cur.contains_key(&k.1)) {
                            continue;
                        }
                        let hit = px.contains(&k.0)
                            || px.contains(&k.1)
                            || memo
                                .entries
                                .get(&k)
                                .is_some_and(|e| e.extras.iter().any(|m| px.contains(m)));
                        if hit {
                            dirty_pairs.insert(k);
                        }
                    }
                }
            }
        }

        // Candidate-eligibility changes: a redefined or added rule `x` can
        // newly enter (or leave) the closure of a pair that never contained
        // it, via a member `m` that can trigger it — but only if `x` has
        // some outgoing priority at all (Def 6.5 candidates need `gt` over
        // the other side).
        for &x in outcome.changed_rules.iter().chain(&added) {
            let old_dom = prev
                .get(&x)
                .is_some_and(|&px| memo.priority.dominates_any(px));
            if !old_dom && !ctx.priority.dominates_any(cur[&x]) {
                continue;
            }
            let preds_new = preds_new.get_or_insert_with(|| Self::preds_of(ctx));
            let empty = Vec::new();
            let old_p: BTreeSet<u32> = memo
                .preds
                .get(&x)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .collect();
            let new_p: BTreeSet<u32> = preds_new
                .get(&x)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .collect();
            for &m in old_p.symmetric_difference(&new_p) {
                if cur.contains_key(&m) {
                    dirty_rules.insert(m);
                }
            }
        }

        // Dropped rules: recheck the pairs that had them as closure extras
        // (must be collected before the entries are deleted), then delete
        // every memo entry mentioning a dead rule.
        for &r in &removed {
            if let Some(pairs) = memo.extra_index.get(&r) {
                for &p in pairs {
                    if cur.contains_key(&p.0) && cur.contains_key(&p.1) {
                        dirty_pairs.insert(p);
                    }
                }
            }
        }
        if !removed.is_empty() {
            let dead_keys: Vec<(u32, u32)> = memo
                .entries
                .keys()
                .filter(|k| !cur.contains_key(&k.0) || !cur.contains_key(&k.1))
                .copied()
                .collect();
            for k in dead_keys {
                Self::remove_entry(&mut memo, k);
            }
        }

        // Expand dirty rules into pairs.
        for &d in &dirty_rules {
            for &q in &ctx.sids {
                if q != d {
                    dirty_pairs.insert(norm(d, q));
                }
            }
            if let Some(pairs) = memo.extra_index.get(&d) {
                dirty_pairs.extend(pairs.iter().copied());
            }
        }

        // A dirty set approaching the whole pair space is slower to
        // enumerate than to resweep.
        let total_pairs = n * n.saturating_sub(1) / 2;
        if total_pairs > 0 && dirty_pairs.len() > total_pairs / 2 {
            self.full_sweep(ctx);
            return true;
        }

        for &(a, b) in &dirty_pairs {
            Self::remove_entry(&mut memo, (a, b));
            let (i, j) = (cur[&a], cur[&b]);
            if ctx.unordered(i, j) {
                Self::recheck_into(ctx, &mut memo, i, j);
            }
        }
        self.last_rechecked = dirty_pairs.len() as u64;

        memo.sids = ctx.sids.clone();
        memo.priority = ctx.priority.clone();
        memo.preds = preds_new.unwrap_or_else(|| Self::preds_of(ctx));
        self.memo = Some(memo);
        false
    }

    /// Runs [`check_pair`] + [`corollary_pair`] for one unordered pair and
    /// records the results (only non-trivial ones take memory).
    fn recheck_into(ctx: &AnalysisContext, memo: &mut ConfluenceMemo, i: usize, j: usize) {
        let (cl, violations) = check_pair(ctx, i, j);
        let corollary = corollary_pair(ctx, i, j);
        let mut extras: Vec<u32> = cl
            .r1
            .iter()
            .chain(cl.r2.iter())
            .filter(|&&m| m != i && m != j)
            .map(|&m| ctx.sid(m))
            .collect();
        extras.sort_unstable();
        extras.dedup();
        if violations.is_empty() && corollary.is_empty() && extras.is_empty() {
            return;
        }
        let key = (ctx.sid(i), ctx.sid(j));
        for &e in &extras {
            memo.extra_index.entry(e).or_default().insert(key);
        }
        memo.entries.insert(
            key,
            PairEntry {
                violations,
                corollary,
                extras,
            },
        );
    }

    fn remove_entry(memo: &mut ConfluenceMemo, key: (u32, u32)) {
        if let Some(entry) = memo.entries.remove(&key) {
            for e in entry.extras {
                if let Some(set) = memo.extra_index.get_mut(&e) {
                    set.remove(&key);
                    if set.is_empty() {
                        memo.extra_index.remove(&e);
                    }
                }
            }
        }
    }

    /// sid → sids of rules that can trigger it, from the current adjacency.
    fn preds_of(ctx: &AnalysisContext) -> HashMap<u32, Vec<u32>> {
        let adj = Arc::clone(ctx.triggers_adjacency());
        let mut preds: HashMap<u32, Vec<u32>> = HashMap::new();
        for q in 0..ctx.len() {
            for &x in &adj[q] {
                preds.entry(ctx.sid(x)).or_default().push(ctx.sid(q));
            }
        }
        preds
    }

    /// Rebuilds the [`ConfluenceAnalysis`] from the memo, in the exact
    /// `(i, j)` scan order of `analyze_confluence`.
    fn assemble(&self, ctx: &AnalysisContext) -> ConfluenceAnalysis {
        let memo = self.memo.as_ref().expect("assemble without memo");
        let cur: HashMap<u32, usize> = ctx.sids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut keyed: Vec<((usize, usize), &PairEntry)> = memo
            .entries
            .iter()
            .map(|(k, e)| ((cur[&k.0], cur[&k.1]), e))
            .collect();
        keyed.sort_by_key(|&(ij, _)| ij);
        let mut violations = Vec::new();
        for (_, e) in &keyed {
            violations.extend(e.violations.iter().cloned());
        }
        let n = ctx.len();
        let pairs_checked = n * n.saturating_sub(1) / 2 - ctx.priority.ordered_pair_count();
        ConfluenceAnalysis {
            verdict: if violations.is_empty() {
                ConfluenceVerdict::RequirementHolds
            } else {
                ConfluenceVerdict::MayNotBeConfluent
            },
            violations,
            pairs_checked,
        }
    }

    /// Rebuilds `corollary_checks` output from the memo (empty whenever the
    /// requirement fails, exactly like the original early return).
    fn corollary_failures(
        &self,
        ctx: &AnalysisContext,
        confluence: &ConfluenceAnalysis,
    ) -> Vec<String> {
        if !confluence.requirement_holds() {
            return Vec::new();
        }
        let memo = self.memo.as_ref().expect("corollaries without memo");
        let cur: HashMap<u32, usize> = ctx.sids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut keyed: Vec<((usize, usize), &PairEntry)> = memo
            .entries
            .iter()
            .map(|(k, e)| ((cur[&k.0], cur[&k.1]), e))
            .collect();
        keyed.sort_by_key(|&(ij, _)| ij);
        let mut out = Vec::new();
        for (_, e) in &keyed {
            out.extend(e.corollary.iter().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::{parse_script, RuleDef};
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use super::*;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        cat
    }

    fn defs(src: &str) -> Vec<RuleDef> {
        parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    fn scratch_report(
        cat: &Catalog,
        defs: &[RuleDef],
        certs: &Certifications,
        refine: bool,
        protect: &[Vec<String>],
    ) -> AnalysisReport {
        let rs = RuleSet::compile(defs, cat).unwrap();
        let mut ctx = AnalysisContext::from_ruleset(&rs, certs.clone());
        if refine {
            ctx = ctx.with_refinement();
        }
        AnalysisReport::run(&ctx, protect)
    }

    /// Drives an editing session through every mutation kind, comparing the
    /// incremental report against a from-scratch run after each step.
    #[test]
    fn every_mutation_kind_matches_from_scratch() {
        let cat = catalog();
        let mut d = defs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;
             create rule c on v when inserted then update u set x = 3 end;",
        );
        let mut certs = Certifications::new();
        let mut refine = false;
        let protect = vec![vec!["u".to_owned()]];
        let mut inc = IncrementalAnalysis::sequential();

        let check = |inc: &mut IncrementalAnalysis,
                     d: &[RuleDef],
                     certs: &Certifications,
                     refine: bool,
                     step: &str| {
            let rs = RuleSet::compile(d, &cat).unwrap();
            let got = inc.analyze(&rs, certs, refine, &protect);
            let want = scratch_report(&cat, d, certs, refine, &protect);
            assert_eq!(
                got.to_json().to_string(),
                want.to_json().to_string(),
                "json mismatch after step: {step}"
            );
            assert_eq!(
                got.to_string(),
                want.to_string(),
                "display mismatch after step: {step}"
            );
        };

        check(&mut inc, &d, &certs, refine, "initial");

        certs.certify_commute("a", "b");
        check(&mut inc, &d, &certs, refine, "certify a~b");

        certs.revoke_commute("a", "b");
        check(&mut inc, &d, &certs, refine, "revoke a~b");

        d[0].precedes.push("b".to_owned());
        check(&mut inc, &d, &certs, refine, "order a>b");

        d.extend(defs(
            "create rule w on u when updated(x) then insert into v values (1) precedes b end;",
        ));
        check(&mut inc, &d, &certs, refine, "add rule w");

        d[1] = defs("create rule b on t when inserted then update v set x = 2 end;")
            .pop()
            .unwrap();
        check(&mut inc, &d, &certs, refine, "redefine b");

        d.remove(2); // drop rule c
        check(&mut inc, &d, &certs, refine, "drop rule c");

        refine = true;
        check(&mut inc, &d, &certs, refine, "enable refinement");

        certs.certify_commute("b", "w");
        check(&mut inc, &d, &certs, refine, "certify under refinement");

        refine = false;
        check(&mut inc, &d, &certs, refine, "disable refinement");

        // At this tiny scale the half-the-pair-space fallback fires often;
        // what matters is that some steps went incremental and the store
        // served repeat verdicts.
        let stats = inc.stats();
        assert!(stats.incremental_sweeps >= 2, "{stats:?}");
        assert!(stats.pair.hits > 0, "{stats:?}");
    }

    /// A certify step on an otherwise untouched set must recheck only the
    /// pairs mentioning the certified rule, not the whole pair space.
    #[test]
    fn certify_rechecks_linear_pair_set() {
        let cat = catalog();
        let d = defs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;
             create rule c on t when inserted then update u set x = 3 end;
             create rule e on t when inserted then update u set x = 4 end;
             create rule f on t when inserted then update u set x = 5 end;",
        );
        let rs = RuleSet::compile(&d, &cat).unwrap();
        let mut inc = IncrementalAnalysis::sequential();
        let mut certs = Certifications::new();
        inc.analyze(&rs, &certs, false, &[]);
        assert_eq!(inc.stats().full_sweeps, 1);

        certs.certify_commute("a", "b");
        inc.analyze(&rs, &certs, false, &[]);
        let stats = inc.stats();
        assert_eq!(stats.incremental_sweeps, 1, "{stats:?}");
        // 5 rules → 10 pairs; pairs(a) alone is 4.
        assert_eq!(stats.last_rechecked_pairs, 4, "{stats:?}");
    }

    /// Rebinding identical inputs is a no-op sweep: zero dirty pairs.
    #[test]
    fn identical_rebind_rechecks_nothing() {
        let cat = catalog();
        let d = defs(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
        );
        let rs = RuleSet::compile(&d, &cat).unwrap();
        let mut inc = IncrementalAnalysis::sequential();
        let certs = Certifications::new();
        let first = inc.analyze(&rs, &certs, false, &[]);
        let second = inc.analyze(&rs, &certs, false, &[]);
        assert_eq!(first.to_json().to_string(), second.to_json().to_string());
        assert_eq!(inc.stats().last_rechecked_pairs, 0);
    }
}
