//! The interactive analysis loop (paper Section 6.4 and the introduction's
//! "interactive development environment").
//!
//! A session holds a rule set plus the user's evolving certifications and
//! added orderings. After each change the analyses re-run; the history
//! records how verdicts evolve. This reproduces the paper's observation
//! (footnote 6) that "a source of non-confluence can appear to *move
//! around*, requiring an iterative process of adding orderings (or
//! certifying commutativity) until the rule set is made confluent".

use starling_engine::RuleSet;
use starling_sql::RuleDef;
use starling_storage::Catalog;

use crate::certifications::Certifications;
use crate::incremental::{IncrementalAnalysis, IncrementalStats};
use crate::report::AnalysisReport;

/// One step in the interactive history.
#[derive(Clone, Debug)]
pub struct HistoryEntry {
    /// What the user did.
    pub action: String,
    /// Violations remaining after the step.
    pub confluence_violations: usize,
    /// Undischarged cycles remaining after the step.
    pub open_cycles: usize,
    /// Whether everything is now guaranteed.
    pub all_guaranteed: bool,
}

/// An interactive analysis session. Holds a persistent
/// [`IncrementalAnalysis`] so each refinement step re-derives only what it
/// changed rather than recomputing the whole report.
pub struct InteractiveSession {
    catalog: Catalog,
    defs: Vec<RuleDef>,
    certs: Certifications,
    history: Vec<HistoryEntry>,
    analysis: IncrementalAnalysis,
}

impl InteractiveSession {
    /// Starts a session over a catalog and rule definitions.
    pub fn new(catalog: Catalog, defs: Vec<RuleDef>) -> Self {
        InteractiveSession {
            catalog,
            defs,
            certs: Certifications::new(),
            history: Vec::new(),
            analysis: IncrementalAnalysis::new(),
        }
    }

    /// The step history so far.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Current certifications.
    pub fn certifications(&self) -> &Certifications {
        &self.certs
    }

    /// Pair-store and sweep counters for the session's analyzer.
    pub fn analysis_stats(&self) -> IncrementalStats {
        self.analysis.stats()
    }

    /// Runs the analyses, recording a history entry labeled `action`.
    pub fn analyze(
        &mut self,
        action: &str,
    ) -> Result<AnalysisReport, starling_engine::EngineError> {
        let rs = RuleSet::compile(&self.defs, &self.catalog)?;
        let report = self.analysis.analyze(&rs, &self.certs, false, &[]);
        self.history.push(HistoryEntry {
            action: action.to_owned(),
            confluence_violations: report.confluence.violations.len(),
            open_cycles: report
                .termination
                .cycles
                .iter()
                .filter(|c| !c.discharged)
                .count(),
            all_guaranteed: report.all_guaranteed(),
        });
        Ok(report)
    }

    /// §6.4 Approach 1: certify that a flagged pair actually commutes.
    pub fn certify_commute(&mut self, a: &str, b: &str) {
        self.certs.certify_commute(a, b);
    }

    /// §5: certify that cycles through a rule terminate.
    pub fn certify_terminates(&mut self, rule: &str, justification: &str) {
        self.certs.certify_terminates(rule, justification);
    }

    /// §6.4 Approach 2: add a user-defined priority (`higher precedes
    /// lower`), amending the rule definitions themselves.
    pub fn add_ordering(&mut self, higher: &str, lower: &str) -> bool {
        let Some(def) = self.defs.iter_mut().find(|d| d.name == higher) else {
            return false;
        };
        if !def.precedes.iter().any(|p| p == lower) {
            def.precedes.push(lower.to_owned());
        }
        true
    }

    /// Drives the §6.4 loop automatically, preferring orderings: while
    /// confluence violations remain, order the first violating pair and
    /// re-analyze. Returns the number of orderings added, or `None` if a
    /// fixpoint was not reached within `max_rounds` (e.g. a violation whose
    /// generating pair is already ordered transitively elsewhere).
    pub fn order_until_confluent(
        &mut self,
        max_rounds: usize,
    ) -> Result<Option<usize>, starling_engine::EngineError> {
        for added in 0..max_rounds {
            let report = self.analyze("auto-order step")?;
            let Some(v) = report.confluence.violations.first() else {
                return Ok(Some(added));
            };
            let (a, b) = (v.pair.0.clone(), v.pair.1.clone());
            if !self.add_ordering(&a, &b) {
                return Ok(None);
            }
            // Adding an ordering can create a priority cycle; surface the
            // compile error naturally on the next analyze() call.
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    use super::*;

    fn setup(src: &str) -> InteractiveSession {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        InteractiveSession::new(cat, defs)
    }

    #[test]
    fn certify_loop_reaches_green() {
        let mut s = setup(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
        );
        let r1 = s.analyze("initial").unwrap();
        assert_eq!(r1.confluence.violations.len(), 1);

        s.certify_commute("a", "b");
        let r2 = s.analyze("after certify").unwrap();
        assert!(r2.confluence.requirement_holds());
        assert!(s.history()[1].all_guaranteed);
    }

    #[test]
    fn ordering_loop_reaches_green() {
        let mut s = setup(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
        );
        let added = s.order_until_confluent(10).unwrap();
        assert_eq!(added, Some(1));
        let r = s.analyze("final").unwrap();
        assert!(r.confluence.requirement_holds());
    }

    /// The paper's footnote 6: ordering one pair can surface a new
    /// violation elsewhere; the loop iterates until quiet.
    #[test]
    fn nonconfluence_moves_around() {
        let mut s = setup(
            // a/b conflict on u; a triggers c (insert into v), and c
            // conflicts with b on u as well. Ordering (a, b) leaves the
            // (c, b) pair to be discovered and ordered next.
            "create rule a on t when inserted then \
               update u set x = 1; insert into v values (1) end;
             create rule b on t when inserted then update u set x = 2 end;
             create rule c on v when inserted then update u set x = 3 end;",
        );
        let added = s.order_until_confluent(20).unwrap();
        assert!(
            added.unwrap_or(0) >= 2,
            "expected at least two rounds: {added:?}"
        );
        let r = s.analyze("final").unwrap();
        assert!(r.confluence.requirement_holds());
        // History shows the violation count decreasing over rounds.
        let counts: Vec<usize> = s
            .history()
            .iter()
            .map(|h| h.confluence_violations)
            .collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]), "{counts:?}");
    }

    #[test]
    fn session_analyzer_reuses_pair_verdicts() {
        let mut s = setup(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when inserted then update u set x = 2 end;",
        );
        s.analyze("initial").unwrap();
        let cold = s.analysis_stats();
        s.certify_commute("a", "b");
        s.analyze("after certify").unwrap();
        let warm = s.analysis_stats();
        assert!(warm.pair.hits > cold.pair.hits, "{warm:?}");
        // Exactly the certified pair's verdict was invalidated.
        assert_eq!(warm.pair.invalidations, cold.pair.invalidations + 1);
    }

    #[test]
    fn add_ordering_unknown_rule() {
        let mut s = setup("create rule a on t when inserted then delete from t end");
        assert!(!s.add_ordering("zz", "a"));
        assert!(s.add_ordering("a", "a")); // recorded; compile will reject
        assert!(s.analyze("self-cycle").is_err());
    }
}
