//! # starling-analysis
//!
//! Static analysis of database production rules, implementing
//!
//! > A. Aiken, J. Widom, J. M. Hellerstein. *Behavior of Database Production
//! > Rules: Termination, Confluence, and Observable Determinism.* SIGMOD
//! > 1992.
//!
//! Given an arbitrary rule set `R`, the analyses answer — **conservatively**
//! — three questions:
//!
//! * [`termination`] — is rule processing guaranteed to terminate after any
//!   set of changes in any database state? (Theorem 5.1: acyclic triggering
//!   graph.)
//! * [`confluence`] — can the choice among unordered triggered rules affect
//!   the final database state? (Definition 6.5's Confluence Requirement +
//!   Theorem 6.7, built on the commutativity conditions of Lemma 6.1.)
//!   [`partial`] relaxes this to a subset of tables `T'` via the
//!   significant-rule set `Sig(T')` (Definition 7.1, Theorem 7.2).
//! * [`observable`] — can that choice affect the order or appearance of
//!   observable actions? (Theorem 8.1: partial confluence with respect to a
//!   fictional `Obs` table.)
//!
//! "Conservative" means: a **guaranteed** verdict is sound (property-tested
//! against the exhaustive execution-graph oracle in `starling-engine`); a
//! **may-not** verdict isolates the responsible rules and states criteria
//! that, if certified by the user ([`certifications`]), discharge the
//! warning — the basis of the interactive development environment of the
//! paper's introduction, implemented in [`interactive`] and [`report`].
//!
//! Extensions from the paper's Section 9 future work are also implemented:
//! automatic special-case cycle certificates ([`termination::auto_certify`]),
//! analysis under restricted user operations ([`restricted`]), and
//! partitioned/incremental analysis ([`partition`]).

//! ```
//! use starling_analysis::{AnalysisContext, AnalysisReport, Certifications};
//! use starling_engine::{RuleSet, Session};
//!
//! let mut session = Session::new();
//! session.execute_script("
//!     create table t (x int);
//!     create table u (x int);
//!     create rule a on t when inserted then update u set x = 1 end;
//!     create rule b on t when inserted then update u set x = 2 end;
//! ").unwrap();
//! let rules = RuleSet::compile(&session.rule_defs().to_vec(),
//!                              session.db().catalog()).unwrap();
//! let ctx = AnalysisContext::from_ruleset(&rules, Certifications::new());
//! let report = AnalysisReport::run(&ctx, &[]);
//!
//! // a and b race on u.x (Lemma 6.1, condition 5): may not be confluent.
//! assert!(!report.confluence.requirement_holds());
//! assert!(report.termination.is_guaranteed());
//!
//! // The paper's remedy: certify or order. Certifying makes it pass.
//! let mut certs = Certifications::new();
//! certs.certify_commute("a", "b");
//! let ctx = AnalysisContext::from_ruleset(&rules, certs);
//! assert!(AnalysisReport::run(&ctx, &[]).all_guaranteed());
//! ```

pub mod certifications;
pub mod commutativity;
pub mod confluence;
pub mod context;
pub mod incremental;
pub mod interactive;
pub mod loader;
pub mod observable;
pub mod pair_store;
pub mod partial;
pub mod partition;
pub mod refine;
pub mod report;
pub mod restricted;
pub mod termination;
pub mod triggering_graph;

pub use certifications::Certifications;
pub use commutativity::{
    commutes, commutes_idx, noncommutativity_reasons, noncommutativity_reasons_idx,
    noncommutativity_reasons_lemma61, prewarm_pairs, NoncommutativityReason,
};
pub use confluence::{ConfluenceAnalysis, ConfluenceVerdict, ConfluenceViolation};
pub use context::AnalysisContext;
pub use incremental::{IncrementalAnalysis, IncrementalStats};
pub use interactive::InteractiveSession;
pub use loader::{load_script, LoadedScript};
pub use observable::{ObservableAnalysis, OBS_TABLE};
pub use pair_store::{BindOutcome, PairStore, PairStoreStats};
pub use partial::{significant_rules, PartialConfluenceAnalysis};
pub use refine::{predicates_disjoint, refine_reasons};
pub use report::AnalysisReport;
pub use report::{explore_json, verdict_json};
pub use termination::{CycleCertificate, TerminationAnalysis, TerminationVerdict};
pub use triggering_graph::TriggeringGraph;
