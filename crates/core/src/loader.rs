//! Script loading shared by the CLI and the server.
//!
//! ## Script convention
//!
//! A `.rql` script is a single file of statements, processed in order:
//!
//! * `create table` — schema;
//! * DML *before the first rule definition* — seed data;
//! * `create rule ... end` — the rule set;
//! * `declare commute` / `declare terminates` — certifications;
//! * DML *after the first rule definition* — the user transition probed by
//!   `explore`.
//!
//! The compiled [`RuleSet`] is behind an [`Arc`] so the server's shared
//! ruleset cache can hand the same compilation to many sessions; the raw
//! [`RuleDef`]s and [`Directive`]s are kept so a session can be restored
//! from cached parts without re-parsing.

use std::sync::Arc;

use starling_engine::{EngineError, FirstEligible, RuleSet, Session};
use starling_sql::ast::{Action, Directive, RuleDef, Statement};
use starling_sql::parse_script;
use starling_storage::Database;

use crate::certifications::Certifications;
use crate::context::AnalysisContext;

/// A loaded script, split per the convention above.
#[derive(Clone, Debug)]
pub struct LoadedScript {
    /// Database after setup statements.
    pub db: Database,
    /// The compiled rule set (shared; compile once, hand out refcounts).
    pub rules: Arc<RuleSet>,
    /// Certifications from `declare` directives.
    pub certs: Certifications,
    /// DML after the first rule definition (the user transition).
    pub user_actions: Vec<Action>,
    /// The raw rule definitions the set was compiled from.
    pub defs: Vec<RuleDef>,
    /// The raw `declare` directives.
    pub directives: Vec<Directive>,
}

impl LoadedScript {
    /// The analysis context for the script.
    pub fn context(&self) -> AnalysisContext {
        AnalysisContext::from_ruleset(&self.rules, self.certs.clone())
    }
}

/// Parses and loads a script.
pub fn load_script(src: &str) -> Result<LoadedScript, EngineError> {
    let stmts = parse_script(src)?;
    let mut session = Session::new();
    let mut defs: Vec<RuleDef> = Vec::new();
    let mut directives: Vec<Directive> = Vec::new();
    let mut user_actions = Vec::new();
    for stmt in stmts {
        match stmt {
            Statement::CreateTable(_) => {
                session.execute(&stmt)?;
            }
            Statement::CreateRule(r) => defs.push(r),
            Statement::DropRule(name) => {
                let before = defs.len();
                defs.retain(|r| r.name != name);
                if defs.len() == before {
                    return Err(EngineError::InvalidStatement(format!(
                        "drop rule: no rule named `{name}`"
                    )));
                }
                for r in &mut defs {
                    r.precedes.retain(|p| p != &name);
                    r.follows.retain(|p| p != &name);
                }
            }
            Statement::AlterRule {
                name,
                precedes,
                follows,
            } => {
                let Some(def) = defs.iter_mut().find(|r| r.name == name) else {
                    return Err(EngineError::InvalidStatement(format!(
                        "alter rule: no rule named `{name}`"
                    )));
                };
                def.precedes.extend(precedes);
                def.follows.extend(follows);
            }
            Statement::Directive(d) => directives.push(d),
            Statement::Dml(a) => {
                if defs.is_empty() {
                    session.execute(&Statement::Dml(a))?;
                } else {
                    user_actions.push(a);
                }
            }
        }
    }
    session.commit(&mut FirstEligible)?;
    let rules = Arc::new(RuleSet::compile(&defs, session.db().catalog())?);
    Ok(LoadedScript {
        db: session.db().clone(),
        rules,
        certs: Certifications::from_directives(&directives),
        user_actions,
        defs,
        directives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_splits_setup_and_transition() {
        let s = load_script(
            "create table t (x int);
             insert into t values (1);
             create rule a on t when inserted then delete from t end;
             declare terminates a 'delete-only';
             insert into t values (5);",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 1);
        assert_eq!(s.defs.len(), 1);
        assert_eq!(s.directives.len(), 1);
        assert_eq!(s.user_actions.len(), 1);
        // Seed insert ran; user insert did not (it is the probe).
        assert_eq!(s.db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn drop_unknown_rule_errors() {
        let err = load_script(
            "create table t (x int);
             create rule a on t when inserted then delete from t end;
             drop rule nope;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("no rule named"), "{err}");
    }
}
