//! Observable determinism analysis (paper Section 8).
//!
//! Some rule actions are visible to the environment while rules are being
//! processed (`SELECT` retrievals, `ROLLBACK`). A rule set is *observably
//! deterministic* when the order and appearance of these actions cannot
//! depend on the choice among unordered triggered rules. Observable
//! determinism and confluence are **orthogonal**.
//!
//! The analysis (Theorem 8.1) reduces to partial confluence: add a
//! fictional table `Obs`, pretend every observable rule timestamps and logs
//! its observable actions into `Obs` — i.e., extend `Reads` with `Obs.log`
//! and `Performs` with `(I, Obs)` for every observable rule — and check
//! confluence with respect to `{Obs}`. A unique final `Obs` value means a
//! unique order and appearance of observable actions.

use serde::Serialize;

use crate::confluence::ConfluenceAnalysis;
use crate::context::AnalysisContext;
use crate::partial::{analyze_partial_confluence, PartialConfluenceAnalysis};
use crate::termination::TerminationAnalysis;

/// Name of the fictional observation log table. The leading `#` cannot
/// appear in user identifiers, so no real table can collide with it.
pub const OBS_TABLE: &str = "#obs";

/// The result of observable-determinism analysis.
#[derive(Clone, Debug, Serialize)]
pub struct ObservableAnalysis {
    /// Names of the observable rules.
    pub observable_rules: Vec<String>,
    /// The underlying partial-confluence analysis with respect to `Obs`
    /// (over the extended definitions).
    pub partial: PartialConfluenceAnalysis,
}

impl ObservableAnalysis {
    /// Whether observable determinism is guaranteed.
    pub fn is_guaranteed(&self) -> bool {
        self.partial.is_guaranteed()
    }

    /// The Confluence Requirement part of the verdict.
    pub fn confluence(&self) -> &ConfluenceAnalysis {
        &self.partial.confluence
    }

    /// The termination part of the verdict (over `Sig(Obs)`).
    pub fn termination(&self) -> &TerminationAnalysis {
        &self.partial.termination
    }
}

/// Builds the Section 8 extended context: every observable rule gets
/// `Obs.log ∈ Reads` and `(I, Obs) ∈ Performs`.
///
/// The widened signatures are bound to the source context's dedicated
/// `Obs`-side pair store when one is attached (the incremental analyzer
/// keeps it warm across refinement steps — the bind-time fingerprint diff
/// invalidates exactly the pairs of rules whose signatures changed), and
/// to a fresh private store otherwise, matching the old clear-everything
/// behavior.
pub fn extend_with_obs(ctx: &AnalysisContext) -> AnalysisContext {
    let mut sigs = ctx.sigs.clone();
    for sig in &mut sigs {
        if sig.observable {
            sig.reads
                .insert(starling_storage::ColRef::new(OBS_TABLE, "log"));
            sig.performs
                .insert(starling_storage::Op::Insert(OBS_TABLE.to_owned()));
        }
    }
    let store = ctx
        .obs_store
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(crate::pair_store::PairStore::new()));
    AnalysisContext::from_parts(
        sigs,
        ctx.priority.clone(),
        ctx.certs.clone(),
        ctx.defs.clone(),
        ctx.catalog.clone(),
        ctx.refine,
        store,
    )
}

/// Runs observable-determinism analysis (Theorem 8.1).
pub fn analyze_observable_determinism(ctx: &AnalysisContext) -> ObservableAnalysis {
    let observable_rules: Vec<String> = ctx
        .sigs
        .iter()
        .filter(|s| s.observable)
        .map(|s| s.name.clone())
        .collect();
    // With no observable rule the Obs extension changes no signature, so
    // the analysis runs on the original context — its cached triggering
    // adjacency included — instead of cloning and rebinding everything.
    // Sig(Obs) is empty either way, so no pair is probed and the result
    // is identical.
    let partial = if observable_rules.is_empty() {
        analyze_partial_confluence(ctx, &[OBS_TABLE])
    } else {
        let extended = extend_with_obs(ctx);
        analyze_partial_confluence(&extended, &[OBS_TABLE])
    };
    ObservableAnalysis {
        observable_rules,
        partial,
    }
}

/// Corollary 8.2 check: if the analysis finds the rule set observably
/// deterministic, every pair of distinct observable rules must be ordered.
/// Returns violations (empty on any set our analysis accepts —
/// property-tested).
pub fn corollary_8_2(ctx: &AnalysisContext, analysis: &ObservableAnalysis) -> Vec<String> {
    let mut out = Vec::new();
    if !analysis.is_guaranteed() {
        return out;
    }
    let obs: Vec<usize> = ctx
        .sigs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.observable)
        .map(|(i, _)| i)
        .collect();
    for (k, &i) in obs.iter().enumerate() {
        for &j in &obs[k + 1..] {
            if ctx.unordered(i, j) {
                out.push(format!(
                    "corollary 8.2 violated: observable rules `{}` and `{}` are unordered",
                    ctx.name(i),
                    ctx.name(j)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str, certs: Certifications) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, certs)
    }

    #[test]
    fn unordered_observables_flagged() {
        let a = analyze_observable_determinism(&ctx(
            "create rule obs1 on t when inserted then select x from t end;
             create rule obs2 on t when inserted then select x from u end;",
            Certifications::new(),
        ));
        assert_eq!(a.observable_rules, vec!["obs1", "obs2"]);
        assert!(!a.is_guaranteed());
        // Both are in Sig(Obs): they both insert into Obs.
        assert_eq!(a.partial.significant, vec!["obs1", "obs2"]);
    }

    #[test]
    fn ordered_observables_deterministic() {
        let a = analyze_observable_determinism(&ctx(
            "create rule obs1 on t when inserted then select x from t precedes obs2 end;
             create rule obs2 on t when inserted then select x from u end;",
            Certifications::new(),
        ));
        assert!(a.is_guaranteed());
    }

    #[test]
    fn confluent_but_not_observably_deterministic() {
        // Orthogonality, direction 1: no database writes at all (trivially
        // confluent) but two unordered observables.
        let c = ctx(
            "create rule obs1 on t when inserted then select 1 end;
             create rule obs2 on t when inserted then select 2 end;",
            Certifications::new(),
        );
        let conf = crate::confluence::analyze_confluence(&c);
        assert!(conf.requirement_holds());
        let a = analyze_observable_determinism(&c);
        assert!(!a.is_guaranteed());
    }

    #[test]
    fn observably_deterministic_but_not_confluent() {
        // Orthogonality, direction 2: conflicting writers, no observables.
        let c = ctx(
            "create rule w1 on t when inserted then update u set x = 1 end;
             create rule w2 on t when inserted then update u set x = 2 end;",
            Certifications::new(),
        );
        let conf = crate::confluence::analyze_confluence(&c);
        assert!(!conf.requirement_holds());
        let a = analyze_observable_determinism(&c);
        assert!(a.observable_rules.is_empty());
        assert!(a.is_guaranteed());
    }

    #[test]
    fn nonobservable_writer_recruited_into_sig_obs() {
        // writer updates t.x which obs reads: they do not commute, so
        // writer ∈ Sig(Obs) even though it is not observable. writer and
        // obs are unordered → violation.
        let a = analyze_observable_determinism(&ctx(
            "create rule obs on t when inserted then select x from t end;
             create rule writer on u when inserted then update t set x = 1 end;",
            Certifications::new(),
        ));
        assert_eq!(a.observable_rules, vec!["obs"]);
        assert_eq!(a.partial.significant, vec!["obs", "writer"]);
        assert!(!a.is_guaranteed());
    }

    #[test]
    fn corollary_8_2_holds_on_accepted_sets() {
        let c = ctx(
            "create rule obs1 on t when inserted then select x from t precedes obs2 end;
             create rule obs2 on t when inserted then select x from u end;",
            Certifications::new(),
        );
        let a = analyze_observable_determinism(&c);
        assert!(a.is_guaranteed());
        assert!(corollary_8_2(&c, &a).is_empty());
    }

    #[test]
    fn extend_adds_obs_only_to_observable() {
        let c = ctx(
            "create rule obs on t when inserted then rollback end;
             create rule silent on t when inserted then delete from u end;",
            Certifications::new(),
        );
        let e = extend_with_obs(&c);
        assert!(e.sigs[0]
            .performs
            .contains(&starling_storage::Op::Insert(OBS_TABLE.into())));
        assert!(!e.sigs[1].performs.iter().any(|op| op.table() == OBS_TABLE));
    }
}
