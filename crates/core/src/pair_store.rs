//! The persistent, versioned pair-verdict store backing the incremental
//! §6.4 loop.
//!
//! [`PairStore`] replaces the old per-context `PairCache` (a `RefCell`
//! HashMap wholesale-cleared on any refinement). It is `Send + Sync`,
//! shared across analysis contexts via `Arc`, and keyed by **rule-pair
//! identity**: rule names are interned to stable u32 ids, and Lemma 6.1
//! verdicts live in two dense triangular bitmaps (known-bit + value-bit,
//! two bits per pair — ~12.5 MB at 10k rules, where a `HashMap` of 50M pair
//! entries would be gigabytes). Noncommutativity *reasons* are only
//! materialized for pairs that actually conflict, so they stay in a sparse
//! map.
//!
//! Invalidation is **structural**, not caller-driven: every analysis run
//! re-[`bind`](PairStore::bind)s the current signatures/certifications/
//! refinement flag, and the store diffs them against what it last saw:
//!
//! * a rule whose signature fingerprint changed (redefined, or added back
//!   with a different body) invalidates exactly the O(n) pairs that
//!   mention it — verdicts *and* its reason entries;
//! * a commute-certification added or revoked invalidates exactly that
//!   pair's verdict (reasons are certification-independent);
//! * toggling the Section 9 predicate-level refinement invalidates every
//!   verdict but keeps the reason entries (in Starling, reasons are the
//!   raw Lemma 6.1 conditions; refinement only affects whether they are
//!   *discharged*, i.e. the verdict);
//! * priority edits invalidate **nothing here** — Lemma 6.1 is
//!   priority-independent; ordering-dependent state (which pairs are
//!   unordered, the Def 6.5 closures) lives in the incremental analyzer's
//!   confluence memo, which diffs the priority closure itself.
//!
//! Dropped rules leave their entries dormant: re-adding the same rule with
//! the same signature revalidates its pairs for free (the fingerprint
//! matches), while re-adding it changed invalidates them precisely.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use starling_sql::RuleSignature;
use starling_storage::Fnv64;

use crate::certifications::Certifications;
use crate::commutativity::NoncommutativityReason;

/// Flat index of the unordered pair `{a, b}` (`a < b`) in the triangular
/// bitmaps. Depends only on the pair, so growing the id space never moves
/// existing entries.
#[inline]
fn tri(a: usize, b: usize) -> usize {
    debug_assert!(a < b);
    b * (b - 1) / 2 + a
}

#[inline]
fn get_bit(bits: &[u64], idx: usize) -> bool {
    bits[idx / 64] >> (idx % 64) & 1 != 0
}

#[inline]
fn set_bit(bits: &mut [u64], idx: usize, v: bool) {
    if v {
        bits[idx / 64] |= 1u64 << (idx % 64);
    } else {
        bits[idx / 64] &= !(1u64 << (idx % 64));
    }
}

/// A stable content hash of everything a Lemma 6.1 verdict depends on for
/// one rule. `RuleSignature`'s set fields are `BTreeSet`s, so its `Debug`
/// rendering is deterministic.
fn fingerprint(sig: &RuleSignature) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&format!("{sig:?}"));
    h.finish()
}

/// What one [`PairStore::bind`] changed — the dirty-set seed the
/// incremental analyzer propagates from.
#[derive(Clone, Debug, Default)]
pub struct BindOutcome {
    /// Store id of each bound rule, in rule order.
    pub sids: Vec<u32>,
    /// Previously seen rules whose signature fingerprint changed.
    pub changed_rules: Vec<u32>,
    /// Rules bound for the first time ever (no dormant entries existed).
    pub added_rules: Vec<u32>,
    /// Pairs (normalized `(min, max)` store ids) whose commute
    /// certification was added or revoked since the previous bind.
    pub changed_certs: Vec<(u32, u32)>,
    /// The refinement flag flipped: every verdict was dropped.
    pub refine_flipped: bool,
    /// This was the store's first bind (nothing to diff against).
    pub first_bind: bool,
}

impl BindOutcome {
    /// Whether the previous bind's verdict set survives untouched.
    pub fn unchanged(&self) -> bool {
        !self.first_bind
            && !self.refine_flipped
            && self.changed_rules.is_empty()
            && self.added_rules.is_empty()
            && self.changed_certs.is_empty()
    }
}

/// Cumulative counters, reported per session by the server's `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairStoreStats {
    /// Verdict/reason lookups answered from the store.
    pub hits: u64,
    /// Lookups that had to compute (and then stored the result).
    pub misses: u64,
    /// Cached verdicts dropped by bind-time diffs.
    pub invalidations: u64,
    /// Monotone version counter: bumps whenever a bind changes anything.
    pub epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    ids: HashMap<String, u32>,
    fps: Vec<u64>,
    /// Triangular bitmap: pair verdict present.
    known: Vec<u64>,
    /// Triangular bitmap: the verdict itself (valid where `known`).
    verdicts: Vec<u64>,
    /// Raw Lemma 6.1 reasons, keyed by **directional** `(a, b)` store ids
    /// (the reported direction matters for display).
    reasons: HashMap<(u32, u32), Vec<NoncommutativityReason>>,
    last_commute: BTreeSet<(String, String)>,
    refine: bool,
    bound: bool,
}

impl Inner {
    fn grow_to(&mut self, cap: usize) {
        let words = (cap * cap.saturating_sub(1) / 2).div_ceil(64);
        if self.known.len() < words {
            self.known.resize(words, 0);
            self.verdicts.resize(words, 0);
        }
    }

    /// Clears every cached verdict and reason entry mentioning `sid`.
    /// Returns how many verdicts were dropped.
    fn clear_rule(&mut self, sid: u32) -> u64 {
        let cap = self.fps.len();
        let s = sid as usize;
        let mut cleared = 0u64;
        let drop_pair = |known: &mut [u64], idx: usize| {
            if get_bit(known, idx) {
                set_bit(known, idx, false);
                1
            } else {
                0
            }
        };
        for a in 0..s {
            cleared += drop_pair(&mut self.known, tri(a, s));
        }
        for b in (s + 1)..cap {
            cleared += drop_pair(&mut self.known, tri(s, b));
        }
        self.reasons.retain(|k, _| k.0 != sid && k.1 != sid);
        cleared
    }
}

/// See the module docs.
#[derive(Debug, Default)]
pub struct PairStore {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    epoch: AtomicU64,
}

impl PairStore {
    /// An empty store.
    pub fn new() -> Self {
        PairStore::default()
    }

    /// Binds the current analysis inputs, diffing them against the
    /// previous bind and invalidating exactly the stale entries.
    pub fn bind(
        &self,
        sigs: &[RuleSignature],
        certs: &Certifications,
        refine: bool,
    ) -> BindOutcome {
        let inner = &mut *self.inner.write().expect("pair store poisoned");
        let first_bind = !inner.bound;
        inner.bound = true;

        let mut out = BindOutcome {
            first_bind,
            ..BindOutcome::default()
        };
        let mut cleared = 0u64;
        for sig in sigs {
            let fp = fingerprint(sig);
            let next = inner.fps.len() as u32;
            let sid = *inner.ids.entry(sig.name.clone()).or_insert(next);
            if sid == next {
                inner.fps.push(fp);
                let cap = inner.fps.len();
                inner.grow_to(cap);
                out.added_rules.push(sid);
            } else if inner.fps[sid as usize] != fp {
                cleared += inner.clear_rule(sid);
                inner.fps[sid as usize] = fp;
                out.changed_rules.push(sid);
            }
            out.sids.push(sid);
        }

        let new_commute: BTreeSet<(String, String)> = certs.commute_pairs().cloned().collect();
        for pair in new_commute.symmetric_difference(&inner.last_commute) {
            let (Some(&a), Some(&b)) = (inner.ids.get(&pair.0), inner.ids.get(&pair.1)) else {
                continue;
            };
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let idx = tri(key.0 as usize, key.1 as usize);
            if get_bit(&inner.known, idx) {
                set_bit(&mut inner.known, idx, false);
                cleared += 1;
            }
            out.changed_certs.push(key);
        }
        inner.last_commute = new_commute;

        if !first_bind && inner.refine != refine {
            out.refine_flipped = true;
            cleared += inner
                .known
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum::<u64>();
            inner.known.iter_mut().for_each(|w| *w = 0);
        }
        inner.refine = refine;

        if cleared > 0 {
            self.invalidations.fetch_add(cleared, Ordering::Relaxed);
        }
        if !out.unchanged() {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Cached commutativity verdict for the (symmetric) pair, if present.
    pub(crate) fn verdict(&self, a: u32, b: u32) -> Option<bool> {
        debug_assert_ne!(a, b);
        let idx = tri(a.min(b) as usize, a.max(b) as usize);
        let inner = self.inner.read().expect("pair store poisoned");
        if get_bit(&inner.known, idx) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(get_bit(&inner.verdicts, idx))
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Stores a freshly computed verdict.
    pub(crate) fn set_verdict(&self, a: u32, b: u32, v: bool) {
        debug_assert_ne!(a, b);
        let idx = tri(a.min(b) as usize, a.max(b) as usize);
        let inner = &mut *self.inner.write().expect("pair store poisoned");
        set_bit(&mut inner.verdicts, idx, v);
        set_bit(&mut inner.known, idx, true);
    }

    /// Stores a batch of verdicts under one lock acquisition, counting each
    /// as a miss (the parallel sweep computes them without a prior
    /// [`Self::verdict`] probe). Bit positions are disjoint per pair and
    /// every value is a pure function of the pair, so merge order cannot
    /// affect the resulting store state.
    pub(crate) fn merge_verdicts(&self, entries: &[(u32, u32, bool)]) {
        if entries.is_empty() {
            return;
        }
        let inner = &mut *self.inner.write().expect("pair store poisoned");
        for &(a, b, v) in entries {
            let idx = tri(a.min(b) as usize, a.max(b) as usize);
            set_bit(&mut inner.verdicts, idx, v);
            set_bit(&mut inner.known, idx, true);
        }
        self.misses
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
    }

    /// Cached raw reasons for the **directional** pair `(a, b)`.
    pub(crate) fn reasons(&self, a: u32, b: u32) -> Option<Vec<NoncommutativityReason>> {
        let inner = self.inner.read().expect("pair store poisoned");
        match inner.reasons.get(&(a, b)) {
            Some(rs) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rs.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores freshly computed reasons for the directional pair `(a, b)`.
    pub(crate) fn set_reasons(&self, a: u32, b: u32, rs: Vec<NoncommutativityReason>) {
        let inner = &mut *self.inner.write().expect("pair store poisoned");
        inner.reasons.insert((a, b), rs);
    }

    /// A point-in-time copy of the known-bits bitmap, for lock-free probing
    /// during the parallel sweep.
    pub(crate) fn known_snapshot(&self) -> KnownSnapshot {
        let inner = self.inner.read().expect("pair store poisoned");
        KnownSnapshot {
            bits: inner.known.clone(),
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PairStoreStats {
        PairStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
        }
    }
}

/// See [`PairStore::known_snapshot`].
pub(crate) struct KnownSnapshot {
    bits: Vec<u64>,
}

impl KnownSnapshot {
    pub(crate) fn contains(&self, a: u32, b: u32) -> bool {
        let idx = tri(a.min(b) as usize, a.max(b) as usize);
        idx / 64 < self.bits.len() && get_bit(&self.bits, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::tests::ctx_from;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PairStore>();
    };

    fn three_sigs() -> Vec<RuleSignature> {
        ctx_from(
            "create rule a on t when inserted then update u set x = 1 end;
             create rule b on t when deleted then update u set x = 2 end;
             create rule c on t when inserted then insert into u values (1) end;",
            &[("t", &["x"]), ("u", &["x"])],
        )
        .sigs
    }

    #[test]
    fn rebind_same_inputs_is_a_noop() {
        let store = PairStore::new();
        let sigs = three_sigs();
        let certs = Certifications::new();
        let first = store.bind(&sigs, &certs, false);
        assert!(first.first_bind);
        assert_eq!(first.added_rules, vec![0, 1, 2]);
        store.set_verdict(first.sids[0], first.sids[1], false);
        let again = store.bind(&sigs, &certs, false);
        assert!(again.unchanged());
        assert_eq!(again.sids, first.sids);
        assert_eq!(store.verdict(0, 1), Some(false));
        assert_eq!(store.stats().invalidations, 0);
    }

    #[test]
    fn signature_change_invalidates_only_that_rules_pairs() {
        let store = PairStore::new();
        let mut sigs = three_sigs();
        let out = store.bind(&sigs, &Certifications::new(), false);
        store.set_verdict(0, 1, false);
        store.set_verdict(0, 2, true);
        store.set_verdict(1, 2, true);
        store.set_reasons(1, 2, Vec::new());
        // Redefine rule c (sid 2): its two pairs drop, pair (a, b) survives.
        sigs[2].observable = !sigs[2].observable;
        let out2 = store.bind(&sigs, &Certifications::new(), false);
        assert_eq!(out2.changed_rules, vec![2]);
        assert_eq!(out2.sids, out.sids);
        assert_eq!(store.verdict(0, 1), Some(false));
        assert_eq!(store.verdict(0, 2), None);
        assert_eq!(store.verdict(1, 2), None);
        assert_eq!(store.reasons(1, 2), None);
        assert_eq!(store.stats().invalidations, 2);
    }

    #[test]
    fn dropped_rule_revalidates_on_identical_readd() {
        let store = PairStore::new();
        let sigs = three_sigs();
        store.bind(&sigs, &Certifications::new(), false);
        store.set_verdict(1, 2, true);
        // Drop rule b, then re-add it unchanged: its dormant entries are
        // still valid, so nothing is invalidated.
        let two: Vec<RuleSignature> = vec![sigs[0].clone(), sigs[2].clone()];
        let out = store.bind(&two, &Certifications::new(), false);
        assert!(out.unchanged());
        let back = store.bind(&sigs, &Certifications::new(), false);
        assert!(back.unchanged());
        assert_eq!(store.verdict(1, 2), Some(true));
    }

    #[test]
    fn cert_change_invalidates_exactly_that_pair() {
        let store = PairStore::new();
        let sigs = three_sigs();
        store.bind(&sigs, &Certifications::new(), false);
        store.set_verdict(0, 1, false);
        store.set_verdict(0, 2, true);
        let mut certs = Certifications::new();
        certs.certify_commute("a", "b");
        let out = store.bind(&sigs, &certs, false);
        assert_eq!(out.changed_certs, vec![(0, 1)]);
        assert_eq!(store.verdict(0, 1), None);
        assert_eq!(store.verdict(0, 2), Some(true));
        // Revoking invalidates the pair again.
        let out = store.bind(&sigs, &Certifications::new(), false);
        assert_eq!(out.changed_certs, vec![(0, 1)]);
    }

    #[test]
    fn refine_flip_drops_verdicts_keeps_reasons() {
        let store = PairStore::new();
        let sigs = three_sigs();
        store.bind(&sigs, &Certifications::new(), false);
        store.set_verdict(0, 1, false);
        store.set_reasons(0, 1, Vec::new());
        let out = store.bind(&sigs, &Certifications::new(), true);
        assert!(out.refine_flipped);
        assert_eq!(store.verdict(0, 1), None);
        assert_eq!(store.reasons(0, 1), Some(Vec::new()));
        assert!(store.stats().invalidations >= 1);
        assert!(store.stats().epoch >= 2);
    }
}
