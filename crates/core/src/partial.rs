//! Partial confluence (paper Section 7).
//!
//! Confluence may be too strong: a rule set may be allowed to scribble
//! nondeterministically on scratch tables as long as the *important* tables
//! `T'` end up identical in every final state. Definition 7.1 computes the
//! **significant rules** `Sig(T')`:
//!
//! ```text
//! Sig(T') ← {r | (I,t), (D,t), or (U,t.c) ∈ Performs(r) for some t ∈ T'}
//! repeat until unchanged:
//!   Sig(T') ← Sig(T') ∪ {r | ∃ r' ∈ Sig(T'), r and r' do not commute}
//! ```
//!
//! Theorem 7.2: if the rules in `Sig(T')` are guaranteed to terminate (as a
//! rule set of their own) and satisfy the Confluence Requirement, then the
//! full rule set is confluent with respect to `T'`.

use serde::Serialize;

use crate::commutativity::commutes_idx;
use crate::confluence::{analyze_confluence_of, ConfluenceAnalysis};
use crate::context::AnalysisContext;
use crate::termination::{analyze_termination_indexed, TerminationAnalysis};
use crate::triggering_graph::TriggeringGraph;

/// Computes `Sig(T')` (Definition 7.1) as rule indices, in index order.
///
/// The commutativity test honors user certifications, exactly as the paper
/// prescribes ("the user can influence the computation of Sig(T') by
/// specifying that pairs ... actually do commute").
pub fn significant_rules(ctx: &AnalysisContext, tables: &[&str]) -> Vec<usize> {
    let all: Vec<usize> = (0..ctx.len()).collect();
    significant_rules_in(ctx, tables, &all)
}

/// `Sig(T')` computed within a subset of rules (rules outside `subset` are
/// treated as nonexistent — used when user operations are restricted and
/// only reachable rules can ever run).
pub fn significant_rules_in(
    ctx: &AnalysisContext,
    tables: &[&str],
    subset: &[usize],
) -> Vec<usize> {
    let n = ctx.len();
    let mut member = vec![false; n];
    for &i in subset {
        member[i] = true;
    }
    let mut sig = vec![false; n];
    for &i in subset {
        if ctx.sigs[i]
            .performs
            .iter()
            .any(|op| tables.contains(&op.table()))
        {
            sig[i] = true;
        }
    }
    // Iterate to the least fixed point, testing candidates against a
    // snapshot of the rules significant at the round's start: the closure
    // is monotone, so the fixed point is the same as with live updates,
    // and the inner scan is O(|Sig|) rather than O(n) per candidate —
    // in particular O(1) rounds when Sig(T') starts (and stays) empty.
    loop {
        let mut changed = false;
        let sig_now: Vec<usize> = (0..n).filter(|&q| sig[q] && member[q]).collect();
        for &r in subset {
            if sig[r] {
                continue;
            }
            if sig_now.iter().any(|&q| !commutes_idx(ctx, r, q)) {
                sig[r] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..n).filter(|&i| sig[i]).collect()
}

/// The result of partial confluence analysis with respect to `T'`.
#[derive(Clone, Debug, Serialize)]
pub struct PartialConfluenceAnalysis {
    /// The protected tables `T'`.
    pub tables: Vec<String>,
    /// Names of the significant rules `Sig(T')`.
    pub significant: Vec<String>,
    /// Termination analysis of `Sig(T')` *processed on its own* (Theorem
    /// 7.2's first premise — footnote 7 of the paper).
    pub termination: TerminationAnalysis,
    /// The Confluence Requirement over `Sig(T')`.
    pub confluence: ConfluenceAnalysis,
}

impl PartialConfluenceAnalysis {
    /// Whether partial confluence with respect to `T'` is guaranteed.
    pub fn is_guaranteed(&self) -> bool {
        self.termination.is_guaranteed() && self.confluence.requirement_holds()
    }
}

/// Runs partial confluence analysis (Theorem 7.2).
pub fn analyze_partial_confluence(
    ctx: &AnalysisContext,
    tables: &[&str],
) -> PartialConfluenceAnalysis {
    let all: Vec<usize> = (0..ctx.len()).collect();
    analyze_partial_confluence_of(ctx, tables, &all)
}

/// Partial confluence restricted to a subset of rules (used by the
/// restricted-operations extension: only reachable rules participate).
pub fn analyze_partial_confluence_of(
    ctx: &AnalysisContext,
    tables: &[&str],
    subset: &[usize],
) -> PartialConfluenceAnalysis {
    let sig = significant_rules_in(ctx, tables, subset);
    // Termination of Sig(T') as if processed on its own: the triggering
    // subgraph restricted to significant rules.
    let full = TriggeringGraph::build(ctx);
    let sub = full.subgraph(&sig);
    let termination = analyze_termination_indexed(ctx, sub, Some(&sig));
    let confluence = analyze_confluence_of(ctx, &sig);
    PartialConfluenceAnalysis {
        tables: tables.iter().map(|t| (*t).to_owned()).collect(),
        significant: sig.iter().map(|&i| ctx.name(i).to_owned()).collect(),
        termination,
        confluence,
    }
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str, tables: &[(&str, &[&str])], certs: Certifications) -> AnalysisContext {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, certs)
    }

    const TABLES: &[(&str, &[&str])] = &[("data", &["x"]), ("scratch", &["x"]), ("t", &["x"])];

    /// Two rules that conflict only on a scratch table: not confluent, but
    /// confluent with respect to the data table.
    #[test]
    fn scratch_conflict_is_partially_confluent() {
        let c = ctx(
            "create rule a on t when inserted then update scratch set x = 1 end;
             create rule b on t when inserted then update scratch set x = 2 end;
             create rule keeper on t when deleted then update data set x = 0 end;",
            TABLES,
            Certifications::new(),
        );
        let full = crate::confluence::analyze_confluence(&c);
        assert!(!full.requirement_holds());

        let p = analyze_partial_confluence(&c, &["data"]);
        // a and b only touch scratch; keeper touches data. a/b commute with
        // keeper, so Sig(data) = {keeper} and the requirement holds.
        assert_eq!(p.significant, vec!["keeper"]);
        assert!(p.is_guaranteed());

        let p2 = analyze_partial_confluence(&c, &["scratch"]);
        assert_eq!(p2.significant, vec!["a", "b"]);
        assert!(!p2.is_guaranteed());
    }

    /// The Sig closure pulls in rules that do not write T' but fail to
    /// commute with rules that do.
    #[test]
    fn sig_closure_recruits_noncommuting_rules() {
        let c = ctx(
            // writer writes data; feeder triggers writer (condition 1: they
            // do not commute) so feeder is significant too.
            "create rule feeder on t when inserted then insert into scratch values (1) end;
             create rule writer on scratch when inserted then update data set x = 1 end;",
            TABLES,
            Certifications::new(),
        );
        let sig = significant_rules(&c, &["data"]);
        assert_eq!(sig, vec![0, 1]);
    }

    /// Termination is checked on Sig(T') processed alone (footnote 7).
    #[test]
    fn sig_termination_checked_on_subgraph() {
        let c = ctx(
            // Cycle between two data-writers: partial confluence must fail
            // on the termination premise even before commutativity.
            "create rule p on data when updated(x) then insert into t values (1) end;
             create rule q on t when inserted then update data set x = 1 end;",
            TABLES,
            Certifications::new(),
        );
        let p = analyze_partial_confluence(&c, &["data"]);
        assert!(!p.termination.is_guaranteed());
        assert!(!p.is_guaranteed());
    }

    /// Rules outside Sig(T') may form cycles without affecting the verdict.
    #[test]
    fn outside_cycles_do_not_matter() {
        let mut certs = Certifications::new();
        // spin_a/spin_b cycle on scratch; they commute with keeper
        // (disjoint tables). Their own noncommutativity (they trigger each
        // other) keeps them out of Sig(data) only if they commute with
        // keeper — which they do.
        certs.certify_commute("spin_a", "spin_b");
        let c = ctx(
            "create rule spin_a on scratch when inserted then insert into scratch values (1) end;
             create rule keeper on t when deleted then update data set x = 0 end;",
            TABLES,
            certs,
        );
        let p = analyze_partial_confluence(&c, &["data"]);
        assert_eq!(p.significant, vec!["keeper"]);
        assert!(p.is_guaranteed());
        // Full termination would fail; partial succeeds.
        let t = crate::termination::analyze_termination(&c);
        assert!(!t.is_guaranteed());
    }

    #[test]
    fn empty_tables_empty_sig() {
        let c = ctx(
            "create rule a on t when inserted then update scratch set x = 1 end",
            TABLES,
            Certifications::new(),
        );
        let p = analyze_partial_confluence(&c, &["data"]);
        assert!(p.significant.is_empty());
        assert!(p.is_guaranteed());
    }
}
