//! Partitioned and incremental analysis (paper Section 9, first extension).
//!
//! "Most rule applications can be partitioned into groups of rules such
//! that, across partitions, rules reference different sets of tables and
//! have no priority ordering. ... analysis can be applied separately to
//! each partition, and it needs to be repeated for a partition only when
//! rules in that partition change."
//!
//! Two rules share a partition when they reference a common table (through
//! their own table, `Reads`, or `Performs`) or are priority-ordered. The
//! [`IncrementalAnalyzer`] caches per-partition results keyed by a content
//! digest and recomputes only invalidated partitions.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;
use starling_storage::{Fnv64, Op};

use crate::confluence::{analyze_confluence_of, ConfluenceAnalysis};
use crate::context::AnalysisContext;
use crate::termination::{analyze_termination_indexed, TerminationAnalysis};
use crate::triggering_graph::TriggeringGraph;

/// Tables a rule references in any way.
fn referenced_tables(ctx: &AnalysisContext, i: usize) -> BTreeSet<String> {
    let sig = &ctx.sigs[i];
    let mut out = BTreeSet::new();
    out.insert(sig.table.clone());
    for c in &sig.reads {
        out.insert(c.table.clone());
    }
    for op in &sig.performs {
        out.insert(match op {
            Op::Insert(t) | Op::Delete(t) => t.clone(),
            Op::Update(c) => c.table.clone(),
        });
    }
    out
}

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partitions the rule set into independent groups (rule indices, each
/// sorted; groups ordered by smallest member).
pub fn partition_rules(ctx: &AnalysisContext) -> Vec<Vec<usize>> {
    let n = ctx.len();
    let mut uf = UnionFind::new(n);
    // Union rules sharing a referenced table.
    let mut by_table: BTreeMap<String, usize> = BTreeMap::new();
    for i in 0..n {
        for t in referenced_tables(ctx, i) {
            match by_table.get(&t) {
                Some(&j) => uf.union(i, j),
                None => {
                    by_table.insert(t, i);
                }
            }
        }
    }
    // Union priority-ordered rules.
    for i in 0..n {
        for j in (i + 1)..n {
            if !ctx.unordered(i, j) {
                uf.union(i, j);
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Analysis results for one partition.
#[derive(Clone, Debug, Serialize)]
pub struct PartitionResult {
    /// Rule names in the partition.
    pub rules: Vec<String>,
    /// Termination over the partition.
    pub termination: TerminationAnalysis,
    /// Confluence Requirement over the partition.
    pub confluence: ConfluenceAnalysis,
}

/// Content digest of a partition: rule signatures plus relevant priorities
/// and certifications. Equal digests ⇒ identical analysis results.
fn partition_digest(ctx: &AnalysisContext, group: &[usize]) -> u64 {
    let mut h = Fnv64::new();
    for &i in group {
        let s = &ctx.sigs[i];
        h.write_str(&s.name);
        h.write_str(&s.table);
        h.write_usize(s.triggered_by.len());
        for op in &s.triggered_by {
            h.write_str(&op.to_string());
        }
        h.write_usize(s.performs.len());
        for op in &s.performs {
            h.write_str(&op.to_string());
        }
        h.write_usize(s.reads.len());
        for c in &s.reads {
            h.write_str(&c.to_string());
        }
        h.write(&[u8::from(s.observable)]);
        if let Some(just) = ctx.certs.termination_certificate(&s.name) {
            h.write_str(just);
        }
    }
    for (k, &i) in group.iter().enumerate() {
        for &j in &group[k + 1..] {
            h.write(&[u8::from(ctx.gt(i, j)), u8::from(ctx.gt(j, i))]);
            h.write(&[u8::from(
                ctx.certs.commute_certified(ctx.name(i), ctx.name(j)),
            )]);
        }
    }
    h.finish()
}

/// Caching analyzer: repeated calls recompute only partitions whose content
/// digest changed.
#[derive(Default)]
pub struct IncrementalAnalyzer {
    cache: BTreeMap<u64, PartitionResult>,
    /// Partitions analyzed fresh on the most recent call (for speedup
    /// measurements).
    pub last_recomputed: usize,
    /// Partitions served from cache on the most recent call.
    pub last_cached: usize,
}

impl IncrementalAnalyzer {
    /// A fresh analyzer with an empty cache.
    pub fn new() -> Self {
        IncrementalAnalyzer::default()
    }

    /// Analyzes all partitions, using the cache where valid.
    pub fn analyze(&mut self, ctx: &AnalysisContext) -> Vec<PartitionResult> {
        self.last_recomputed = 0;
        self.last_cached = 0;
        let graph = TriggeringGraph::build(ctx);
        let mut out = Vec::new();
        for group in partition_rules(ctx) {
            let key = partition_digest(ctx, &group);
            if let Some(hit) = self.cache.get(&key) {
                self.last_cached += 1;
                out.push(hit.clone());
                continue;
            }
            self.last_recomputed += 1;
            let sub = graph.subgraph(&group);
            let result = PartitionResult {
                rules: group.iter().map(|&i| ctx.name(i).to_owned()).collect(),
                termination: analyze_termination_indexed(ctx, sub, Some(&group)),
                confluence: analyze_confluence_of(ctx, &group),
            };
            self.cache.insert(key, result.clone());
            out.push(result);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["a1", "a2", "b1", "b2"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    const TWO_GROUPS: &str =
        "create rule g1a on a1 when inserted then insert into a2 values (1) end;
         create rule g1b on a2 when inserted then insert into a1 values (1) end;
         create rule g2a on b1 when inserted then insert into b2 values (1) end;
         create rule g2b on b2 when inserted then insert into b1 values (1) end;";

    #[test]
    fn disjoint_tables_split() {
        let c = ctx(TWO_GROUPS);
        let p = partition_rules(&c);
        assert_eq!(p, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn priority_merges_partitions() {
        let c = ctx(
            "create rule g1a on a1 when inserted then delete from a1 precedes g2a end;
             create rule g2a on b1 when inserted then delete from b1 end;",
        );
        let p = partition_rules(&c);
        assert_eq!(p, vec![vec![0, 1]]);
    }

    #[test]
    fn shared_read_merges_partitions() {
        let c = ctx("create rule w on a1 when inserted then delete from a1 end;
             create rule r on b1 when inserted \
               if exists (select * from a1) then delete from b1 end;");
        let p = partition_rules(&c);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn incremental_cache_hits() {
        let c = ctx(TWO_GROUPS);
        let mut inc = IncrementalAnalyzer::new();
        let r1 = inc.analyze(&c);
        assert_eq!(r1.len(), 2);
        assert_eq!(inc.last_recomputed, 2);
        assert_eq!(inc.last_cached, 0);

        // Unchanged rule set: everything cached.
        let _ = inc.analyze(&c);
        assert_eq!(inc.last_recomputed, 0);
        assert_eq!(inc.last_cached, 2);

        // Change one group (add a certification touching g1a only): just
        // that partition recomputes.
        let mut c2 = c.clone();
        c2.certs.certify_terminates("g1a", "bounded");
        let _ = inc.analyze(&c2);
        assert_eq!(inc.last_recomputed, 1);
        assert_eq!(inc.last_cached, 1);
    }

    #[test]
    fn partition_results_match_whole_analysis() {
        let c = ctx(TWO_GROUPS);
        let mut inc = IncrementalAnalyzer::new();
        let rs = inc.analyze(&c);
        // Both groups are ping-pong cycles: each partition flags
        // nontermination, as whole-set analysis would.
        for r in &rs {
            assert!(!r.termination.is_guaranteed());
        }
        let whole = crate::termination::analyze_termination(&c);
        assert_eq!(whole.cycles.len(), 2);
    }
}
