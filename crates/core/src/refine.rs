//! Predicate-level commutativity refinement — the paper's Section 9 "less
//! conservative methods" extension, implementing the two examples given
//! right after Lemma 6.1:
//!
//! 1. *"r_i inserts into a table t and r_j deletes from t, but the tuples
//!    inserted by r_i never satisfy the delete condition of r_j"* — when
//!    `r_i` inserts constant rows and `r_j`'s predicate is simple (no
//!    subqueries), we evaluate the predicate on each inserted row; if none
//!    satisfies it, condition 4 is discharged.
//! 2. *"r_i and r_j update the same table but never the same tuples"* —
//!    when both `WHERE` clauses constrain a common column to provably
//!    disjoint constant ranges, condition 5 (and the update/delete half of
//!    condition 4) is discharged.
//!
//! The refinement only ever *drops* a reason when disjointness is proven;
//! anything it cannot analyze is kept — so it stays conservative, just less
//! so. It is off by default ([`AnalysisContext::refine`]); the paper-exact
//! conditions remain the baseline.
//!
//! Soundness of the drops is oracle-tested in `tests/refinement_oracle.rs`.

use starling_sql::ast::{Action, BinOp, Expr, InsertSource, RuleDef};
use starling_sql::eval::{Env, EvalCtx};
use starling_storage::{Catalog, Database, Row, Value};

use crate::commutativity::NoncommutativityReason;
use crate::context::AnalysisContext;

/// Applies the refinement to a reason list for the rule pair `(i, j)`,
/// dropping reasons that are provably spurious. Requires rule definitions
/// and a catalog in the context; otherwise returns the input unchanged.
pub fn refine_reasons(
    ctx: &AnalysisContext,
    i: usize,
    j: usize,
    reasons: Vec<NoncommutativityReason>,
) -> Vec<NoncommutativityReason> {
    let (Some(a), Some(b), Some(catalog)) =
        (ctx.rule_def(i), ctx.rule_def(j), ctx.catalog.as_ref())
    else {
        return reasons;
    };
    reasons
        .into_iter()
        .filter(|r| !reason_discharged(r, a, b, catalog))
        .collect()
}

/// Whether a single reason is provably spurious for the pair.
fn reason_discharged(
    reason: &NoncommutativityReason,
    a: &RuleDef,
    b: &RuleDef,
    catalog: &Catalog,
) -> bool {
    match reason {
        NoncommutativityReason::UpdateUpdate { who, column, whom } => {
            let Some((table, col)) = column.split_once('.') else {
                return false;
            };
            let (wa, wb) = match resolve_pair(who, whom, a, b) {
                Some(p) => p,
                None => return false,
            };
            updates_disjoint(wa, wb, table, col)
        }
        NoncommutativityReason::InsertWrite { who, table, whom } => {
            let (wa, wb) = match resolve_pair(who, whom, a, b) {
                Some(p) => p,
                None => return false,
            };
            inserts_never_selected(wa, wb, table, catalog)
        }
        // Condition 3 with an insert on the writer's side: dischargeable
        // when the reader's ONLY reads of that table are the write
        // predicates already proven to miss every inserted row (the
        // paper's example 1 needs this — the delete's WHERE clause is
        // itself a read).
        NoncommutativityReason::WriteRead { who, op, whom } if op.starts_with("(I, ") => {
            let Some(table) = op
                .strip_prefix("(I, ")
                .and_then(|rest| rest.strip_suffix(')'))
            else {
                return false;
            };
            let (wa, wb) = match resolve_pair(who, whom, a, b) {
                Some(p) => p,
                None => return false,
            };
            reads_only_in_write_predicates(wb, table)
                && inserts_never_selected(wa, wb, table, catalog)
        }
        // Condition 3 with an update on the writer's side (the disjoint-
        // shards pattern): the reader's only contact with the table is its
        // own simple write predicates, and every writer-action/reader-
        // action predicate pair is provably disjoint — so the writer's
        // updates land on rows the reader never selects, and the reader's
        // predicate evaluation on the writer's rows is fixed by the
        // disjointness column, not the written one.
        NoncommutativityReason::WriteRead { who, op, whom } if op.starts_with("(U, ") => {
            let Some(colref) = op
                .strip_prefix("(U, ")
                .and_then(|rest| rest.strip_suffix(')'))
            else {
                return false;
            };
            let Some((table, col)) = colref.split_once('.') else {
                return false;
            };
            let (writer, reader) = match resolve_pair(who, whom, a, b) {
                Some(p) => p,
                None => return false,
            };
            if !reads_only_in_write_predicates(reader, table) {
                return false;
            }
            let writer_preds: Vec<&Option<Expr>> = writer
                .actions
                .iter()
                .filter_map(|act| match act {
                    Action::Update(u)
                        if u.table == table && u.sets.iter().any(|(c, _)| c == col) =>
                    {
                        Some(&u.where_clause)
                    }
                    _ => None,
                })
                .collect();
            let reader_preds: Vec<&Option<Expr>> = reader
                .actions
                .iter()
                .filter_map(|act| match act {
                    Action::Update(u) if u.table == table => Some(&u.where_clause),
                    Action::Delete(d) if d.table == table => Some(&d.where_clause),
                    _ => None,
                })
                .collect();
            if writer_preds.is_empty() || reader_preds.is_empty() {
                return false;
            }
            writer_preds.iter().all(|wp| {
                reader_preds.iter().all(|rp| match (wp, rp) {
                    (Some(x), Some(y)) => predicates_disjoint(x, y),
                    _ => false,
                })
            })
        }
        _ => false,
    }
}

/// Whether every reference `def` makes to `table` occurs inside the
/// `WHERE`/`SET` clauses of its own delete/update actions on `table`
/// (which [`inserts_never_selected`] separately proves miss the inserted
/// rows, and which cannot read other tables because they must be simple).
fn reads_only_in_write_predicates(def: &RuleDef, table: &str) -> bool {
    if let Some(cond) = &def.condition {
        if expr_mentions_table(cond, table) {
            return false;
        }
    }
    for act in &def.actions {
        match act {
            Action::Select(s) => {
                if select_mentions_table(s, table) {
                    return false;
                }
            }
            Action::Insert(stmt) => match &stmt.source {
                InsertSource::Select(s) => {
                    if select_mentions_table(s, table) {
                        return false;
                    }
                }
                InsertSource::Values(rows) => {
                    if rows.iter().flatten().any(|e| expr_mentions_table(e, table)) {
                        return false;
                    }
                }
            },
            Action::Delete(d) => {
                if d.table == table {
                    // Allowed only when the predicate is simple (checked by
                    // inserts_never_selected); a non-simple predicate could
                    // smuggle reads of `table` through subqueries.
                    if d.where_clause
                        .as_ref()
                        .is_some_and(|w| !is_simple_predicate(w))
                    {
                        return false;
                    }
                } else if d
                    .where_clause
                    .as_ref()
                    .is_some_and(|w| expr_mentions_table(w, table))
                {
                    return false;
                }
            }
            Action::Update(u) => {
                if u.table == table {
                    let simple = u.where_clause.as_ref().is_none_or(is_simple_predicate)
                        && u.sets.iter().all(|(_, e)| is_simple_predicate(e));
                    if !simple {
                        return false;
                    }
                } else {
                    let mentions = u
                        .where_clause
                        .as_ref()
                        .is_some_and(|w| expr_mentions_table(w, table))
                        || u.sets.iter().any(|(_, e)| expr_mentions_table(e, table));
                    if mentions {
                        return false;
                    }
                }
            }
            Action::Rollback => {}
        }
    }
    true
}

/// Whether an expression can reference `table`: through a subquery's `FROM`
/// or a qualified column. (An *unqualified* column can only reach `table`
/// through an enclosing `FROM` binding, which this walk also sees.)
fn expr_mentions_table(e: &Expr, table: &str) -> bool {
    match e {
        Expr::Literal(_) => false,
        Expr::Column(c) => c.qualifier.as_deref() == Some(table),
        Expr::Binary { lhs, rhs, .. } => {
            expr_mentions_table(lhs, table) || expr_mentions_table(rhs, table)
        }
        Expr::Neg(x) | Expr::Not(x) => expr_mentions_table(x, table),
        Expr::IsNull { expr, .. } => expr_mentions_table(expr, table),
        Expr::InList { expr, list, .. } => {
            expr_mentions_table(expr, table) || list.iter().any(|x| expr_mentions_table(x, table))
        }
        Expr::InSelect { expr, select, .. } => {
            expr_mentions_table(expr, table) || select_mentions_table(select, table)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            expr_mentions_table(expr, table)
                || expr_mentions_table(low, table)
                || expr_mentions_table(high, table)
        }
        Expr::Like { expr, pattern, .. } => {
            expr_mentions_table(expr, table) || expr_mentions_table(pattern, table)
        }
        Expr::Exists(s) | Expr::ScalarSubquery(s) => select_mentions_table(s, table),
        Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|x| expr_mentions_table(x, table)),
    }
}

fn select_mentions_table(s: &starling_sql::ast::SelectStmt, table: &str) -> bool {
    use starling_sql::ast::{SelectItem, TableRef};
    if s.from.iter().any(|fi| match &fi.table {
        TableRef::Base(t) => t == table,
        TableRef::Transition(_) => false,
    }) {
        return true;
    }
    let item_hit = s.items.iter().any(|i| match i {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr_mentions_table(expr, table),
    });
    item_hit
        || s.where_clause
            .as_ref()
            .is_some_and(|w| expr_mentions_table(w, table))
        || s.group_by.iter().any(|e| expr_mentions_table(e, table))
        || s.having
            .as_ref()
            .is_some_and(|h| expr_mentions_table(h, table))
        || s.order_by
            .iter()
            .any(|o| expr_mentions_table(&o.expr, table))
}

/// Maps `(who, whom)` names onto the `(a, b)` definitions.
fn resolve_pair<'d>(
    who: &str,
    whom: &str,
    a: &'d RuleDef,
    b: &'d RuleDef,
) -> Option<(&'d RuleDef, &'d RuleDef)> {
    if who == a.name && whom == b.name {
        Some((a, b))
    } else if who == b.name && whom == a.name {
        Some((b, a))
    } else {
        None
    }
}

/// Example 2: every pair of update actions on `table` touching `col` must
/// have provably disjoint `WHERE` target sets.
fn updates_disjoint(a: &RuleDef, b: &RuleDef, table: &str, col: &str) -> bool {
    let relevant = |def: &RuleDef| -> Vec<(Option<Expr>, bool)> {
        def.actions
            .iter()
            .filter_map(|act| match act {
                Action::Update(u) if u.table == table && u.sets.iter().any(|(c, _)| c == col) => {
                    Some((u.where_clause.clone(), true))
                }
                _ => None,
            })
            .collect()
    };
    let ua = relevant(a);
    let ub = relevant(b);
    if ua.is_empty() || ub.is_empty() {
        // The reason came from somewhere we cannot see (stale name match);
        // keep it.
        return false;
    }
    ua.iter().all(|(wa, _)| {
        ub.iter().all(|(wb, _)| match (wa, wb) {
            (Some(x), Some(y)) => predicates_disjoint(x, y),
            _ => false, // an unguarded update touches everything
        })
    })
}

/// Example 1: every constant row inserted by `ins` must fail the predicate
/// of every delete/update action of `w` on `table`.
fn inserts_never_selected(ins: &RuleDef, w: &RuleDef, table: &str, catalog: &Catalog) -> bool {
    let Ok(schema) = catalog.table(table) else {
        return false;
    };
    // Collect the constant rows `ins` puts into `table`; bail out on
    // non-constant sources.
    let mut rows: Vec<Row> = Vec::new();
    let mut saw_insert = false;
    for act in &ins.actions {
        let Action::Insert(stmt) = act else { continue };
        if stmt.table != table {
            continue;
        }
        saw_insert = true;
        let InsertSource::Values(tuples) = &stmt.source else {
            return false; // INSERT ... SELECT: not constant
        };
        for tuple in tuples {
            let mut row = vec![Value::Null; schema.arity()];
            let indices: Vec<usize> = match &stmt.columns {
                None => (0..schema.arity()).collect(),
                Some(cols) => match cols
                    .iter()
                    .map(|c| schema.column_index(c))
                    .collect::<Option<Vec<_>>>()
                {
                    Some(ix) => ix,
                    None => return false,
                },
            };
            if indices.len() != tuple.len() {
                return false;
            }
            for (idx, e) in indices.iter().zip(tuple) {
                match const_value(e) {
                    Some(v) => row[*idx] = v,
                    None => return false,
                }
            }
            rows.push(row);
        }
    }
    if !saw_insert || rows.is_empty() {
        return false;
    }

    // Every write action of `w` on `table` must provably miss every row.
    let mut saw_write = false;
    for act in &w.actions {
        let wc = match act {
            Action::Delete(d) if d.table == table => &d.where_clause,
            Action::Update(u) if u.table == table => &u.where_clause,
            _ => continue,
        };
        saw_write = true;
        let Some(pred) = wc else {
            return false; // unguarded write touches the inserted rows
        };
        if !is_simple_predicate(pred) {
            return false;
        }
        for row in &rows {
            if !row_fails_predicate(pred, table, row, schema, catalog) {
                return false;
            }
        }
    }
    saw_write
}

/// A literal, possibly negated.
fn const_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Neg(inner) => match const_value(inner)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether the predicate only involves the row's own columns, literals,
/// and pure operators — i.e. can be evaluated on a candidate row without a
/// database state.
fn is_simple_predicate(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Column(_) => true,
        Expr::Binary { lhs, rhs, .. } => is_simple_predicate(lhs) && is_simple_predicate(rhs),
        Expr::Neg(x) | Expr::Not(x) => is_simple_predicate(x),
        Expr::IsNull { expr, .. } => is_simple_predicate(expr),
        Expr::InList { expr, list, .. } => {
            is_simple_predicate(expr) && list.iter().all(is_simple_predicate)
        }
        Expr::Between {
            expr, low, high, ..
        } => is_simple_predicate(expr) && is_simple_predicate(low) && is_simple_predicate(high),
        Expr::Like { expr, pattern, .. } => {
            is_simple_predicate(expr) && is_simple_predicate(pattern)
        }
        Expr::Exists(_)
        | Expr::ScalarSubquery(_)
        | Expr::InSelect { .. }
        | Expr::Aggregate { .. } => false,
    }
}

/// Evaluates a simple predicate against one candidate row; `true` means the
/// row provably does NOT satisfy it (evaluates to false or unknown).
fn row_fails_predicate(
    pred: &Expr,
    table: &str,
    row: &Row,
    schema: &starling_storage::TableSchema,
    catalog: &Catalog,
) -> bool {
    // A scratch database supplies the catalog for column resolution; the
    // predicate is simple, so no table contents are consulted.
    let mut db = Database::new();
    let _ = db.create_table(schema.clone());
    let _ = catalog; // catalog only needed to have produced `schema`
    let ctx = EvalCtx {
        db: &db,
        transitions: None,
    };
    let mut env = Env::new(&ctx);
    env.push(vec![starling_sql::eval::env::RowBinding {
        name: table.to_owned(),
        table: table.to_owned(),
        row: row.clone(),
    }]);
    match starling_sql::eval::expr::eval_bool(pred, &mut env) {
        Ok(v) => !starling_sql::eval::expr::is_true(&v),
        Err(_) => false, // evaluation failure: keep the reason
    }
}

// ---------------------------------------------------------------------
// Interval-based disjointness of simple predicates (example 2).
// ---------------------------------------------------------------------

/// A closed/open interval over [`Value`]s under SQL comparison.
#[derive(Clone, Debug)]
struct Interval {
    lo: Option<(Value, bool)>, // (bound, inclusive)
    hi: Option<(Value, bool)>,
}

impl Interval {
    fn full() -> Self {
        Interval { lo: None, hi: None }
    }

    fn point(v: Value) -> Self {
        Interval {
            lo: Some((v.clone(), true)),
            hi: Some((v, true)),
        }
    }

    fn tighten_lo(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.lo {
            None => true,
            Some((cur, cur_inc)) => match v.sql_cmp(cur) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Equal) => *cur_inc && !inclusive,
                _ => false,
            },
        };
        if replace {
            self.lo = Some((v, inclusive));
        }
    }

    fn tighten_hi(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.hi {
            None => true,
            Some((cur, cur_inc)) => match v.sql_cmp(cur) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Equal) => *cur_inc && !inclusive,
                _ => false,
            },
        };
        if replace {
            self.hi = Some((v, inclusive));
        }
    }

    /// Whether two intervals cannot share a point.
    fn disjoint(&self, other: &Interval) -> bool {
        fn above(hi: &Option<(Value, bool)>, lo: &Option<(Value, bool)>) -> bool {
            // True when `hi < lo` (no overlap on that side).
            match (hi, lo) {
                (Some((h, hi_inc)), Some((l, lo_inc))) => match h.sql_cmp(l) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Equal) => !(*hi_inc && *lo_inc),
                    _ => false,
                },
                _ => false,
            }
        }
        above(&self.hi, &other.lo) || above(&other.hi, &self.lo)
    }
}

/// Extracts per-column intervals from a conjunction of `col op literal`
/// comparisons (either operand order). Returns `None` for anything else —
/// no proof attempted.
fn extract_intervals(e: &Expr) -> Option<Vec<(String, Interval)>> {
    let mut out: Vec<(String, Interval)> = Vec::new();
    collect_conjuncts(e, &mut out)?;
    Some(out)
}

fn collect_conjuncts(e: &Expr, out: &mut Vec<(String, Interval)>) -> Option<()> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_conjuncts(lhs, out)?;
            collect_conjuncts(rhs, out)
        }
        Expr::Binary { op, lhs, rhs } => {
            let (col, lit, op) = match (&**lhs, &**rhs) {
                (Expr::Column(c), Expr::Literal(v)) => (c.column.clone(), v.clone(), *op),
                (Expr::Literal(v), Expr::Column(c)) => (c.column.clone(), v.clone(), mirror(*op)?),
                _ => return None,
            };
            let slot = match out.iter_mut().find(|(name, _)| *name == col) {
                Some((_, iv)) => iv,
                None => {
                    out.push((col, Interval::full()));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            match op {
                BinOp::Eq => {
                    let p = Interval::point(lit);
                    if let Some((v, inc)) = p.lo.clone() {
                        slot.tighten_lo(v, inc);
                    }
                    if let Some((v, inc)) = p.hi.clone() {
                        slot.tighten_hi(v, inc);
                    }
                }
                BinOp::Lt => slot.tighten_hi(lit, false),
                BinOp::Le => slot.tighten_hi(lit, true),
                BinOp::Gt => slot.tighten_lo(lit, false),
                BinOp::Ge => slot.tighten_lo(lit, true),
                _ => return None, // <>, arithmetic: no interval form
            }
            Some(())
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            else {
                return None;
            };
            let col = c.column.clone();
            let slot = match out.iter_mut().find(|(name, _)| *name == col) {
                Some((_, iv)) => iv,
                None => {
                    out.push((col, Interval::full()));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            slot.tighten_lo(lo.clone(), true);
            slot.tighten_hi(hi.clone(), true);
            Some(())
        }
        _ => None,
    }
}

fn mirror(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

/// Whether two predicates provably select disjoint tuple sets: both are
/// conjunctions of column-vs-literal comparisons, and some common column's
/// intervals are disjoint.
pub fn predicates_disjoint(a: &Expr, b: &Expr) -> bool {
    let (Some(ia), Some(ib)) = (extract_intervals(a), extract_intervals(b)) else {
        return false;
    };
    for (ca, iva) in &ia {
        for (cb, ivb) in &ib {
            if ca == cb && iva.disjoint(ivb) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use starling_sql::parse_expr;

    use super::*;

    fn disjoint(a: &str, b: &str) -> bool {
        predicates_disjoint(&parse_expr(a).unwrap(), &parse_expr(b).unwrap())
    }

    #[test]
    fn equality_constants() {
        assert!(disjoint("k = 1", "k = 2"));
        assert!(!disjoint("k = 1", "k = 1"));
        assert!(disjoint("1 = k", "k = 2"));
        assert!(!disjoint("k = 1", "j = 2")); // different columns
    }

    #[test]
    fn ranges() {
        assert!(disjoint("k < 5", "k > 7"));
        assert!(disjoint("k <= 5", "k > 5"));
        assert!(!disjoint("k <= 5", "k >= 5")); // both include 5
        assert!(disjoint("k between 1 and 3", "k between 4 and 9"));
        assert!(!disjoint("k between 1 and 5", "k between 4 and 9"));
        assert!(disjoint("k > 10", "5 > k"));
    }

    #[test]
    fn conjunctions() {
        assert!(disjoint("k > 0 and k < 3", "k >= 3 and k < 9"));
        assert!(disjoint("a = 1 and k < 3", "k > 4"));
        assert!(!disjoint("a = 1 and k < 3", "k < 2"));
    }

    #[test]
    fn unanalyzable_forms_are_not_disjoint() {
        assert!(!disjoint("k <> 1", "k <> 2"));
        assert!(!disjoint("k = j", "k = 2"));
        assert!(!disjoint("k + 1 = 2", "k = 5"));
        assert!(!disjoint("k = 1 or k = 2", "k = 3"));
    }

    #[test]
    fn string_constants() {
        assert!(disjoint("name = 'a'", "name = 'b'"));
        assert!(!disjoint("name = 'a'", "name = 'a'"));
    }
}
