//! The aggregate analysis report — the output of the "interactive
//! development environment" the paper's introduction envisions.

use std::fmt;

use serde::Serialize;

use crate::confluence::{analyze_confluence, corollary_checks, ConfluenceAnalysis};
use crate::context::AnalysisContext;
use crate::observable::{analyze_observable_determinism, ObservableAnalysis};
use crate::partial::{analyze_partial_confluence, PartialConfluenceAnalysis};
use crate::termination::{analyze_termination, TerminationAnalysis, TerminationVerdict};

/// A complete analysis of a rule set: termination, confluence, observable
/// determinism, and optionally partial confluence for requested tables.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    /// Number of rules analyzed.
    pub rule_count: usize,
    /// Termination (Section 5).
    pub termination: TerminationAnalysis,
    /// Confluence (Section 6).
    pub confluence: ConfluenceAnalysis,
    /// Corollary 6.8/6.10 lint results (always empty when confluence is
    /// accepted; reported for transparency).
    pub corollary_failures: Vec<String>,
    /// Observable determinism (Section 8).
    pub observable: ObservableAnalysis,
    /// Partial confluence per requested table set (Section 7).
    pub partial: Vec<PartialConfluenceAnalysis>,
}

impl AnalysisReport {
    /// Runs the full analysis. `protect` lists table subsets for partial
    /// confluence (each entry one `T'`).
    pub fn run(ctx: &AnalysisContext, protect: &[Vec<String>]) -> Self {
        let termination = analyze_termination(ctx);
        let confluence = analyze_confluence(ctx);
        let corollary_failures = corollary_checks(ctx, &confluence);
        let observable = analyze_observable_determinism(ctx);
        let partial = protect
            .iter()
            .map(|tables| {
                let refs: Vec<&str> = tables.iter().map(String::as_str).collect();
                analyze_partial_confluence(ctx, &refs)
            })
            .collect();
        AnalysisReport {
            rule_count: ctx.len(),
            termination,
            confluence,
            corollary_failures,
            observable,
            partial,
        }
    }

    /// Whether full confluence is guaranteed: the Confluence Requirement
    /// holds *and* termination is guaranteed (Theorem 6.7 needs both).
    pub fn confluence_guaranteed(&self) -> bool {
        self.confluence.requirement_holds() && self.termination.is_guaranteed()
    }

    /// Whether all headline properties are guaranteed.
    pub fn all_guaranteed(&self) -> bool {
        self.termination.is_guaranteed()
            && self.confluence_guaranteed()
            && self.observable.is_guaranteed()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Starling rule analysis ({} rules) ===",
            self.rule_count
        )?;

        // Termination.
        writeln!(f)?;
        match self.termination.verdict {
            TerminationVerdict::Guaranteed => {
                writeln!(f, "TERMINATION: guaranteed (triggering graph is acyclic)")?;
            }
            TerminationVerdict::GuaranteedWithCertificates => {
                writeln!(
                    f,
                    "TERMINATION: guaranteed, relying on {} certificate(s)",
                    self.termination
                        .cycles
                        .iter()
                        .map(|c| c.certificates.len())
                        .sum::<usize>()
                )?;
            }
            TerminationVerdict::MayNotTerminate => {
                writeln!(f, "TERMINATION: MAY NOT TERMINATE")?;
            }
        }
        for cycle in &self.termination.cycles {
            writeln!(
                f,
                "  cycle through: {} [{}]",
                cycle.rules.join(" -> "),
                if cycle.discharged {
                    "discharged"
                } else {
                    "NOT discharged"
                }
            )?;
            for cert in &cycle.certificates {
                match cert {
                    crate::termination::CycleCertificate::User {
                        rule,
                        justification,
                    } => writeln!(f, "    user certificate on `{rule}`: {justification}")?,
                    crate::termination::CycleCertificate::DeleteOnly { rule, tables } => writeln!(
                        f,
                        "    auto: `{rule}` only deletes from {} (action eventually has no effect)",
                        tables.join(", ")
                    )?,
                    crate::termination::CycleCertificate::MonotoneUpdate { rule, column } => {
                        writeln!(
                            f,
                            "    auto: `{rule}` monotonically drives {column} into its bound"
                        )?
                    }
                }
            }
            if !cycle.discharged {
                writeln!(
                    f,
                    "    to discharge: declare terminates <rule> '<justification>' \
                     for a rule on every cycle"
                )?;
            }
        }

        // Confluence.
        writeln!(f)?;
        if self.confluence.requirement_holds() {
            if self.termination.is_guaranteed() {
                writeln!(
                    f,
                    "CONFLUENCE: guaranteed ({} unordered pair(s) checked)",
                    self.confluence.pairs_checked
                )?;
            } else {
                writeln!(
                    f,
                    "CONFLUENCE: requirement holds, but termination is not guaranteed \
                     (Theorem 6.7 needs both)"
                )?;
            }
        } else {
            writeln!(
                f,
                "CONFLUENCE: MAY NOT BE CONFLUENT ({} violation(s))",
                self.confluence.violations.len()
            )?;
            for v in &self.confluence.violations {
                writeln!(
                    f,
                    "  pair ({}, {}): `{}` and `{}` do not commute",
                    v.pair.0, v.pair.1, v.conflict.0, v.conflict.1
                )?;
                for r in &v.reasons {
                    writeln!(f, "    - {r}")?;
                }
                for s in &v.suggestions {
                    writeln!(f, "    fix: {s}")?;
                }
            }
        }

        // Partial confluence.
        for p in &self.partial {
            writeln!(f)?;
            writeln!(
                f,
                "PARTIAL CONFLUENCE w.r.t. {{{}}}: {} (Sig = {{{}}})",
                p.tables.join(", "),
                if p.is_guaranteed() {
                    "guaranteed"
                } else {
                    "MAY NOT HOLD"
                },
                p.significant.join(", ")
            )?;
        }

        // Observable determinism.
        writeln!(f)?;
        if self.observable.is_guaranteed() {
            writeln!(
                f,
                "OBSERVABLE DETERMINISM: guaranteed ({} observable rule(s))",
                self.observable.observable_rules.len()
            )?;
        } else {
            writeln!(
                f,
                "OBSERVABLE DETERMINISM: MAY NOT HOLD (observable rules: {}; Sig(Obs) = {{{}}})",
                self.observable.observable_rules.join(", "),
                self.observable.partial.significant.join(", ")
            )?;
        }

        for c in &self.corollary_failures {
            writeln!(f, "INTERNAL WARNING: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["t", "u"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    #[test]
    fn clean_rule_set_all_green() {
        let c = ctx(
            "create rule a on t when inserted then insert into u values (1) precedes b end;
             create rule b on u when inserted then update u set x = 0 end;",
        );
        let r = AnalysisReport::run(&c, &[]);
        assert!(r.all_guaranteed());
        let text = r.to_string();
        assert!(text.contains("TERMINATION: guaranteed"));
        assert!(text.contains("CONFLUENCE: guaranteed"));
        assert!(text.contains("OBSERVABLE DETERMINISM: guaranteed"));
    }

    #[test]
    fn problematic_rule_set_reported() {
        let c = ctx(
            "create rule p on t when inserted then insert into u values (1) end;
             create rule q on u when inserted then insert into t values (1) end;",
        );
        let r = AnalysisReport::run(&c, &[vec!["t".to_owned()]]);
        assert!(!r.all_guaranteed());
        let text = r.to_string();
        assert!(text.contains("MAY NOT TERMINATE"));
        assert!(text.contains("cycle through: p -> q"));
        assert!(text.contains("MAY NOT BE CONFLUENT"));
        assert!(text.contains("PARTIAL CONFLUENCE"));
        assert!(text.contains("fix: "));
    }

    #[test]
    fn requirement_without_termination_is_not_confluence() {
        // Self-loop rule: no unordered pairs (requirement trivially holds),
        // but termination fails, so confluence is not guaranteed.
        let c = ctx("create rule s on t when inserted then insert into t values (1) end");
        let r = AnalysisReport::run(&c, &[]);
        assert!(r.confluence.requirement_holds());
        assert!(!r.confluence_guaranteed());
        assert!(r.to_string().contains("Theorem 6.7 needs both"));
    }

    #[test]
    fn report_is_serializable() {
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        let c = ctx("create rule a on t when inserted then delete from t end");
        let r = AnalysisReport::run(&c, &[]);
        assert_serialize(&r);
    }
}
