//! The aggregate analysis report — the output of the "interactive
//! development environment" the paper's introduction envisions.

use std::fmt;

use serde::Serialize;

use starling_engine::{ExecGraph, ExploreConfig, Verdict};
use starling_sql::json::{digest_json, Json};

use crate::confluence::{analyze_confluence, corollary_checks, ConfluenceAnalysis};
use crate::context::AnalysisContext;
use crate::observable::{analyze_observable_determinism, ObservableAnalysis};
use crate::partial::{analyze_partial_confluence, PartialConfluenceAnalysis};
use crate::termination::{
    analyze_termination, CycleCertificate, TerminationAnalysis, TerminationVerdict,
};

/// A complete analysis of a rule set: termination, confluence, observable
/// determinism, and optionally partial confluence for requested tables.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    /// Number of rules analyzed.
    pub rule_count: usize,
    /// Termination (Section 5).
    pub termination: TerminationAnalysis,
    /// Confluence (Section 6).
    pub confluence: ConfluenceAnalysis,
    /// Corollary 6.8/6.10 lint results (always empty when confluence is
    /// accepted; reported for transparency).
    pub corollary_failures: Vec<String>,
    /// Observable determinism (Section 8).
    pub observable: ObservableAnalysis,
    /// Partial confluence per requested table set (Section 7).
    pub partial: Vec<PartialConfluenceAnalysis>,
}

impl AnalysisReport {
    /// Runs the full analysis. `protect` lists table subsets for partial
    /// confluence (each entry one `T'`).
    pub fn run(ctx: &AnalysisContext, protect: &[Vec<String>]) -> Self {
        let termination = analyze_termination(ctx);
        let confluence = analyze_confluence(ctx);
        let corollary_failures = corollary_checks(ctx, &confluence);
        let observable = analyze_observable_determinism(ctx);
        let partial = protect
            .iter()
            .map(|tables| {
                let refs: Vec<&str> = tables.iter().map(String::as_str).collect();
                analyze_partial_confluence(ctx, &refs)
            })
            .collect();
        AnalysisReport {
            rule_count: ctx.len(),
            termination,
            confluence,
            corollary_failures,
            observable,
            partial,
        }
    }

    /// Whether full confluence is guaranteed: the Confluence Requirement
    /// holds *and* termination is guaranteed (Theorem 6.7 needs both).
    pub fn confluence_guaranteed(&self) -> bool {
        self.confluence.requirement_holds() && self.termination.is_guaranteed()
    }

    /// Whether all headline properties are guaranteed.
    pub fn all_guaranteed(&self) -> bool {
        self.termination.is_guaranteed()
            && self.confluence_guaranteed()
            && self.observable.is_guaranteed()
    }

    /// The machine-readable report. This is THE serialized shape: both the
    /// CLI's `--json` mode and the server's `analyze` response emit it, so
    /// the two cannot drift.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule_count", Json::from(self.rule_count)),
            ("termination", termination_json(&self.termination)),
            ("confluence", confluence_json(&self.confluence)),
            (
                "confluence_guaranteed",
                Json::from(self.confluence_guaranteed()),
            ),
            ("partial", Json::arr(self.partial.iter().map(partial_json))),
            ("observable", observable_json(&self.observable)),
            (
                "corollary_failures",
                Json::arr(
                    self.corollary_failures
                        .iter()
                        .map(|s| Json::from(s.as_str())),
                ),
            ),
            ("all_guaranteed", Json::from(self.all_guaranteed())),
        ])
    }
}

fn termination_json(t: &TerminationAnalysis) -> Json {
    let verdict = match t.verdict {
        TerminationVerdict::Guaranteed => "guaranteed",
        TerminationVerdict::GuaranteedWithCertificates => "guaranteed_with_certificates",
        TerminationVerdict::MayNotTerminate => "may_not_terminate",
    };
    Json::obj([
        ("verdict", Json::from(verdict)),
        ("guaranteed", Json::from(t.is_guaranteed())),
        (
            "cycles",
            Json::arr(t.cycles.iter().map(|c| {
                Json::obj([
                    (
                        "rules",
                        Json::arr(c.rules.iter().map(|r| Json::from(r.as_str()))),
                    ),
                    ("discharged", Json::from(c.discharged)),
                    (
                        "certificates",
                        Json::arr(c.certificates.iter().map(certificate_json)),
                    ),
                ])
            })),
        ),
    ])
}

fn certificate_json(c: &CycleCertificate) -> Json {
    match c {
        CycleCertificate::User {
            rule,
            justification,
        } => Json::obj([
            ("kind", Json::from("user")),
            ("rule", Json::from(rule.as_str())),
            ("justification", Json::from(justification.as_str())),
        ]),
        CycleCertificate::DeleteOnly { rule, tables } => Json::obj([
            ("kind", Json::from("delete_only")),
            ("rule", Json::from(rule.as_str())),
            (
                "tables",
                Json::arr(tables.iter().map(|t| Json::from(t.as_str()))),
            ),
        ]),
        CycleCertificate::MonotoneUpdate { rule, column } => Json::obj([
            ("kind", Json::from("monotone_update")),
            ("rule", Json::from(rule.as_str())),
            ("column", Json::from(column.as_str())),
        ]),
    }
}

fn confluence_json(c: &ConfluenceAnalysis) -> Json {
    Json::obj([
        ("requirement_holds", Json::from(c.requirement_holds())),
        ("pairs_checked", Json::from(c.pairs_checked)),
        (
            "violations",
            Json::arr(c.violations.iter().map(|v| {
                Json::obj([
                    (
                        "pair",
                        Json::arr([Json::from(v.pair.0.as_str()), Json::from(v.pair.1.as_str())]),
                    ),
                    (
                        "conflict",
                        Json::arr([
                            Json::from(v.conflict.0.as_str()),
                            Json::from(v.conflict.1.as_str()),
                        ]),
                    ),
                    (
                        "reasons",
                        Json::arr(v.reasons.iter().map(|r| Json::from(r.to_string()))),
                    ),
                    (
                        "suggestions",
                        Json::arr(v.suggestions.iter().map(|s| Json::from(s.as_str()))),
                    ),
                ])
            })),
        ),
    ])
}

fn partial_json(p: &PartialConfluenceAnalysis) -> Json {
    Json::obj([
        (
            "tables",
            Json::arr(p.tables.iter().map(|t| Json::from(t.as_str()))),
        ),
        (
            "significant",
            Json::arr(p.significant.iter().map(|r| Json::from(r.as_str()))),
        ),
        ("guaranteed", Json::from(p.is_guaranteed())),
        ("termination", termination_json(&p.termination)),
        ("confluence", confluence_json(&p.confluence)),
    ])
}

fn observable_json(o: &ObservableAnalysis) -> Json {
    Json::obj([
        ("guaranteed", Json::from(o.is_guaranteed())),
        (
            "observable_rules",
            Json::arr(o.observable_rules.iter().map(|r| Json::from(r.as_str()))),
        ),
        (
            "significant",
            Json::arr(o.partial.significant.iter().map(|r| Json::from(r.as_str()))),
        ),
    ])
}

/// Serializes an oracle [`Verdict`] as
/// `{"status": "holds"|"fails"|"inconclusive"|"not_applicable",
///   "reason": <string|null>}`. Shared by the CLI `--json` mode and the
/// server protocol.
pub fn verdict_json(v: Verdict) -> Json {
    let (status, reason) = match v {
        Verdict::Holds => ("holds", None),
        Verdict::Fails => ("fails", None),
        Verdict::Inconclusive(r) => ("inconclusive", Some(r.to_string())),
        Verdict::NotApplicable => ("not_applicable", None),
    };
    Json::obj([
        ("status", Json::from(status)),
        ("reason", Json::from(reason)),
    ])
}

/// The machine-readable summary of an exploration: graph sizes, truncation,
/// the three oracle verdicts, and the distinct final database digests (as
/// fixed-width hex strings — JSON numbers cannot carry a `u64`). Shared by
/// the CLI `explore --json` mode and the server's `explore` response.
pub fn explore_json(g: &ExecGraph, cfg: &ExploreConfig) -> Json {
    Json::obj([
        ("states", Json::from(g.states.len())),
        ("edges", Json::from(g.edges.len())),
        ("final_states", Json::from(g.final_states.len())),
        (
            "truncation",
            Json::from(g.truncation.map(|r| r.to_string())),
        ),
        (
            "verdicts",
            Json::obj([
                ("termination", verdict_json(g.termination_verdict())),
                ("confluence", verdict_json(g.confluence_verdict())),
                (
                    "observable_determinism",
                    verdict_json(g.observable_determinism_verdict(cfg)),
                ),
            ]),
        ),
        (
            "final_db_digests",
            Json::arr(g.final_db_digests().iter().map(|&d| digest_json(d))),
        ),
    ])
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Starling rule analysis ({} rules) ===",
            self.rule_count
        )?;

        // Termination.
        writeln!(f)?;
        match self.termination.verdict {
            TerminationVerdict::Guaranteed => {
                writeln!(f, "TERMINATION: guaranteed (triggering graph is acyclic)")?;
            }
            TerminationVerdict::GuaranteedWithCertificates => {
                writeln!(
                    f,
                    "TERMINATION: guaranteed, relying on {} certificate(s)",
                    self.termination
                        .cycles
                        .iter()
                        .map(|c| c.certificates.len())
                        .sum::<usize>()
                )?;
            }
            TerminationVerdict::MayNotTerminate => {
                writeln!(f, "TERMINATION: MAY NOT TERMINATE")?;
            }
        }
        for cycle in &self.termination.cycles {
            writeln!(
                f,
                "  cycle through: {} [{}]",
                cycle.rules.join(" -> "),
                if cycle.discharged {
                    "discharged"
                } else {
                    "NOT discharged"
                }
            )?;
            for cert in &cycle.certificates {
                match cert {
                    crate::termination::CycleCertificate::User {
                        rule,
                        justification,
                    } => writeln!(f, "    user certificate on `{rule}`: {justification}")?,
                    crate::termination::CycleCertificate::DeleteOnly { rule, tables } => writeln!(
                        f,
                        "    auto: `{rule}` only deletes from {} (action eventually has no effect)",
                        tables.join(", ")
                    )?,
                    crate::termination::CycleCertificate::MonotoneUpdate { rule, column } => {
                        writeln!(
                            f,
                            "    auto: `{rule}` monotonically drives {column} into its bound"
                        )?
                    }
                }
            }
            if !cycle.discharged {
                writeln!(
                    f,
                    "    to discharge: declare terminates <rule> '<justification>' \
                     for a rule on every cycle"
                )?;
            }
        }

        // Confluence.
        writeln!(f)?;
        if self.confluence.requirement_holds() {
            if self.termination.is_guaranteed() {
                writeln!(
                    f,
                    "CONFLUENCE: guaranteed ({} unordered pair(s) checked)",
                    self.confluence.pairs_checked
                )?;
            } else {
                writeln!(
                    f,
                    "CONFLUENCE: requirement holds, but termination is not guaranteed \
                     (Theorem 6.7 needs both)"
                )?;
            }
        } else {
            writeln!(
                f,
                "CONFLUENCE: MAY NOT BE CONFLUENT ({} violation(s))",
                self.confluence.violations.len()
            )?;
            for v in &self.confluence.violations {
                writeln!(
                    f,
                    "  pair ({}, {}): `{}` and `{}` do not commute",
                    v.pair.0, v.pair.1, v.conflict.0, v.conflict.1
                )?;
                for r in &v.reasons {
                    writeln!(f, "    - {r}")?;
                }
                for s in &v.suggestions {
                    writeln!(f, "    fix: {s}")?;
                }
            }
        }

        // Partial confluence.
        for p in &self.partial {
            writeln!(f)?;
            writeln!(
                f,
                "PARTIAL CONFLUENCE w.r.t. {{{}}}: {} (Sig = {{{}}})",
                p.tables.join(", "),
                if p.is_guaranteed() {
                    "guaranteed"
                } else {
                    "MAY NOT HOLD"
                },
                p.significant.join(", ")
            )?;
        }

        // Observable determinism.
        writeln!(f)?;
        if self.observable.is_guaranteed() {
            writeln!(
                f,
                "OBSERVABLE DETERMINISM: guaranteed ({} observable rule(s))",
                self.observable.observable_rules.len()
            )?;
        } else {
            writeln!(
                f,
                "OBSERVABLE DETERMINISM: MAY NOT HOLD (observable rules: {}; Sig(Obs) = {{{}}})",
                self.observable.observable_rules.join(", "),
                self.observable.partial.significant.join(", ")
            )?;
        }

        for c in &self.corollary_failures {
            writeln!(f, "INTERNAL WARNING: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["t", "u"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    #[test]
    fn clean_rule_set_all_green() {
        let c = ctx(
            "create rule a on t when inserted then insert into u values (1) precedes b end;
             create rule b on u when inserted then update u set x = 0 end;",
        );
        let r = AnalysisReport::run(&c, &[]);
        assert!(r.all_guaranteed());
        let text = r.to_string();
        assert!(text.contains("TERMINATION: guaranteed"));
        assert!(text.contains("CONFLUENCE: guaranteed"));
        assert!(text.contains("OBSERVABLE DETERMINISM: guaranteed"));
    }

    #[test]
    fn problematic_rule_set_reported() {
        let c = ctx(
            "create rule p on t when inserted then insert into u values (1) end;
             create rule q on u when inserted then insert into t values (1) end;",
        );
        let r = AnalysisReport::run(&c, &[vec!["t".to_owned()]]);
        assert!(!r.all_guaranteed());
        let text = r.to_string();
        assert!(text.contains("MAY NOT TERMINATE"));
        assert!(text.contains("cycle through: p -> q"));
        assert!(text.contains("MAY NOT BE CONFLUENT"));
        assert!(text.contains("PARTIAL CONFLUENCE"));
        assert!(text.contains("fix: "));
    }

    #[test]
    fn requirement_without_termination_is_not_confluence() {
        // Self-loop rule: no unordered pairs (requirement trivially holds),
        // but termination fails, so confluence is not guaranteed.
        let c = ctx("create rule s on t when inserted then insert into t values (1) end");
        let r = AnalysisReport::run(&c, &[]);
        assert!(r.confluence.requirement_holds());
        assert!(!r.confluence_guaranteed());
        assert!(r.to_string().contains("Theorem 6.7 needs both"));
    }

    #[test]
    fn report_is_serializable() {
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        let c = ctx("create rule a on t when inserted then delete from t end");
        let r = AnalysisReport::run(&c, &[]);
        assert_serialize(&r);
    }
}
