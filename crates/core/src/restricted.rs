//! Analysis under restricted user operations (paper Section 9, third
//! extension).
//!
//! The base analyses assume the user-generated operations initiating rule
//! processing are arbitrary. When it is known that users only perform
//! certain operations on certain tables, only rules *reachable* from those
//! operations can ever be considered: the rules triggered directly by an
//! allowed operation, closed under the `Triggers` relation. Properties are
//! then analyzed over the reachable subset — which "may guarantee
//! properties that otherwise do not hold".

use serde::Serialize;
use starling_storage::Op;

use crate::confluence::{analyze_confluence_of, ConfluenceAnalysis};
use crate::context::AnalysisContext;
use crate::observable::{extend_with_obs, ObservableAnalysis, OBS_TABLE};
use crate::partial::analyze_partial_confluence_of;
use crate::termination::{analyze_termination_indexed, TerminationAnalysis};
use crate::triggering_graph::TriggeringGraph;

/// Rules reachable when user transitions only contain `allowed` operations:
/// rules triggered by an allowed operation, closed under `Triggers`.
pub fn reachable_rules(ctx: &AnalysisContext, allowed: &[Op]) -> Vec<usize> {
    let roots: Vec<usize> = ctx
        .sigs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.triggered_by.iter().any(|op| allowed.contains(op)))
        .map(|(i, _)| i)
        .collect();
    let graph = TriggeringGraph::build(ctx);
    graph.reachable_from(&roots)
}

/// Results of the restricted analyses.
#[derive(Clone, Debug, Serialize)]
pub struct RestrictedAnalysis {
    /// The allowed initial operations, rendered.
    pub allowed: Vec<String>,
    /// Names of the reachable rules.
    pub reachable: Vec<String>,
    /// Termination over the reachable subgraph.
    pub termination: TerminationAnalysis,
    /// Confluence Requirement over the reachable rules.
    pub confluence: ConfluenceAnalysis,
    /// Observable determinism over the reachable rules.
    pub observable: ObservableAnalysis,
}

impl RestrictedAnalysis {
    /// Whether all three properties hold under the restriction.
    pub fn all_guaranteed(&self) -> bool {
        self.termination.is_guaranteed()
            && self.confluence.requirement_holds()
            && self.observable.is_guaranteed()
    }
}

/// Runs all three analyses restricted to user transitions built from
/// `allowed` operations.
pub fn analyze_restricted(ctx: &AnalysisContext, allowed: &[Op]) -> RestrictedAnalysis {
    let reach = reachable_rules(ctx, allowed);

    let graph = TriggeringGraph::build(ctx);
    let sub = graph.subgraph(&reach);
    let termination = analyze_termination_indexed(ctx, sub, Some(&reach));
    let confluence = analyze_confluence_of(ctx, &reach);

    // Observable determinism, restricted: extend with Obs, then run the
    // Sig(Obs) machinery over the reachable subset only.
    let extended = extend_with_obs(ctx);
    let partial = analyze_partial_confluence_of(&extended, &[OBS_TABLE], &reach);
    let observable = ObservableAnalysis {
        observable_rules: reach
            .iter()
            .filter(|&&i| ctx.sigs[i].observable)
            .map(|&i| ctx.name(i).to_owned())
            .collect(),
        partial,
    };

    RestrictedAnalysis {
        allowed: allowed.iter().map(Op::to_string).collect(),
        reachable: reach.iter().map(|&i| ctx.name(i).to_owned()).collect(),
        termination,
        confluence,
        observable,
    }
}

#[cfg(test)]
mod tests {
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use crate::certifications::Certifications;

    use super::*;

    fn ctx(src: &str) -> AnalysisContext {
        let mut cat = Catalog::new();
        for name in ["t", "u", "v"] {
            cat.add_table(
                TableSchema::new(name, vec![ColumnDef::new("x", ValueType::Int)]).unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, Certifications::new())
    }

    const SRC: &str = "create rule ping on t when inserted then insert into u values (1) end;
         create rule pong on u when inserted then insert into t values (1) end;
         create rule quiet on v when deleted then update v set x = 0 end;";

    #[test]
    fn reachability_closure() {
        let c = ctx(SRC);
        // Inserts into t reach ping and (through it) pong.
        let r = reachable_rules(&c, &[Op::Insert("t".into())]);
        assert_eq!(r, vec![0, 1]);
        // Deletes from v reach only quiet.
        let r = reachable_rules(&c, &[Op::Delete("v".into())]);
        assert_eq!(r, vec![2]);
        // Updates of v.x reach nothing (quiet is delete-triggered).
        let r = reachable_rules(&c, &[Op::update("v", "x")]);
        assert!(r.is_empty());
    }

    #[test]
    fn restriction_rescues_termination() {
        let c = ctx(SRC);
        // Unrestricted: ping/pong cycle ⇒ may not terminate.
        let full = crate::termination::analyze_termination(&c);
        assert!(!full.is_guaranteed());
        // Restricted to deletes from v: only `quiet` is reachable; the
        // cycle is unreachable and termination is guaranteed.
        let a = analyze_restricted(&c, &[Op::Delete("v".into())]);
        assert_eq!(a.reachable, vec!["quiet"]);
        assert!(a.termination.is_guaranteed());
        assert!(a.all_guaranteed());
    }

    #[test]
    fn restriction_does_not_hide_reachable_cycles() {
        let c = ctx(SRC);
        let a = analyze_restricted(&c, &[Op::Insert("t".into())]);
        assert_eq!(a.reachable, vec!["ping", "pong"]);
        assert!(!a.termination.is_guaranteed());
    }

    #[test]
    fn restricted_confluence_and_observability() {
        let c = ctx(
            "create rule w1 on t when inserted then update u set x = 1 end;
             create rule w2 on t when inserted then update u set x = 2 end;
             create rule solo on v when deleted then select x from v end;",
        );
        // Unrestricted confluence fails (w1/w2).
        assert!(!crate::confluence::analyze_confluence(&c).requirement_holds());
        // Restricted to deletes from v: only the single observable rule is
        // reachable — everything holds.
        let a = analyze_restricted(&c, &[Op::Delete("v".into())]);
        assert_eq!(a.reachable, vec!["solo"]);
        assert!(a.all_guaranteed());
        assert_eq!(a.observable.observable_rules, vec!["solo"]);
    }
}
