//! Termination analysis (paper Section 5).
//!
//! Theorem 5.1: if the triggering graph is acyclic, rule processing is
//! guaranteed to terminate. When cycles exist, the analyzer isolates them
//! (as strongly connected components) and the user may *certify* rules
//! whose repeated consideration eventually falsifies their condition or
//! nullifies their action. We additionally auto-detect the two special
//! cases the paper lists (§5):
//!
//! * **delete-only** — a rule on the cycle only deletes from tables no
//!   other rule on the cycle inserts into: its action eventually has no
//!   effect;
//! * **monotone-update** — a rule on the cycle monotonically increments
//!   (decrements) a column under an upper (lower) bound in its `WHERE`
//!   clause, and no other rule on the cycle writes that column or inserts
//!   into the table: the bound eventually empties the target set.
//!
//! An SCC is *discharged* when removing its certified rules leaves it
//! acyclic — i.e., every cycle passes through a certified rule, the paper's
//! "on each cycle, there is some rule r such that ...".

use serde::Serialize;
use starling_sql::ast::{Action, BinOp, Expr};
use starling_storage::Op;

use crate::context::AnalysisContext;
use crate::triggering_graph::TriggeringGraph;

/// Why a rule on a cycle is considered safe.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum CycleCertificate {
    /// The user declared `declare terminates <rule> '<justification>'`.
    User {
        /// Certified rule.
        rule: String,
        /// The user's justification.
        justification: String,
    },
    /// Auto-detected delete-only rule (paper §5, first special case).
    DeleteOnly {
        /// Certified rule.
        rule: String,
        /// The tables it deletes from.
        tables: Vec<String>,
    },
    /// Auto-detected bounded monotone update (paper §5, second special
    /// case).
    MonotoneUpdate {
        /// Certified rule.
        rule: String,
        /// `table.column` being monotonically driven into its bound.
        column: String,
    },
}

impl CycleCertificate {
    /// The certified rule's name.
    pub fn rule(&self) -> &str {
        match self {
            CycleCertificate::User { rule, .. }
            | CycleCertificate::DeleteOnly { rule, .. }
            | CycleCertificate::MonotoneUpdate { rule, .. } => rule,
        }
    }
}

/// One cyclic SCC of the triggering graph, with any certificates found.
#[derive(Clone, Debug, Serialize)]
pub struct ProblemCycle {
    /// Names of the rules in the SCC.
    pub rules: Vec<String>,
    /// Certificates applying to rules of this SCC.
    pub certificates: Vec<CycleCertificate>,
    /// Whether the certificates discharge every cycle in the SCC.
    pub discharged: bool,
}

/// Overall verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TerminationVerdict {
    /// The triggering graph is acyclic (Theorem 5.1): unconditionally
    /// guaranteed.
    Guaranteed,
    /// Cycles exist but every one is discharged by a certificate.
    GuaranteedWithCertificates,
    /// At least one cycle is undischarged: rule processing may not
    /// terminate.
    MayNotTerminate,
}

/// The result of termination analysis.
#[derive(Clone, Debug, Serialize)]
pub struct TerminationAnalysis {
    /// The triggering graph.
    pub graph: TriggeringGraph,
    /// The cyclic SCCs (empty iff the graph is acyclic).
    pub cycles: Vec<ProblemCycle>,
    /// The verdict.
    pub verdict: TerminationVerdict,
}

impl TerminationAnalysis {
    /// Whether termination is guaranteed (with or without certificates).
    pub fn is_guaranteed(&self) -> bool {
        self.verdict != TerminationVerdict::MayNotTerminate
    }

    /// The rules on undischarged cycles — the paper's "isolate the rules
    /// responsible for the problem".
    pub fn responsible_rules(&self) -> Vec<&str> {
        self.cycles
            .iter()
            .filter(|c| !c.discharged)
            .flat_map(|c| c.rules.iter().map(String::as_str))
            .collect()
    }
}

/// Runs termination analysis over a context.
pub fn analyze_termination(ctx: &AnalysisContext) -> TerminationAnalysis {
    let graph = TriggeringGraph::build(ctx);
    analyze_termination_of_graph(ctx, graph)
}

/// Termination analysis over a pre-built (possibly restricted) graph whose
/// node indices coincide with `ctx` rule indices.
pub(crate) fn analyze_termination_of_graph(
    ctx: &AnalysisContext,
    graph: TriggeringGraph,
) -> TerminationAnalysis {
    analyze_termination_indexed(ctx, graph, None)
}

/// Core analysis. When `indices` is given, graph node `k` corresponds to
/// context rule `indices[k]` (used for subgraph analyses).
pub(crate) fn analyze_termination_indexed(
    ctx: &AnalysisContext,
    graph: TriggeringGraph,
    indices: Option<&[usize]>,
) -> TerminationAnalysis {
    let to_ctx = |k: usize| indices.map_or(k, |m| m[k]);
    let mut cycles = Vec::new();
    for scc in graph.cyclic_sccs() {
        let ctx_rules: Vec<usize> = scc.iter().map(|&k| to_ctx(k)).collect();
        let mut certificates = Vec::new();
        for (&node, &rule) in scc.iter().zip(&ctx_rules) {
            let name = ctx.name(rule);
            if let Some(justification) = ctx.certs.termination_certificate(name) {
                certificates.push(CycleCertificate::User {
                    rule: name.to_owned(),
                    justification: justification.to_owned(),
                });
            } else if let Some(cert) = auto_certify(ctx, rule, &ctx_rules) {
                certificates.push(cert);
            }
            let _ = node;
        }
        // The SCC is discharged when removing certified rules leaves the
        // SCC subgraph acyclic (every cycle passes through a certificate).
        let certified: Vec<&str> = certificates.iter().map(|c| c.rule()).collect();
        let keep: Vec<usize> = scc
            .iter()
            .copied()
            .filter(|&k| !certified.contains(&graph.names[k].as_str()))
            .collect();
        let discharged = graph.subgraph(&keep).is_acyclic();
        cycles.push(ProblemCycle {
            rules: scc.iter().map(|&k| graph.names[k].clone()).collect(),
            certificates,
            discharged,
        });
    }
    let verdict = if cycles.is_empty() {
        TerminationVerdict::Guaranteed
    } else if cycles.iter().all(|c| c.discharged) {
        TerminationVerdict::GuaranteedWithCertificates
    } else {
        TerminationVerdict::MayNotTerminate
    };
    TerminationAnalysis {
        graph,
        cycles,
        verdict,
    }
}

/// Attempts to auto-certify rule `rule` within the SCC `scc` (context
/// indices) via the paper's §5 special cases.
pub fn auto_certify(ctx: &AnalysisContext, rule: usize, scc: &[usize]) -> Option<CycleCertificate> {
    delete_only_certificate(ctx, rule, scc).or_else(|| monotone_certificate(ctx, rule, scc))
}

fn delete_only_certificate(
    ctx: &AnalysisContext,
    rule: usize,
    scc: &[usize],
) -> Option<CycleCertificate> {
    let sig = &ctx.sigs[rule];
    if sig.performs.is_empty() || !sig.performs.iter().all(Op::is_delete) {
        return None;
    }
    let tables: Vec<String> = sig
        .performs
        .iter()
        .map(|op| op.table().to_owned())
        .collect();
    // No other rule on the cycle may insert into those tables.
    for &other in scc {
        if other == rule {
            continue;
        }
        for op in &ctx.sigs[other].performs {
            if op.is_insert() && tables.iter().any(|t| t == op.table()) {
                return None;
            }
        }
    }
    Some(CycleCertificate::DeleteOnly {
        rule: sig.name.clone(),
        tables,
    })
}

/// Direction of a monotone update.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Increasing,
    Decreasing,
}

fn monotone_certificate(
    ctx: &AnalysisContext,
    rule: usize,
    scc: &[usize],
) -> Option<CycleCertificate> {
    // The rule definition is needed for expression-level matching, and the
    // signature only carries sets — recover the def from the context.
    let def = ctx.rule_def(rule)?;
    // Single action: UPDATE t SET c = c ± k WHERE ... c bounded ...
    let [Action::Update(u)] = def.actions.as_slice() else {
        return None;
    };
    let [(col, set_expr)] = u.sets.as_slice() else {
        return None;
    };
    let dir = monotone_direction(set_expr, col)?;
    let wc = u.where_clause.as_ref()?;
    if !has_bound(wc, col, dir) {
        return None;
    }
    // No other rule on the cycle may write the column (in any direction) or
    // insert into the table.
    let colop = Op::update(u.table.clone(), col.clone());
    let insop = Op::Insert(u.table.clone());
    for &other in scc {
        if other == rule {
            continue;
        }
        let p = &ctx.sigs[other].performs;
        if p.contains(&colop) || p.contains(&insop) {
            return None;
        }
    }
    Some(CycleCertificate::MonotoneUpdate {
        rule: def.name.clone(),
        column: format!("{}.{}", u.table, col),
    })
}

/// Recognizes `c + k` / `c - k` (k a positive literal, either operand
/// order for `+`).
fn monotone_direction(e: &Expr, col: &str) -> Option<Direction> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    let is_col = |x: &Expr| matches!(x, Expr::Column(c) if c.column == col);
    let pos_lit = |x: &Expr| match x {
        Expr::Literal(starling_storage::Value::Int(k)) => *k > 0,
        Expr::Literal(starling_storage::Value::Float(k)) => *k > 0.0,
        _ => false,
    };
    match op {
        BinOp::Add if is_col(lhs) && pos_lit(rhs) => Some(Direction::Increasing),
        BinOp::Add if pos_lit(lhs) && is_col(rhs) => Some(Direction::Increasing),
        BinOp::Sub if is_col(lhs) && pos_lit(rhs) => Some(Direction::Decreasing),
        _ => None,
    }
}

/// Looks for a bound on `col` opposing `dir`, scanning through top-level
/// conjunctions only: `c < K`/`c <= K` for increasing, `c > K`/`c >= K` for
/// decreasing (and the mirrored literal-first forms).
fn has_bound(e: &Expr, col: &str, dir: Direction) -> bool {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => has_bound(lhs, col, dir) || has_bound(rhs, col, dir),
        Expr::Binary { op, lhs, rhs } => {
            let is_col = |x: &Expr| matches!(x, Expr::Column(c) if c.column == col);
            let is_lit = |x: &Expr| matches!(x, Expr::Literal(_));
            let (upper, lower) = match op {
                BinOp::Lt | BinOp::Le => (is_col(lhs) && is_lit(rhs), is_lit(lhs) && is_col(rhs)),
                BinOp::Gt | BinOp::Ge => (is_lit(lhs) && is_col(rhs), is_col(lhs) && is_lit(rhs)),
                _ => (false, false),
            };
            match dir {
                Direction::Increasing => upper,
                Direction::Decreasing => lower,
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::certifications::Certifications;
    use crate::context::AnalysisContext;
    use starling_engine::RuleSet;
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{Catalog, ColumnDef, TableSchema, ValueType};

    use super::*;

    fn ctx(src: &str, tables: &[(&str, &[&str])], certs: Certifications) -> AnalysisContext {
        let mut cat = Catalog::new();
        for (name, cols) in tables {
            cat.add_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        let rs = RuleSet::compile(&defs, &cat).unwrap();
        AnalysisContext::from_ruleset(&rs, certs)
    }

    #[test]
    fn acyclic_is_guaranteed() {
        let a = analyze_termination(&ctx(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on u when inserted then update v set x = 1 end;",
            &[("t", &["x"]), ("u", &["x"]), ("v", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::Guaranteed);
        assert!(a.cycles.is_empty());
        assert!(a.responsible_rules().is_empty());
    }

    #[test]
    fn cycle_flagged_and_isolated() {
        let a = analyze_termination(&ctx(
            "create rule ping on t when inserted then insert into u values (1) end;
             create rule pong on u when inserted then insert into t values (1) end;
             create rule bystander on v when inserted then update v set x = 0 end;",
            &[("t", &["x"]), ("u", &["x"]), ("v", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::MayNotTerminate);
        assert_eq!(a.cycles.len(), 1);
        assert_eq!(a.cycles[0].rules, vec!["ping", "pong"]);
        assert_eq!(a.responsible_rules(), vec!["ping", "pong"]);
    }

    #[test]
    fn user_certificate_discharges() {
        let mut certs = Certifications::new();
        certs.certify_terminates("ping", "u is bounded by invariant");
        let a = analyze_termination(&ctx(
            "create rule ping on t when inserted then insert into u values (1) end;
             create rule pong on u when inserted then insert into t values (1) end;",
            &[("t", &["x"]), ("u", &["x"])],
            certs,
        ));
        assert_eq!(a.verdict, TerminationVerdict::GuaranteedWithCertificates);
        assert!(a.cycles[0].discharged);
        assert!(matches!(
            a.cycles[0].certificates[0],
            CycleCertificate::User { .. }
        ));
    }

    #[test]
    fn delete_only_auto_certificate() {
        // purge only deletes from t; watch updates u. No cycle rule inserts
        // into t, so purge is auto-certified.
        let a = analyze_termination(&ctx(
            "create rule purge on u when updated(x) then delete from t end;
             create rule watch on t when deleted then update u set x = 0 end;",
            &[("t", &["y"]), ("u", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::GuaranteedWithCertificates);
        assert!(matches!(
            a.cycles[0].certificates[0],
            CycleCertificate::DeleteOnly { .. }
        ));
    }

    #[test]
    fn delete_only_blocked_by_cycle_insert() {
        // Same shape, but watch also inserts into t: no certificate.
        let a = analyze_termination(&ctx(
            "create rule purge on u when updated(x) then delete from t end;
             create rule watch on t when deleted then \
               update u set x = 0; insert into t values (1) end;",
            &[("t", &["y"]), ("u", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::MayNotTerminate);
        assert!(a.cycles[0].certificates.is_empty());
    }

    #[test]
    fn monotone_update_auto_certificate() {
        // Self-triggering bounded increment (the paper's second special
        // case: "increments values ... some value is less than 10").
        let a = analyze_termination(&ctx(
            "create rule inc on t when updated(x) then \
               update t set x = x + 1 where x < 10 end",
            &[("t", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::GuaranteedWithCertificates);
        assert!(matches!(
            &a.cycles[0].certificates[0],
            CycleCertificate::MonotoneUpdate { column, .. } if column == "t.x"
        ));
    }

    #[test]
    fn monotone_without_bound_not_certified() {
        let a = analyze_termination(&ctx(
            "create rule inc on t when updated(x) then update t set x = x + 1 end",
            &[("t", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::MayNotTerminate);
    }

    #[test]
    fn monotone_decreasing_with_lower_bound() {
        let a = analyze_termination(&ctx(
            "create rule dec on t when updated(x) then \
               update t set x = x - 2 where x > 0 and x < 100 end",
            &[("t", &["x"])],
            Certifications::new(),
        ));
        assert_eq!(a.verdict, TerminationVerdict::GuaranteedWithCertificates);
    }

    #[test]
    fn monotone_blocked_by_opposing_writer() {
        // dec decrements bounded below, but pump writes the same column:
        // no certificate, cycle stands.
        let a = analyze_termination(&ctx(
            "create rule dec on t when updated(x) then \
               update t set x = x - 1 where x > 0 end;
             create rule pump on t when updated(x) then \
               update t set x = x + 5 where x < 3 end",
            &[("t", &["x"])],
            Certifications::new(),
        ));
        // Both rules form one SCC; each writes t.x so neither gets the
        // monotone certificate.
        assert_eq!(a.verdict, TerminationVerdict::MayNotTerminate);
    }

    #[test]
    fn two_loops_need_two_certificates() {
        // SCC where certifying one rule is not enough: a <-> b and a <-> c.
        let mut certs = Certifications::new();
        certs.certify_terminates("b", "bounded");
        let a1 = analyze_termination(&ctx(
            "create rule a on t when inserted then \
               insert into u values (1); insert into v values (1) end;
             create rule b on u when inserted then insert into t values (1) end;
             create rule c on v when inserted then insert into t values (1) end;",
            &[("t", &["x"]), ("u", &["x"]), ("v", &["x"])],
            certs.clone(),
        ));
        assert_eq!(a1.verdict, TerminationVerdict::MayNotTerminate);
        assert!(!a1.cycles[0].discharged);

        certs.certify_terminates("a", "bounded");
        let a2 = analyze_termination(&ctx(
            "create rule a on t when inserted then \
               insert into u values (1); insert into v values (1) end;
             create rule b on u when inserted then insert into t values (1) end;
             create rule c on v when inserted then insert into t values (1) end;",
            &[("t", &["x"]), ("u", &["x"]), ("v", &["x"])],
            certs,
        ));
        assert_eq!(a2.verdict, TerminationVerdict::GuaranteedWithCertificates);
    }
}
