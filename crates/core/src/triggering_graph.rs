//! The triggering graph `TG_R` (paper Section 5, after \[CW90\]).
//!
//! Nodes are rules; there is an edge `r_i → r_j` iff
//! `r_j ∈ Triggers(r_i)`. Theorem 5.1: if `TG_R` is acyclic, the rules are
//! guaranteed to terminate. Strongly connected components with a cycle are
//! the units the user is asked to certify.

use std::fmt::Write as _;

use serde::Serialize;

use crate::context::AnalysisContext;

/// The triggering graph of a rule set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TriggeringGraph {
    /// Rule names, indexed by rule.
    pub names: Vec<String>,
    /// Adjacency: `succ[i]` are the rules triggered by rule `i`, sorted.
    pub succ: Vec<Vec<usize>>,
}

impl TriggeringGraph {
    /// Builds the graph from an analysis context, via the context's
    /// op-indexed adjacency (O(n + e), not the O(n²) pairwise scan).
    pub fn build(ctx: &AnalysisContext) -> Self {
        TriggeringGraph {
            names: (0..ctx.len()).map(|i| ctx.name(i).to_owned()).collect(),
            succ: ctx.triggers_adjacency().as_ref().clone(),
        }
    }

    /// Recomputes the edges incident to rule `i` after that single rule's
    /// signature changed, leaving every other edge untouched: O(n) rather
    /// than a full rebuild. `ctx` must describe the *updated* rule set
    /// (same rules, same order).
    pub fn update_rule(&mut self, ctx: &AnalysisContext, i: usize) {
        debug_assert_eq!(self.len(), ctx.len());
        self.succ[i] = ctx.triggers(i);
        for q in 0..self.len() {
            if q == i {
                continue;
            }
            let want = ctx.can_trigger(q, i);
            match self.succ[q].binary_search(&i) {
                Ok(pos) if !want => {
                    self.succ[q].remove(pos);
                }
                Err(pos) if want => self.succ[q].insert(pos, i),
                _ => {}
            }
        }
    }

    /// Appends the rule at index `len()` of `ctx` (which must describe the
    /// grown rule set) and wires its in- and out-edges.
    pub fn add_rule(&mut self, ctx: &AnalysisContext) {
        let new = self.len();
        debug_assert_eq!(new + 1, ctx.len());
        self.names.push(ctx.name(new).to_owned());
        self.succ.push(ctx.triggers(new));
        for q in 0..new {
            // `new` is the largest index, so appending keeps lists sorted.
            if ctx.can_trigger(q, new) {
                self.succ[q].push(new);
            }
        }
    }

    /// Removes rule `i`, shifting higher indices down — the result equals
    /// a graph rebuilt from the reduced rule set.
    pub fn remove_rule(&mut self, i: usize) {
        self.names.remove(i);
        self.succ.remove(i);
        for list in &mut self.succ {
            list.retain(|&j| j != i);
            for j in list.iter_mut() {
                if *j > i {
                    *j -= 1;
                }
            }
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Whether the edge `i → j` exists.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.succ[i].contains(&j)
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order. Every node appears in exactly one component.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();

        // Iterative Tarjan with an explicit call stack of (node, child ptr).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            call.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci < self.succ[v].len() {
                    let w = self.succ[v][*ci];
                    *ci += 1;
                    if index[w] == UNSET {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// SCCs that contain a cycle: more than one node, or a single node with
    /// a self-loop. These are exactly the obstructions to Theorem 5.1.
    pub fn cyclic_sccs(&self) -> Vec<Vec<usize>> {
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.has_edge(c[0], c[0]))
            .collect()
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.cyclic_sccs().is_empty()
    }

    /// Restricts the graph to a subset of nodes (used by `Sig(T')`
    /// termination and restricted-operation analysis). Nodes keep their
    /// original indices via the returned mapping.
    pub fn subgraph(&self, keep: &[usize]) -> TriggeringGraph {
        let mut remap = vec![usize::MAX; self.len()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        TriggeringGraph {
            names: keep.iter().map(|&i| self.names[i].clone()).collect(),
            succ: keep
                .iter()
                .map(|&i| {
                    self.succ[i]
                        .iter()
                        .filter(|&&j| remap[j] != usize::MAX)
                        .map(|&j| remap[j])
                        .collect()
                })
                .collect(),
        }
    }

    /// Nodes reachable from `roots` (inclusive), in index order.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(v) = stack.pop() {
            for &w in &self.succ[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        (0..self.len()).filter(|&i| seen[i]).collect()
    }

    /// GraphViz DOT rendering, with cyclic SCCs highlighted.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph triggering {\n  rankdir=LR;\n");
        let cyclic: Vec<Vec<usize>> = self.cyclic_sccs();
        let mut in_cycle = vec![false; self.len()];
        for c in &cyclic {
            for &i in c {
                in_cycle[i] = true;
            }
        }
        for (i, name) in self.names.iter().enumerate() {
            if in_cycle[i] {
                let _ = writeln!(s, "  \"{name}\" [style=filled, fillcolor=\"#ffcccc\"];");
            } else {
                let _ = writeln!(s, "  \"{name}\";");
            }
        }
        for (i, succs) in self.succ.iter().enumerate() {
            for &j in succs {
                let _ = writeln!(s, "  \"{}\" -> \"{}\";", self.names[i], self.names[j]);
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(names: usize, edges: &[(usize, usize)]) -> TriggeringGraph {
        let mut succ = vec![Vec::new(); names];
        for &(a, b) in edges {
            succ[a].push(b);
        }
        TriggeringGraph {
            names: (0..names).map(|i| format!("r{i}")).collect(),
            succ,
        }
    }

    #[test]
    fn acyclic_chain() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert!(g.is_acyclic());
        assert_eq!(g.sccs().len(), 3);
        assert!(g.cyclic_sccs().is_empty());
    }

    #[test]
    fn simple_cycle() {
        let g = graph(3, &[(0, 1), (1, 0), (1, 2)]);
        assert!(!g.is_acyclic());
        let cyc = g.cyclic_sccs();
        assert_eq!(cyc, vec![vec![0, 1]]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(2, &[(0, 0)]);
        assert!(!g.is_acyclic());
        assert_eq!(g.cyclic_sccs(), vec![vec![0]]);
    }

    #[test]
    fn nested_sccs() {
        // Two separate cycles joined by a bridge.
        let g = graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3)]);
        let cyc = g.cyclic_sccs();
        assert_eq!(cyc.len(), 2);
        assert!(cyc.contains(&vec![0, 1]));
        assert!(cyc.contains(&vec![3, 4]));
    }

    #[test]
    fn subgraph_restriction() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert!(!g.is_acyclic());
        // Dropping node 1 breaks the cycle.
        let sub = g.subgraph(&[0, 2, 3]);
        assert!(sub.is_acyclic());
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.names, vec!["r0", "r2", "r3"]);
    }

    #[test]
    fn reachability() {
        let g = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.reachable_from(&[0]), vec![0, 1, 2]);
        assert_eq!(g.reachable_from(&[3]), vec![3, 4]);
        assert_eq!(g.reachable_from(&[2]), vec![2]);
        assert!(g.reachable_from(&[]).is_empty());
    }

    #[test]
    fn dot_output() {
        let g = graph(2, &[(0, 1), (1, 1)]);
        let dot = g.to_dot();
        assert!(dot.contains("\"r0\" -> \"r1\""));
        assert!(dot.contains("fillcolor")); // r1's self-loop highlighted
        assert!(dot.starts_with("digraph"));
    }

    /// Incremental edge maintenance under single-rule add / drop / update
    /// matches a graph rebuilt from scratch on the mutated rule set.
    #[test]
    fn incremental_ops_match_rebuild() {
        use crate::context::tests::ctx_from;
        const TABLES: &[(&str, &[&str])] = &[("t", &["x"]), ("u", &["y"])];
        let base = "create rule a on t when inserted then insert into u values (1) end;
                    create rule b on u when inserted then delete from t end;
                    create rule c on t when deleted then insert into t values (1) end;";
        let ctx = ctx_from(base, TABLES);
        let g0 = TriggeringGraph::build(&ctx);

        // Add a rule (new index is last).
        let grown = ctx_from(
            &format!("{base} create rule d on t when inserted then delete from u end;"),
            TABLES,
        );
        let mut g = g0.clone();
        g.add_rule(&grown);
        assert_eq!(g, TriggeringGraph::build(&grown));

        // Drop rule b (index 1).
        let reduced = ctx_from(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule c on t when deleted then insert into t values (1) end;",
            TABLES,
        );
        let mut g = g0.clone();
        g.remove_rule(1);
        assert_eq!(g, TriggeringGraph::build(&reduced));

        // Redefine rule b in place: new triggering events and action.
        let changed = ctx_from(
            "create rule a on t when inserted then insert into u values (1) end;
             create rule b on t when deleted then insert into t values (2) end;
             create rule c on t when deleted then insert into t values (1) end;",
            TABLES,
        );
        let mut g = g0.clone();
        g.update_rule(&changed, 1);
        assert_eq!(g, TriggeringGraph::build(&changed));
    }

    #[test]
    fn big_cycle_no_stack_overflow() {
        // A long chain then a back edge; iterative Tarjan must handle it.
        let n = 50_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = graph(n, &edges);
        assert_eq!(g.cyclic_sccs().len(), 1);
        assert_eq!(g.cyclic_sccs()[0].len(), n);
    }
}
