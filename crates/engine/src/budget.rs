//! Unified resource budgets for rule processing and the execution-graph
//! oracle, with reason-carrying exhaustion.
//!
//! The paper's analyses are undecidable in general, so every dynamic
//! component is bounded: the [`crate::Processor`] by a consideration count,
//! the [`crate::exec_graph`] explorer by state and path counts, and both by
//! an optional wall-clock deadline. A single [`Budget`] carries all four
//! bounds; when one is exhausted the result says *which one* via
//! [`TruncationReason`], so callers can distinguish "the property fails"
//! from "the oracle ran out of budget before deciding" ([`Verdict`]).

use std::fmt;
use std::time::{Duration, Instant};

/// Why a bounded computation stopped before reaching a definitive answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TruncationReason {
    /// The rule processor hit its consideration limit
    /// ([`Budget::max_considerations`]).
    Considerations,
    /// The explorer hit its distinct-state limit ([`Budget::max_states`]).
    States,
    /// Path enumeration hit its root-to-final path limit
    /// ([`Budget::max_paths`]).
    Paths,
    /// A state's database exceeded the per-state row limit
    /// ([`Budget::max_rows`]) — the rule program grows the database faster
    /// than exploration can bound it (e.g. a self-referencing
    /// `insert ... select` that multiplies rows on every firing).
    Rows,
    /// The wall-clock deadline expired ([`Budget::deadline`]).
    Deadline,
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TruncationReason::Considerations => "consideration budget exhausted",
            TruncationReason::States => "state budget exhausted",
            TruncationReason::Paths => "path budget exhausted",
            TruncationReason::Rows => "row budget exhausted",
            TruncationReason::Deadline => "deadline exceeded",
        })
    }
}

/// Resource bounds shared by the rule processor and the oracle.
///
/// `ExploreConfig` is an alias of this type: exploration reads
/// `max_states` / `max_paths` / `deadline`, the processor reads
/// `max_considerations` / `deadline`. One budget can drive both, so a CLI
/// `--timeout` bounds an entire `analyze`/`explore`/`run` invocation
/// coherently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum rule considerations per processing run.
    pub max_considerations: usize,
    /// Maximum distinct states the explorer expands.
    pub max_states: usize,
    /// Maximum root-to-final paths enumerated for observable streams.
    pub max_paths: usize,
    /// Maximum total rows any single explored state's database may hold.
    /// Guards against rule programs whose actions multiply rows on every
    /// firing (exponential database growth stays within `max_states` while
    /// exhausting memory). The default is effectively unlimited.
    pub max_rows: usize,
    /// Optional wall-clock bound (measured from the start of the run).
    pub deadline: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_considerations: 10_000,
            max_states: 20_000,
            max_paths: 50_000,
            max_rows: usize::MAX,
            deadline: None,
        }
    }
}

impl Budget {
    /// The default budget.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Sets the consideration bound.
    pub fn with_max_considerations(mut self, n: usize) -> Self {
        self.max_considerations = n;
        self
    }

    /// Sets the state bound.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Sets the path bound.
    pub fn with_max_paths(mut self, n: usize) -> Self {
        self.max_paths = n;
        self
    }

    /// Sets the per-state row bound.
    pub fn with_max_rows(mut self, n: usize) -> Self {
        self.max_rows = n;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Starts the wall clock for this budget. Call once at the beginning of
    /// a bounded run, then poll [`BudgetClock::expired`].
    pub fn start_clock(&self) -> BudgetClock {
        BudgetClock {
            deadline_at: self.deadline.map(|d| Instant::now() + d),
        }
    }
}

/// A running wall clock against a budget's deadline.
#[derive(Clone, Copy, Debug)]
pub struct BudgetClock {
    deadline_at: Option<Instant>,
}

impl BudgetClock {
    /// Whether the deadline has passed (always `false` without one).
    pub fn expired(&self) -> bool {
        self.deadline_at.is_some_and(|at| Instant::now() >= at)
    }
}

/// A reason-carrying oracle answer.
///
/// The `Option<bool>` verdict methods on [`crate::ExecGraph`] collapse
/// "budget ran out" and "property undefined here" into `None`; this type
/// keeps them apart so callers (and exit codes) can react differently to
/// "no" and "don't know".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for this initial state.
    Holds,
    /// The property fails for this initial state (a counterexample exists
    /// in the explored graph).
    Fails,
    /// The budget was exhausted before the property could be decided.
    Inconclusive(TruncationReason),
    /// The property is undefined for this execution — e.g. confluence and
    /// observable determinism presume termination, and some execution path
    /// does not terminate.
    NotApplicable,
}

impl Verdict {
    /// Collapses to the legacy `Option<bool>` form (`None` for both
    /// [`Verdict::Inconclusive`] and [`Verdict::NotApplicable`]).
    pub fn to_option(self) -> Option<bool> {
        match self {
            Verdict::Holds => Some(true),
            Verdict::Fails => Some(false),
            Verdict::Inconclusive(_) | Verdict::NotApplicable => None,
        }
    }

    /// Whether this verdict is definitive (`Holds` or `Fails`).
    pub fn is_decided(self) -> bool {
        matches!(self, Verdict::Holds | Verdict::Fails)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => f.write_str("yes"),
            Verdict::Fails => f.write_str("no"),
            Verdict::Inconclusive(r) => write!(f, "inconclusive ({r})"),
            Verdict::NotApplicable => f.write_str("undefined (some execution does not terminate)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_defaults() {
        let b = Budget::new()
            .with_max_considerations(7)
            .with_max_states(8)
            .with_max_paths(9)
            .with_deadline(Duration::from_millis(5));
        assert_eq!(b.max_considerations, 7);
        assert_eq!(b.max_states, 8);
        assert_eq!(b.max_paths, 9);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(Budget::default().deadline, None);
    }

    #[test]
    fn clock_without_deadline_never_expires() {
        let clock = Budget::default().start_clock();
        assert!(!clock.expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let clock = Budget::default()
            .with_deadline(Duration::ZERO)
            .start_clock();
        assert!(clock.expired());
    }

    #[test]
    fn verdict_display_and_option() {
        assert_eq!(Verdict::Holds.to_string(), "yes");
        assert_eq!(Verdict::Fails.to_string(), "no");
        assert_eq!(
            Verdict::Inconclusive(TruncationReason::States).to_string(),
            "inconclusive (state budget exhausted)"
        );
        assert_eq!(
            Verdict::Inconclusive(TruncationReason::Deadline).to_string(),
            "inconclusive (deadline exceeded)"
        );
        assert_eq!(Verdict::Holds.to_option(), Some(true));
        assert_eq!(Verdict::Fails.to_option(), Some(false));
        assert_eq!(Verdict::NotApplicable.to_option(), None);
        assert_eq!(
            Verdict::Inconclusive(TruncationReason::Paths).to_option(),
            None
        );
        assert!(Verdict::Fails.is_decided());
        assert!(!Verdict::NotApplicable.is_decided());
    }
}
