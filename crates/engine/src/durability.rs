//! Durable session state: the write-ahead-log attachment of a
//! [`crate::Session`].
//!
//! A [`Durability`] pairs an open [`WalStore`] with the **last acknowledged
//! state** — the database, rule definitions, and directives as of the last
//! record the log accepted. The invariant the whole layer is built around:
//!
//! > Recovering the store at any moment yields exactly the acknowledged
//! > state (digest *and* full [`Database`] equality, including the tuple-id
//! > allocator), never a half-applied commit.
//!
//! The session persists at commit points by *state diff*, not by op
//! capture: [`CommitDelta::diff`] between the acknowledged base and the
//! post-commit database is the \[WF90\] net effect of the whole transition
//! (user statements plus every triggered rule action, plus DDL, which the
//! transaction snapshot does not cover). Rule-program changes ride in the
//! same record as the re-rendered program text, so a commit is one atomic
//! WAL append.

use starling_sql::ast::Directive;
use starling_sql::RuleDef;
use starling_storage::wal::{CommitDelta, WalStore};
use starling_storage::Database;

/// How many commits accumulate in the log before the session rotates it
/// into a snapshot (overridable per session for tests and drains).
pub(crate) const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

/// The durable attachment of a session. Opaque outside the engine: obtain
/// one via [`crate::Session::open_durable`] or
/// [`crate::Session::persist_to`], and move it between sessions with
/// [`crate::Session::take_durability`] / [`crate::Session::set_durability`]
/// (the server's checkpoint-restore handoff).
pub struct Durability {
    pub(crate) store: WalStore,
    pub(crate) base_db: Database,
    pub(crate) base_defs: Vec<RuleDef>,
    pub(crate) base_directives: Vec<Directive>,
    /// The rule-program text as last persisted (rendered form; comparing
    /// rendered text is how rule-DDL changes are detected).
    pub(crate) rules_text: String,
    pub(crate) commits_since_snapshot: u64,
    pub(crate) snapshot_every: u64,
}

impl Durability {
    /// The last acknowledged database state — what recovery will yield.
    pub fn base_db(&self) -> &Database {
        &self.base_db
    }

    /// The last acknowledged rule definitions.
    pub fn base_defs(&self) -> &[RuleDef] {
        &self.base_defs
    }

    /// The last acknowledged directives.
    pub fn base_directives(&self) -> &[Directive] {
        &self.base_directives
    }

    /// The store directory.
    pub fn dir(&self) -> &std::path::Path {
        self.store.dir()
    }

    /// Renders a rule program (definitions then directives) as re-parsable
    /// script text — the persisted form of the rule state.
    pub(crate) fn render_rules(defs: &[RuleDef], directives: &[Directive]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for d in defs {
            let _ = writeln!(s, "{d};");
        }
        for d in directives {
            let _ = writeln!(s, "{d};");
        }
        s
    }

    /// Appends the delta carrying `base_*` to the given post-state (with
    /// the rules text embedded if it changed), then advances the base. On
    /// `Ok`, the post-state is the acknowledged state.
    pub(crate) fn persist(
        &mut self,
        db: &Database,
        defs: &[RuleDef],
        directives: &[Directive],
    ) -> Result<(), starling_storage::StorageError> {
        let text = Self::render_rules(defs, directives);
        let rules_changed = text != self.rules_text;
        let db_changed = *db != self.base_db;
        if !rules_changed && !db_changed {
            return Ok(());
        }
        let mut delta = CommitDelta::diff(&self.base_db, db);
        if rules_changed {
            delta.rules = Some(text.clone());
        }
        self.store.append_commit(&mut delta)?;
        self.base_db = db.clone();
        self.base_defs = defs.to_vec();
        self.base_directives = directives.to_vec();
        if rules_changed {
            self.rules_text = text;
        }
        self.commits_since_snapshot += 1;
        if self.commits_since_snapshot >= self.snapshot_every {
            // Rotation is an optimization: the commit above is already
            // durable, so a failed snapshot (including an injected
            // SnapshotWrite fault) leaves the WAL authoritative and the
            // commit acknowledged.
            if self.snapshot().is_ok() {
                self.commits_since_snapshot = 0;
            }
        }
        Ok(())
    }

    /// Writes a full snapshot of the acknowledged state and truncates the
    /// log.
    pub(crate) fn snapshot(&mut self) -> Result<(), starling_storage::StorageError> {
        self.store.snapshot(&self.base_db, &self.rules_text)?;
        self.commits_since_snapshot = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.store.dir())
            .field("base_digest", &self.base_db.state_digest())
            .field("rules", &self.base_defs.len())
            .finish()
    }
}
