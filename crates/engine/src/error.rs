//! Engine-layer errors.

use std::fmt;

use starling_sql::SqlError;
use starling_storage::StorageError;

/// Errors raised by rule-set compilation and rule processing.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Error from the SQL layer (parse, validate, eval).
    Sql(SqlError),
    /// Error from the storage layer.
    Storage(StorageError),
    /// Two rules share a name.
    DuplicateRule(String),
    /// A `precedes`/`follows` clause names an unknown rule.
    UnknownRule {
        /// The rule whose clause is bad.
        rule: String,
        /// The name that did not resolve.
        referenced: String,
    },
    /// The user-defined priority relation is cyclic.
    PriorityCycle(Vec<String>),
    /// A statement was executed outside any transaction/session context
    /// where it is meaningful.
    InvalidStatement(String),
}

impl EngineError {
    /// The underlying [`StorageError`], whichever layer wrapped it: storage
    /// failures reach the engine either directly or via the SQL evaluator
    /// ([`SqlError::Storage`]), and callers triaging an abort should not
    /// have to care which.
    pub fn storage_cause(&self) -> Option<&StorageError> {
        match self {
            EngineError::Storage(e) | EngineError::Sql(SqlError::Storage(e)) => Some(e),
            _ => None,
        }
    }

    /// True when the root cause is an injected fault (see
    /// `starling_storage::FaultPlan`), as opposed to a genuine error.
    pub fn is_injected_fault(&self) -> bool {
        self.storage_cause().is_some_and(StorageError::is_injected)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::DuplicateRule(r) => write!(f, "duplicate rule `{r}`"),
            EngineError::UnknownRule { rule, referenced } => write!(
                f,
                "rule `{rule}` references unknown rule `{referenced}` in precedes/follows"
            ),
            EngineError::PriorityCycle(rs) => {
                write!(f, "priority ordering is cyclic through: {}", rs.join(", "))
            }
            EngineError::InvalidStatement(m) => write!(f, "invalid statement: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Sql(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            EngineError::DuplicateRule("r".into()).to_string(),
            "duplicate rule `r`"
        );
        assert_eq!(
            EngineError::UnknownRule {
                rule: "a".into(),
                referenced: "b".into()
            }
            .to_string(),
            "rule `a` references unknown rule `b` in precedes/follows"
        );
        assert!(EngineError::PriorityCycle(vec!["x".into(), "y".into()])
            .to_string()
            .contains("x, y"));
    }
}
