//! The execution-graph model of paper Section 4, built exhaustively.
//!
//! The paper uses execution graphs as a *proof device*; we also build them
//! concretely (for small rule programs) as a **ground-truth oracle**:
//!
//! * **termination** — the explored graph is finite and acyclic iff every
//!   execution sequence from this initial state terminates;
//! * **confluence** — at most one final database state iff the final state
//!   cannot depend on choice order (for this initial state);
//! * **observable determinism** — all root-to-final paths carry the same
//!   observable stream.
//!
//! States are deduplicated by canonical digest of `(D, TR)`; every eligible
//! rule choice is explored from every state. The oracle is *per initial
//! state*: static analysis quantifies over all databases and all user
//! transitions, the oracle checks one — so oracle violations refute a static
//! "guaranteed" verdict, never the converse.

use std::collections::{BTreeSet, HashMap};

use starling_sql::ast::Action;
use starling_sql::eval::{exec_action, ActionOutcome};
use starling_storage::Database;

use crate::budget::{Budget, TruncationReason, Verdict};
use crate::error::EngineError;
use crate::observable::{stream_digest, ObservableEvent};
use crate::ops::TupleOp;
use crate::processor::{consider_fired_rule, rule_fires, EvalMode, StepOutcome};
use crate::ruleset::{RuleId, RuleSet};
use crate::state::ExecState;

/// Exploration bounds: the oracle reads `max_states`, `max_paths`, and
/// `deadline` from a shared [`Budget`].
pub type ExploreConfig = Budget;

/// One recorded choice point: a state at which more than one rule was
/// eligible, so the processor's `Choose` was a genuine decision. States
/// with exactly one eligible rule carry implicit provenance (their sole
/// out-edge) and are never recorded — that is what keeps tracing at
/// near-zero cost on deterministic programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Index of the ambiguous state in [`ExecGraph::states`].
    pub state: usize,
    /// Canonical digest of that state (`StateNode::digest`).
    pub state_digest: u64,
    /// Index into [`DecisionLog::alt_sets`] of the interned eligible set.
    pub alt_set: usize,
}

/// Why-provenance side channel recorded during a traced exploration.
///
/// The log never feeds back into exploration: a traced run produces an
/// [`ExecGraph`] structurally identical to the untraced one (asserted by
/// tests). Eligible sets are interned — rule programs tend to reach the
/// same ambiguous frontier from many states, so each distinct set is
/// stored once and choice points reference it by index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionLog {
    /// Interned eligible-rule sets, in first-appearance order.
    pub alt_sets: Vec<Vec<RuleId>>,
    /// One record per ambiguous expanded state, in expansion order.
    pub choice_points: Vec<ChoicePoint>,
    /// Total states expanded (ambiguous or not).
    pub expanded: usize,
    /// `alt_sets` index by eligible set, for interning.
    intern: HashMap<Vec<RuleId>, usize>,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        DecisionLog::default()
    }

    /// Records the expansion of state `state` (digest `digest`) with the
    /// given eligible set. Only ambiguous states (more than one eligible
    /// rule) produce a [`ChoicePoint`].
    fn record(&mut self, state: usize, digest: u64, eligible: &[RuleId]) {
        self.expanded += 1;
        if eligible.len() <= 1 {
            return;
        }
        let alt_set = match self.intern.get(eligible) {
            Some(&i) => i,
            None => {
                let i = self.alt_sets.len();
                self.alt_sets.push(eligible.to_vec());
                self.intern.insert(eligible.to_vec(), i);
                i
            }
        };
        self.choice_points.push(ChoicePoint {
            state,
            state_digest: digest,
            alt_set,
        });
    }

    /// The eligible set of a recorded choice point.
    pub fn alternatives(&self, cp: &ChoicePoint) -> &[RuleId] {
        &self.alt_sets[cp.alt_set]
    }

    /// Number of recorded (ambiguous) choice points.
    pub fn ambiguous(&self) -> usize {
        self.choice_points.len()
    }
}

/// One node of the execution graph.
#[derive(Clone, Debug, PartialEq)]
pub struct StateNode {
    /// Canonical digest of `(D, TR)`.
    pub digest: u64,
    /// Digest of the database component alone.
    pub db_digest: u64,
    /// Rules triggered in this state.
    pub triggered: Vec<RuleId>,
    /// Outgoing edge indices.
    pub out_edges: Vec<usize>,
    /// Whether this is a final state (no triggered rules).
    pub is_final: bool,
}

/// One edge: the consideration of a rule.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeInfo {
    /// Source state index.
    pub from: usize,
    /// Target state index.
    pub to: usize,
    /// The rule considered.
    pub rule: RuleId,
    /// Whether its condition held and its action ran.
    pub fired: bool,
    /// Whether the action rolled back.
    pub rolled_back: bool,
    /// Observable events emitted along this edge.
    pub observables: Vec<ObservableEvent>,
    /// The abstract operations `O'` executed along this edge (Lemma 4.1).
    pub ops: std::collections::BTreeSet<starling_storage::Op>,
}

/// A fully explored execution graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecGraph {
    /// States, index 0 is the initial state.
    pub states: Vec<StateNode>,
    /// Edges.
    pub edges: Vec<EdgeInfo>,
    /// Indices of final states.
    pub final_states: Vec<usize>,
    /// Final database states (one per final state index). These are
    /// copy-on-write handles: keeping every final database alive costs
    /// refcounts, not copies.
    pub final_dbs: Vec<(usize, Database)>,
    /// `Some` when exploration stopped early (state budget or deadline);
    /// the graph is then a partial prefix and all oracle verdicts become
    /// inconclusive, carrying this reason.
    pub truncation: Option<TruncationReason>,
}

impl ExecGraph {
    /// Whether exploration stopped before exhausting the state space.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }
    /// Whether the graph contains a directed cycle (⇒ an infinite execution
    /// path exists ⇒ nontermination is possible).
    pub fn has_cycle(&self) -> bool {
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.states.len()];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..self.states.len() {
            if color[root] != Color::White {
                continue;
            }
            color[root] = Color::Gray;
            stack.push((root, 0));
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.states[node].out_edges.len() {
                    let e = self.states[node].out_edges[*next];
                    *next += 1;
                    let to = self.edges[e].to;
                    match color[to] {
                        Color::Gray => return true,
                        Color::White => {
                            color[to] = Color::Gray;
                            stack.push((to, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Reason-carrying oracle verdict: does every execution sequence
    /// terminate? [`Verdict::Inconclusive`] when exploration was truncated.
    pub fn termination_verdict(&self) -> Verdict {
        match self.truncation {
            Some(r) => Verdict::Inconclusive(r),
            None if self.has_cycle() => Verdict::Fails,
            None => Verdict::Holds,
        }
    }

    /// Oracle verdict: does every execution sequence terminate?
    /// `None` when the exploration was truncated (see
    /// [`Self::termination_verdict`] for the reason).
    pub fn terminates(&self) -> Option<bool> {
        self.termination_verdict().to_option()
    }

    /// Distinct final database digests.
    ///
    /// Reads the `db_digest` cached on each [`StateNode`] at discovery
    /// time — no database is re-hashed.
    pub fn final_db_digests(&self) -> BTreeSet<u64> {
        self.final_states
            .iter()
            .map(|&i| self.states[i].db_digest)
            .collect()
    }

    /// Distinct digests of a *subset* of tables in final states (partial
    /// confluence, Section 7).
    ///
    /// Combines the per-table digest caches maintained by the storage
    /// layer: O(subset size) per final state, independent of row counts.
    pub fn final_table_digests(&self, tables: &[&str]) -> BTreeSet<u64> {
        self.final_dbs
            .iter()
            .map(|(_, db)| db.digest_of_tables(tables))
            .collect()
    }

    /// Reason-carrying verdict: is this execution confluent (unique final
    /// database state)? [`Verdict::NotApplicable`] when some path does not
    /// terminate (confluence per the paper presumes termination);
    /// [`Verdict::Inconclusive`] when exploration was truncated.
    pub fn confluence_verdict(&self) -> Verdict {
        match self.termination_verdict() {
            Verdict::Holds if self.final_db_digests().len() <= 1 => Verdict::Holds,
            Verdict::Holds => Verdict::Fails,
            Verdict::Fails => Verdict::NotApplicable,
            v => v,
        }
    }

    /// Oracle verdict: is this execution confluent (unique final database
    /// state)? `None` when truncated or when some path does not terminate
    /// (see [`Self::confluence_verdict`] to tell those apart).
    pub fn confluent(&self) -> Option<bool> {
        self.confluence_verdict().to_option()
    }

    /// Reason-carrying verdict for partial confluence with respect to
    /// `tables` (Section 7).
    pub fn partial_confluence_verdict(&self, tables: &[&str]) -> Verdict {
        match self.termination_verdict() {
            Verdict::Holds if self.final_table_digests(tables).len() <= 1 => Verdict::Holds,
            Verdict::Holds => Verdict::Fails,
            Verdict::Fails => Verdict::NotApplicable,
            v => v,
        }
    }

    /// Oracle verdict for partial confluence with respect to `tables`.
    pub fn partially_confluent(&self, tables: &[&str]) -> Option<bool> {
        self.partial_confluence_verdict(tables).to_option()
    }

    /// All distinct observable streams over root-to-final paths, as
    /// order-sensitive digests — or the [`Verdict`] explaining why they
    /// cannot be enumerated: inconclusive (truncated exploration or path
    /// budget exhausted) or not applicable (cyclic graph: infinitely many
    /// paths).
    pub fn try_observable_streams(&self, cfg: &ExploreConfig) -> Result<BTreeSet<u64>, Verdict> {
        if let Some(r) = self.truncation {
            return Err(Verdict::Inconclusive(r));
        }
        if self.has_cycle() {
            return Err(Verdict::NotApplicable);
        }
        let mut streams = BTreeSet::new();
        let mut paths = 0usize;
        // DFS over paths, carrying the stream so far.
        let mut stack: Vec<(usize, Vec<ObservableEvent>)> = vec![(0, Vec::new())];
        while let Some((node, stream)) = stack.pop() {
            if self.states[node].is_final {
                paths += 1;
                if paths > cfg.max_paths {
                    return Err(Verdict::Inconclusive(TruncationReason::Paths));
                }
                streams.insert(stream_digest(&stream));
                continue;
            }
            for &e in &self.states[node].out_edges {
                let edge = &self.edges[e];
                let mut s = stream.clone();
                s.extend(edge.observables.iter().cloned());
                stack.push((edge.to, s));
            }
        }
        Ok(streams)
    }

    /// All distinct observable streams over root-to-final paths, as
    /// order-sensitive digests. `None` if the graph has a cycle, was
    /// truncated, or the path bound was exceeded (see
    /// [`Self::try_observable_streams`] for which).
    pub fn observable_streams(&self, cfg: &ExploreConfig) -> Option<BTreeSet<u64>> {
        self.try_observable_streams(cfg).ok()
    }

    /// Reason-carrying verdict: observably deterministic?
    pub fn observable_determinism_verdict(&self, cfg: &ExploreConfig) -> Verdict {
        match self.try_observable_streams(cfg) {
            Ok(s) if s.len() <= 1 => Verdict::Holds,
            Ok(_) => Verdict::Fails,
            Err(v) => v,
        }
    }

    /// Oracle verdict: observably deterministic? `None` under the same
    /// conditions as [`Self::observable_streams`].
    pub fn observably_deterministic(&self, cfg: &ExploreConfig) -> Option<bool> {
        self.observable_determinism_verdict(cfg).to_option()
    }

    /// GraphViz DOT rendering of the execution graph: nodes are states
    /// (final states double-circled, distinct final DB states color-coded),
    /// edges are rule considerations (dashed when the condition was false,
    /// red on rollback).
    pub fn to_dot(&self, rules: &RuleSet) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph execution {\n  rankdir=TB;\n");
        let final_digests: Vec<u64> = {
            let mut ds: Vec<u64> = self
                .final_states
                .iter()
                .map(|&i| self.states[i].db_digest)
                .collect();
            ds.sort_unstable();
            ds.dedup();
            ds
        };
        let palette = ["#cce5ff", "#ffd6cc", "#d6ffcc", "#f0ccff", "#fff3cc"];
        for (i, st) in self.states.iter().enumerate() {
            if st.is_final {
                let db_digest = st.db_digest;
                let color = final_digests
                    .iter()
                    .position(|&d| d == db_digest)
                    .map(|k| palette[k % palette.len()])
                    .unwrap_or("#ffffff");
                let _ = writeln!(
                    s,
                    "  s{i} [shape=doublecircle, style=filled, fillcolor=\"{color}\", label=\"S{i}\"];"
                );
            } else {
                let _ = writeln!(s, "  s{i} [shape=circle, label=\"S{i}\"];");
            }
        }
        for e in &self.edges {
            let name = rules.get(e.rule).name();
            let style = if e.rolled_back {
                ", color=red"
            } else if !e.fired {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(s, "  s{} -> s{} [label=\"{name}\"{style}];", e.from, e.to);
        }
        s.push_str("}\n");
        s
    }
}

/// Applies user actions to a database, returning the resulting operations
/// (the initial transition). The caller's `db` is mutated.
pub fn apply_user_actions(
    db: &mut Database,
    actions: &[Action],
) -> Result<Vec<TupleOp>, EngineError> {
    let mut ops = Vec::new();
    for a in actions {
        match exec_action(a, db, None)? {
            ActionOutcome::Effects(fx) => ops.extend(fx.into_iter().map(TupleOp::from)),
            ActionOutcome::Rows(_) => {}
            ActionOutcome::Rollback => {
                return Err(EngineError::InvalidStatement(
                    "rollback in the initial transition".into(),
                ))
            }
        }
    }
    Ok(ops)
}

/// Exhaustively explores rule processing from an initial state.
///
/// * `base_db` — the database at transaction start (rollback target);
/// * `user_actions` — the user-generated statements creating the initial
///   transition.
pub fn explore(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
) -> Result<ExecGraph, EngineError> {
    explore_with_mode(rules, base_db, user_actions, cfg, EvalMode::default())
}

/// [`explore`] with an explicit [`EvalMode`] instead of the environment
/// default — the differential tests run the oracle under both modes in one
/// process and assert the graphs are identical.
pub fn explore_with_mode(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
    mode: EvalMode,
) -> Result<ExecGraph, EngineError> {
    let mut db = base_db.clone();
    let ops = apply_user_actions(&mut db, user_actions)?;
    explore_impl(rules, base_db, db, &ops, cfg, false, mode, None)
}

/// [`explore`] with why-provenance recording: alongside the graph, returns
/// the [`DecisionLog`] of choice points encountered during exploration.
///
/// The returned graph is identical to the untraced [`explore`] result —
/// recording happens in the sequential merge loop and never influences
/// expansion order, state numbering, or truncation.
pub fn explore_traced(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
) -> Result<(ExecGraph, DecisionLog), EngineError> {
    explore_traced_with_mode(rules, base_db, user_actions, cfg, EvalMode::default())
}

/// [`explore_traced`] with an explicit [`EvalMode`].
pub fn explore_traced_with_mode(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
    mode: EvalMode,
) -> Result<(ExecGraph, DecisionLog), EngineError> {
    let mut db = base_db.clone();
    let ops = apply_user_actions(&mut db, user_actions)?;
    let mut log = DecisionLog::new();
    let graph = explore_impl(rules, base_db, db, &ops, cfg, false, mode, Some(&mut log))?;
    Ok((graph, log))
}

/// [`explore`], expanding each BFS level across threads.
///
/// The resulting graph — state numbering, edge order, truncation, every
/// digest set — is **byte-identical** to the sequential [`explore`]
/// (asserted by tests): levels are merged into the graph in the same
/// `(parent index, rule id)` order the sequential explorer produces, and
/// expanding one state depends only on that state, never on the graph built
/// so far. The deadline budget is the one exception — wall-clock truncation
/// cuts wherever the clock expires in either mode.
///
/// Falls back to sequential expansion when a fault plan is installed
/// (injection counters are shared across snapshots, so expansion *order*
/// decides which operation dies) and for small levels (thread dispatch
/// costs more than the work).
pub fn explore_parallel(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
) -> Result<ExecGraph, EngineError> {
    let mut db = base_db.clone();
    let ops = apply_user_actions(&mut db, user_actions)?;
    explore_from_ops_parallel(rules, base_db, db, &ops, cfg)
}

/// [`explore_parallel`] with why-provenance recording (see
/// [`explore_traced`]). Recording lives in the sequential merge loop, so
/// the log is byte-identical across parallel and sequential exploration.
pub fn explore_traced_parallel(
    rules: &RuleSet,
    base_db: &Database,
    user_actions: &[Action],
    cfg: &ExploreConfig,
) -> Result<(ExecGraph, DecisionLog), EngineError> {
    let mut db = base_db.clone();
    let ops = apply_user_actions(&mut db, user_actions)?;
    let mut log = DecisionLog::new();
    let graph = explore_impl(
        rules,
        base_db,
        db,
        &ops,
        cfg,
        true,
        EvalMode::default(),
        Some(&mut log),
    )?;
    Ok((graph, log))
}

/// Exploration entry point when the initial transition is already available
/// as operations applied to `db`.
pub fn explore_from_ops(
    rules: &RuleSet,
    base_db: &Database,
    db: Database,
    initial_ops: &[TupleOp],
    cfg: &ExploreConfig,
) -> Result<ExecGraph, EngineError> {
    explore_impl(
        rules,
        base_db,
        db,
        initial_ops,
        cfg,
        false,
        EvalMode::default(),
        None,
    )
}

/// [`explore_from_ops`] with level-parallel expansion (see
/// [`explore_parallel`] for the determinism contract).
pub fn explore_from_ops_parallel(
    rules: &RuleSet,
    base_db: &Database,
    db: Database,
    initial_ops: &[TupleOp],
    cfg: &ExploreConfig,
) -> Result<ExecGraph, EngineError> {
    explore_impl(
        rules,
        base_db,
        db,
        initial_ops,
        cfg,
        true,
        EvalMode::default(),
        None,
    )
}

/// One expanded edge awaiting its merge into the graph: the rule
/// considered, the successor state, and the step record.
type Expansion = (RuleId, ExecState, StepOutcome);

/// Expands every eligible rule choice from `src`. Pure with respect to the
/// graph: the result depends only on `(src, eligible, rules, base_db)`,
/// which is what makes level-parallel expansion safe.
fn expand_state(
    rules: &RuleSet,
    src: &ExecState,
    eligible: &[RuleId],
    base_db: &Database,
    mode: EvalMode,
) -> Result<Vec<Expansion>, EngineError> {
    let mut out = Vec::with_capacity(eligible.len());
    for &rule in eligible {
        // Deciding whether the rule fires *before* touching the successor
        // keeps non-firing edges on the cheap path: their successor differs
        // from the source only in the considered rule's pending transition,
        // so a copy-on-write clone plus `reset_pending` is the whole edge —
        // no binding re-derivation, no action machinery.
        let fires = rule_fires(rules, src, rule, mode)?;
        let mut next = src.clone();
        let step = if fires {
            consider_fired_rule(rules, &mut next, rule, base_db, mode)?
        } else {
            next.reset_pending(rule);
            StepOutcome::unfired()
        };
        out.push((rule, next, step));
    }
    Ok(out)
}

/// Levels at least this large are dispatched across threads in parallel
/// mode; smaller levels expand inline (thread dispatch would dominate).
const PARALLEL_MIN_LEVEL: usize = 8;

#[allow(clippy::too_many_arguments)]
fn explore_impl(
    rules: &RuleSet,
    base_db: &Database,
    db: Database,
    initial_ops: &[TupleOp],
    cfg: &ExploreConfig,
    parallel: bool,
    mode: EvalMode,
    mut trace: Option<&mut DecisionLog>,
) -> Result<ExecGraph, EngineError> {
    // Fault-plan injection counters are shared across snapshots and advance
    // on every observed operation, so expansion *order* decides which
    // operation dies: with a plan installed, always run sequentially.
    let parallel = parallel && base_db.fault_state().is_none() && db.fault_state().is_none();
    let workers = if parallel {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        1
    };

    let initial = ExecState::new(db, rules.len(), initial_ops);
    let clock = cfg.start_clock();

    let mut graph = ExecGraph {
        states: Vec::new(),
        edges: Vec::new(),
        final_states: Vec::new(),
        final_dbs: Vec::new(),
        truncation: None,
    };
    // digest -> state index. Digests are already uniformly distributed, so
    // a hash index beats an ordered map; iteration order is never observed.
    let mut index: HashMap<u64, usize> = HashMap::new();
    // Concrete states kept alongside (needed to expand).
    let mut concrete: Vec<ExecState> = Vec::new();
    // The BFS frontier under construction: states discovered while merging
    // level L form level L+1, in discovery order (the sequential explorer's
    // queue order).
    let mut frontier: Vec<usize> = Vec::new();

    let add_state = |st: ExecState,
                     graph: &mut ExecGraph,
                     index: &mut HashMap<u64, usize>,
                     concrete: &mut Vec<ExecState>,
                     frontier: &mut Vec<usize>,
                     rules: &RuleSet|
     -> usize {
        let digest = st.digest();
        if let Some(&i) = index.get(&digest) {
            return i;
        }
        let triggered = st.triggered(rules);
        let i = graph.states.len();
        let is_final = triggered.is_empty();
        graph.states.push(StateNode {
            digest,
            db_digest: st.db.state_digest(),
            triggered,
            out_edges: Vec::new(),
            is_final,
        });
        if is_final {
            graph.final_states.push(i);
            // A copy-on-write handle: refcount bump, not a copy.
            graph.final_dbs.push((i, st.db.clone()));
        }
        index.insert(digest, i);
        concrete.push(st);
        frontier.push(i);
        i
    };

    add_state(
        initial,
        &mut graph,
        &mut index,
        &mut concrete,
        &mut frontier,
        rules,
    );

    'levels: while !frontier.is_empty() {
        let level = std::mem::take(&mut frontier);
        // Eligible choices per level state; fixed before expansion begins
        // (the level's nodes are already in the graph).
        let eligible: Vec<Vec<RuleId>> = level
            .iter()
            .map(|&i| {
                if graph.states[i].is_final {
                    Vec::new()
                } else {
                    rules.priority().choose(&graph.states[i].triggered)
                }
            })
            .collect();

        // Parallel mode: expand the whole level on scoped threads up front.
        // Workers only read `concrete`/`eligible`; results land in
        // per-chunk slots, so no locks and no ordering races.
        let mut batch: Vec<Option<Result<Vec<Expansion>, EngineError>>> = Vec::new();
        if workers > 1 && level.len() >= PARALLEL_MIN_LEVEL {
            batch.resize_with(level.len(), || None);
            let chunk = level.len().div_ceil(workers);
            let concrete = &concrete;
            let eligible = &eligible;
            std::thread::scope(|s| {
                let mut slots: &mut [Option<Result<Vec<Expansion>, EngineError>>] = &mut batch;
                for (k0, idxs) in level.chunks(chunk).enumerate() {
                    let (head, tail) = slots.split_at_mut(idxs.len());
                    slots = tail;
                    let base = k0 * chunk;
                    s.spawn(move || {
                        for (off, (&i, slot)) in idxs.iter().zip(head.iter_mut()).enumerate() {
                            let elig = &eligible[base + off];
                            if elig.is_empty() {
                                continue;
                            }
                            *slot = Some(expand_state(rules, &concrete[i], elig, base_db, mode));
                        }
                    });
                }
            });
        }

        // Merge in (parent index, rule id) order — exactly the sequential
        // explorer's order, so state numbering, edge order, and truncation
        // points match it byte for byte.
        for (k, &i) in level.iter().enumerate() {
            if graph.states.len() > cfg.max_states {
                graph.truncation = Some(TruncationReason::States);
                break 'levels;
            }
            if clock.expired() {
                graph.truncation = Some(TruncationReason::Deadline);
                break 'levels;
            }
            if graph.states[i].is_final {
                continue;
            }
            let expansions = match batch.get_mut(k).and_then(Option::take) {
                Some(r) => r?,
                None => expand_state(rules, &concrete[i], &eligible[k], base_db, mode)?,
            };
            // Provenance: record the decision made at this state. Recording
            // sits in the sequential merge loop (identical across parallel
            // and sequential exploration) and after the truncation guards,
            // so the log covers exactly the states actually expanded.
            if let Some(log) = trace.as_deref_mut() {
                log.record(i, graph.states[i].digest, &eligible[k]);
            }
            for (rule, next, step) in expansions {
                // Per-state row guard: a program whose firings multiply rows
                // (e.g. `insert into t select ... from t`) grows databases
                // exponentially while staying under `max_states`. Checked at
                // merge time, in the sequential order, so parallel and
                // sequential exploration truncate at the identical point.
                if next.db.total_rows() > cfg.max_rows {
                    graph.truncation = Some(TruncationReason::Rows);
                    break 'levels;
                }
                let to = add_state(
                    next,
                    &mut graph,
                    &mut index,
                    &mut concrete,
                    &mut frontier,
                    rules,
                );
                let e = graph.edges.len();
                graph.edges.push(EdgeInfo {
                    from: i,
                    to,
                    rule,
                    fired: step.fired,
                    rolled_back: step.rolled_back,
                    observables: step.observables,
                    ops: step.ops,
                });
                graph.states[i].out_edges.push(e);
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::{parse_script, parse_statement};
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    use super::*;

    fn db_with(tables: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (name, cols) in tables {
            db.create_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    fn rules(db: &Database, src: &str) -> RuleSet {
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        RuleSet::compile(&defs, db.catalog()).unwrap()
    }

    fn actions(srcs: &[&str]) -> Vec<Action> {
        srcs.iter()
            .map(|s| match parse_statement(s).unwrap() {
                Statement::Dml(a) => a,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn single_rule_linear_graph() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule r on t when inserted then delete from t end",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["insert into t values (1)"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.confluent(), Some(true));
        assert_eq!(g.final_states.len(), 1);
        // initial --r--> final
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn nonterminating_cycle_detected() {
        let mut db = db_with(&[("t", &["a"])]);
        // A self-triggering toggle: states (a=0, pending) and (a=1, pending)
        // recur forever — the graph has a cycle.
        db.insert("t", vec![starling_storage::Value::Int(0)])
            .unwrap();
        let rs = rules(
            &db,
            "create rule tgl on t when updated(a) then \
               update t set a = 1 - a end",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["update t set a = 1 - a"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(false));
        assert!(g.has_cycle());
        assert_eq!(g.confluent(), None);
    }

    #[test]
    fn insert_delete_ping_pong_terminates_by_net_effect() {
        // The classic "flip/flop" pair is NOT an oracle counterexample:
        // flip deletes the inserted tuple, so flop's pending transition is
        // insert∘delete = nothing — flop never triggers (paper Section 2
        // net-effect semantics; cf. Can-Untrigger).
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule flip on t when inserted then delete from t end;
             create rule flop on t when deleted then insert into t values (1) end;",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["insert into t values (1)"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
    }

    #[test]
    fn non_confluent_pair_two_final_states() {
        let db = db_with(&[("t", &["a"]), ("out", &["v"])]);
        // Two unordered rules both write `out.v` to different values based
        // on whether the other has run: order matters.
        let rs = rules(
            &db,
            "create rule set1 on t when inserted then \
               update out set v = 1 where v = 0 end;
             create rule set2 on t when inserted then \
               update out set v = 2 where v = 0 end;",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["insert into out values (0)", "insert into t values (1)"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.confluent(), Some(false));
        assert_eq!(g.final_db_digests().len(), 2);
        // But confluent with respect to `t` alone.
        assert_eq!(g.partially_confluent(&["t"]), Some(true));
        assert_eq!(g.partially_confluent(&["out"]), Some(false));
    }

    #[test]
    fn commuting_rules_are_confluent() {
        let db = db_with(&[("t", &["a"]), ("x", &["v"]), ("y", &["v"])]);
        let rs = rules(
            &db,
            "create rule wx on t when inserted then insert into x values (1) end;
             create rule wy on t when inserted then insert into y values (2) end;",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["insert into t values (1)"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.confluent(), Some(true));
        // A diamond shape: the two leaf states carry different pending-
        // transition bookkeeping (so they are distinct graph nodes), but
        // their database states are identical — that is confluence.
        assert_eq!(g.edges.len(), 4);
        assert_eq!(g.final_states.len(), 2);
        assert_eq!(g.final_db_digests().len(), 1);
    }

    #[test]
    fn observable_nondeterminism_detected() {
        let db = db_with(&[("t", &["a"])]);
        // Two unordered observable rules: the stream order differs by
        // choice even though the final state is identical.
        let rs = rules(
            &db,
            "create rule obs1 on t when inserted then select 1 end;
             create rule obs2 on t when inserted then select 2 end;",
        );
        let cfg = ExploreConfig::default();
        let g = explore(&rs, &db, &actions(&["insert into t values (1)"]), &cfg).unwrap();
        assert_eq!(g.confluent(), Some(true));
        assert_eq!(g.observably_deterministic(&cfg), Some(false));
        assert_eq!(g.observable_streams(&cfg).unwrap().len(), 2);
    }

    #[test]
    fn ordered_observables_are_deterministic() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule obs1 on t when inserted then select 1 precedes obs2 end;
             create rule obs2 on t when inserted then select 2 end;",
        );
        let cfg = ExploreConfig::default();
        let g = explore(&rs, &db, &actions(&["insert into t values (1)"]), &cfg).unwrap();
        assert_eq!(g.observably_deterministic(&cfg), Some(true));
    }

    #[test]
    fn rollback_produces_final_state_at_snapshot() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule guard on t when inserted then rollback end",
        );
        let g = explore(
            &rs,
            &db,
            &actions(&["insert into t values (1)"]),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(g.terminates(), Some(true));
        assert_eq!(g.final_states.len(), 1);
        let (_, final_db) = &g.final_dbs[0];
        assert!(final_db.table("t").unwrap().is_empty());
        assert!(g.edges.iter().any(|e| e.rolled_back));
    }

    #[test]
    fn truncation_reported() {
        let db = db_with(&[("t", &["a"])]);
        // Unbounded growth: every insert triggers another insert of a+1 —
        // infinitely many distinct states.
        let rs = rules(
            &db,
            "create rule grow on t when inserted then \
               insert into t select a + 1 from inserted end",
        );
        let cfg = ExploreConfig::default()
            .with_max_states(50)
            .with_max_paths(100);
        let g = explore(&rs, &db, &actions(&["insert into t values (1)"]), &cfg).unwrap();
        assert!(g.truncated());
        assert_eq!(g.truncation, Some(TruncationReason::States));
        assert_eq!(g.terminates(), None);
        assert_eq!(g.confluent(), None);
        assert_eq!(g.observably_deterministic(&cfg), None);
        // The reason-carrying verdicts name the exhausted budget.
        assert_eq!(
            g.termination_verdict(),
            Verdict::Inconclusive(TruncationReason::States)
        );
        assert_eq!(
            g.confluence_verdict(),
            Verdict::Inconclusive(TruncationReason::States)
        );
        assert_eq!(
            g.observable_determinism_verdict(&cfg),
            Verdict::Inconclusive(TruncationReason::States)
        );
    }

    /// A zero wall-clock deadline yields a partial graph with
    /// `TruncationReason::Deadline` and inconclusive verdicts — no panic,
    /// no bare unexplained `None`.
    #[test]
    fn zero_deadline_truncates_with_reason() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule r on t when inserted then delete from t end",
        );
        let cfg = ExploreConfig::default().with_deadline(std::time::Duration::ZERO);
        let g = explore(&rs, &db, &actions(&["insert into t values (1)"]), &cfg).unwrap();
        assert_eq!(g.truncation, Some(TruncationReason::Deadline));
        // Partial graph: the initial state exists even though nothing was
        // expanded.
        assert!(!g.states.is_empty());
        assert_eq!(g.terminates(), None);
        assert_eq!(
            g.termination_verdict(),
            Verdict::Inconclusive(TruncationReason::Deadline)
        );
        assert_eq!(
            g.confluence_verdict(),
            Verdict::Inconclusive(TruncationReason::Deadline)
        );
        assert_eq!(
            g.observable_determinism_verdict(&cfg),
            Verdict::Inconclusive(TruncationReason::Deadline)
        );
    }

    /// Nontermination makes confluence/observability *not applicable*, which
    /// is different from an exhausted budget.
    #[test]
    fn cyclic_graph_verdicts_are_not_applicable() {
        let mut db = db_with(&[("t", &["a"])]);
        db.insert("t", vec![starling_storage::Value::Int(0)])
            .unwrap();
        let rs = rules(
            &db,
            "create rule tgl on t when updated(a) then \
               update t set a = 1 - a end",
        );
        let cfg = ExploreConfig::default();
        let g = explore(&rs, &db, &actions(&["update t set a = 1 - a"]), &cfg).unwrap();
        assert_eq!(g.termination_verdict(), Verdict::Fails);
        assert_eq!(g.confluence_verdict(), Verdict::NotApplicable);
        assert_eq!(
            g.observable_determinism_verdict(&cfg),
            Verdict::NotApplicable
        );
    }

    /// The path budget is reported distinctly from the state budget.
    #[test]
    fn path_budget_exhaustion_reported() {
        let db = db_with(&[("t", &["a"])]);
        // Three unordered observable rules: 3! = 6 root-to-final paths.
        let rs = rules(
            &db,
            "create rule o1 on t when inserted then select 1 end;
             create rule o2 on t when inserted then select 2 end;
             create rule o3 on t when inserted then select 3 end;",
        );
        let cfg = ExploreConfig::default().with_max_paths(2);
        let g = explore(&rs, &db, &actions(&["insert into t values (1)"]), &cfg).unwrap();
        // Exploration itself completed…
        assert!(!g.truncated());
        assert_eq!(g.terminates(), Some(true));
        // …but path enumeration is over budget.
        assert_eq!(
            g.observable_determinism_verdict(&cfg),
            Verdict::Inconclusive(TruncationReason::Paths)
        );
        assert_eq!(g.observable_streams(&cfg), None);
    }

    /// The parallel explorer must produce a **byte-identical** graph to the
    /// sequential one: same state numbering, same edge order, same
    /// everything. Exercised across shapes — diamond, cycle, rollback, and
    /// a fan-out wide enough to cross `PARALLEL_MIN_LEVEL` so the threaded
    /// path actually runs.
    #[test]
    fn parallel_explore_is_byte_identical() {
        let cfg = ExploreConfig::default();
        let shapes: Vec<(Database, &str, Vec<&str>)> = vec![
            (
                db_with(&[("t", &["a"]), ("x", &["v"]), ("y", &["v"])]),
                "create rule wx on t when inserted then insert into x values (1) end;
                 create rule wy on t when inserted then insert into y values (2) end;",
                vec!["insert into t values (1)"],
            ),
            (
                db_with(&[("t", &["a"])]),
                // Four unordered observables: levels reach 24 states, well
                // past the parallel dispatch threshold.
                "create rule o1 on t when inserted then select 1 end;
                 create rule o2 on t when inserted then select 2 end;
                 create rule o3 on t when inserted then select 3 end;
                 create rule o4 on t when inserted then select 4 end;",
                vec!["insert into t values (1)"],
            ),
            (
                db_with(&[("t", &["a"])]),
                "create rule guard on t when inserted then rollback end",
                vec!["insert into t values (1)"],
            ),
        ];
        for (db, src, acts) in shapes {
            let rs = rules(&db, src);
            let seq = explore(&rs, &db, &actions(&acts), &cfg).unwrap();
            let par = explore_parallel(&rs, &db, &actions(&acts), &cfg).unwrap();
            assert_eq!(seq, par);
            assert_eq!(seq.final_db_digests(), par.final_db_digests());
            assert_eq!(seq.observable_streams(&cfg), par.observable_streams(&cfg));
        }
    }

    /// Parallel exploration with a cycle: identical graph, identical
    /// verdicts.
    #[test]
    fn parallel_explore_matches_on_cycles() {
        let mut db = db_with(&[("t", &["a"])]);
        db.insert("t", vec![starling_storage::Value::Int(0)])
            .unwrap();
        let rs = rules(
            &db,
            "create rule tgl on t when updated(a) then \
               update t set a = 1 - a end",
        );
        let cfg = ExploreConfig::default();
        let acts = actions(&["update t set a = 1 - a"]);
        let seq = explore(&rs, &db, &acts, &cfg).unwrap();
        let par = explore_parallel(&rs, &db, &acts, &cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(par.terminates(), Some(false));
    }

    /// State-budget truncation cuts at the same state index in both modes
    /// (truncation is part of the byte-identical contract; only the
    /// wall-clock deadline is exempt).
    #[test]
    fn parallel_explore_truncates_identically() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule grow on t when inserted then \
               insert into t select a + 1 from inserted end",
        );
        let cfg = ExploreConfig::default()
            .with_max_states(50)
            .with_max_paths(100);
        let acts = actions(&["insert into t values (1)"]);
        let seq = explore(&rs, &db, &acts, &cfg).unwrap();
        let par = explore_parallel(&rs, &db, &acts, &cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(par.truncation, Some(TruncationReason::States));
    }

    /// Exhausting `max_states` *exactly at the last frontier* is the edge
    /// case where sequential and parallel exploration could plausibly
    /// diverge: the parallel explorer has already expanded the whole level
    /// on worker threads when the merge loop decides whether the budget
    /// tripped. With `max_states` equal to the true state count the graph
    /// must be complete (full verdicts, no truncation); with one less it
    /// must truncate with `TruncationReason::States` — and both modes must
    /// agree byte for byte in both cases. The fan is wide enough to cross
    /// `PARALLEL_MIN_LEVEL`, so the threaded path really runs.
    #[test]
    fn exact_state_budget_boundary_matches_across_modes() {
        let db = db_with(&[("t", &["a"])]);
        // Five unordered observables: middle levels reach C(5,2) = 10
        // parallel-expanded states, past PARALLEL_MIN_LEVEL.
        let rs = rules(
            &db,
            "create rule o1 on t when inserted then select 1 end;
             create rule o2 on t when inserted then select 2 end;
             create rule o3 on t when inserted then select 3 end;
             create rule o4 on t when inserted then select 4 end;
             create rule o5 on t when inserted then select 5 end;",
        );
        let acts = actions(&["insert into t values (1)"]);
        let n = {
            let g = explore(&rs, &db, &acts, &ExploreConfig::default()).unwrap();
            assert!(!g.truncated());
            g.states.len()
        };
        assert!(n > PARALLEL_MIN_LEVEL, "fan too narrow to exercise threads");

        // Budget == exact state count: complete graph, full verdicts.
        let exact = ExploreConfig::default().with_max_states(n);
        let seq = explore(&rs, &db, &acts, &exact).unwrap();
        let par = explore_parallel(&rs, &db, &acts, &exact).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.truncation, None);
        assert_eq!(seq.termination_verdict(), Verdict::Holds);
        assert_eq!(par.termination_verdict(), Verdict::Holds);
        assert_eq!(seq.confluence_verdict(), par.confluence_verdict());

        // Budget == one less: both modes truncate at the identical point
        // with the identical reason.
        let under = ExploreConfig::default().with_max_states(n - 1);
        let seq = explore(&rs, &db, &acts, &under).unwrap();
        let par = explore_parallel(&rs, &db, &acts, &under).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.truncation, Some(TruncationReason::States));
        assert_eq!(
            seq.termination_verdict(),
            Verdict::Inconclusive(TruncationReason::States)
        );
        assert_eq!(seq.termination_verdict(), par.termination_verdict());
    }

    /// The per-state row budget truncates a database-growing program with
    /// its own reason, identically in both modes — the guard that keeps a
    /// fuzz campaign's memory bounded when a generated rule multiplies rows
    /// on every firing.
    #[test]
    fn row_budget_truncates_with_reason() {
        let db = db_with(&[("t", &["a"])]);
        // Each firing doubles `t` (select from the *base* table): row
        // counts explode while the state count stays tiny.
        let rs = rules(
            &db,
            "create rule dup on t when inserted then \
               insert into t select a + 1 from t end",
        );
        let cfg = ExploreConfig::default().with_max_rows(64);
        let acts = actions(&["insert into t values (1)"]);
        let seq = explore(&rs, &db, &acts, &cfg).unwrap();
        let par = explore_parallel(&rs, &db, &acts, &cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.truncation, Some(TruncationReason::Rows));
        assert_eq!(
            seq.termination_verdict(),
            Verdict::Inconclusive(TruncationReason::Rows)
        );
        // Every state actually kept respects the cap.
        assert!(seq.states.len() < 20, "cap should trip within a few states");
    }

    /// With a fault plan installed the parallel entry point falls back to
    /// sequential expansion, so injection points stay deterministic.
    #[test]
    fn parallel_explore_with_fault_plan_is_deterministic() {
        use starling_storage::{FaultPlan, FaultSpec};
        let mk = || {
            let mut db = db_with(&[("t", &["a"]), ("x", &["v"]), ("y", &["v"])]);
            db.install_fault_plan(FaultPlan::single(FaultSpec::nth(3)));
            db
        };
        let rs = rules(
            &mk(),
            "create rule wx on t when inserted then insert into x values (1) end;
             create rule wy on t when inserted then insert into y values (2) end;",
        );
        let cfg = ExploreConfig::default();
        let acts = actions(&["insert into t values (1)"]);
        // Two parallel runs from identical fresh fault states agree with a
        // sequential run — because the fallback *is* the sequential path.
        let seq = explore(&rs, &mk(), &acts, &cfg);
        let par1 = explore_parallel(&rs, &mk(), &acts, &cfg);
        let par2 = explore_parallel(&rs, &mk(), &acts, &cfg);
        match (seq, par1, par2) {
            (Ok(a), Ok(b), Ok(c)) => {
                assert_eq!(a, b);
                assert_eq!(b, c);
            }
            (Err(a), Err(b), Err(c)) => {
                assert_eq!(a.to_string(), b.to_string());
                assert_eq!(b.to_string(), c.to_string());
            }
            other => panic!("divergent outcomes: {other:?}"),
        }
    }

    #[test]
    fn rollback_in_user_actions_rejected() {
        let db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule r on t when inserted then delete from t end",
        );
        assert!(explore(&rs, &db, &actions(&["rollback"]), &ExploreConfig::default()).is_err());
    }
}
