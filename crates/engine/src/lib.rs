//! # starling-engine
//!
//! Execution-time rule processing for the Starling production rule system:
//! the semantics of paper Section 2 (\[WCL91\]) made runnable, plus the
//! execution-graph model of Section 4 as an exhaustive *oracle*.
//!
//! The crate provides:
//!
//! * [`ops`] — tuple-level operations and the **net effect** algebra of
//!   \[WF90\]: per-tuple composition where update∘update composes,
//!   insert∘delete annihilates, insert∘update is an insertion of the updated
//!   tuple, and update∘delete is a deletion of the original;
//! * [`priority`] — the user-defined partial order from `precedes`/`follows`
//!   clauses, with transitive closure and cycle rejection;
//! * [`ruleset`] — compiled rule sets: validated rules plus their static
//!   signatures and the priority order;
//! * [`state`] — execution states `S = (D, TR)`: a database plus, per rule,
//!   the net effect of its pending transition (which determines both
//!   triggering and transition-table contents);
//! * [`processor`] — the rule-processing loop: triggering w.r.t. composite
//!   transitions, `Choose` among unordered eligible rules via a pluggable
//!   [`strategy`], condition evaluation, action execution, rollback;
//! * [`exec_graph`] — exhaustive exploration of **all** nondeterministic
//!   choices with canonical-state deduplication: the ground-truth oracle for
//!   termination, confluence, and observable determinism used by the
//!   experiments;
//! * [`session`] — a small front end that executes scripts (DDL, DML, rule
//!   definitions, certification directives) and runs assertion points.
//!
//! ```
//! use starling_engine::{FirstEligible, Outcome, Session};
//!
//! let mut session = Session::new();
//! session.execute_script("
//!     create table emp (id int, salary int);
//!     create rule cap on emp when inserted, updated(salary)
//!     if exists (select * from emp where salary > 100)
//!     then update emp set salary = 100 where salary > 100
//!     end;
//!     insert into emp values (1, 250);
//! ")?;
//! let run = session.commit(&mut FirstEligible)?;
//! assert_eq!(run.outcome, Outcome::Quiescent);
//! assert_eq!(run.fired_count(), 1);
//! # Ok::<(), starling_engine::EngineError>(())
//! ```

pub mod budget;
pub mod durability;
pub mod error;
pub mod exec_graph;
pub mod observable;
pub mod ops;
pub mod priority;
pub mod processor;
pub mod ruleset;
pub mod session;
pub mod state;
pub mod strategy;

pub use budget::{Budget, BudgetClock, TruncationReason, Verdict};
pub use durability::Durability;
pub use error::EngineError;
pub use exec_graph::{
    explore, explore_from_ops, explore_from_ops_parallel, explore_parallel, explore_traced,
    explore_traced_parallel, explore_traced_with_mode, explore_with_mode, ChoicePoint, DecisionLog,
    ExecGraph, ExploreConfig,
};
pub use observable::{ObservableEvent, ObservableKind};
pub use ops::{NetChange, NetEffect, TupleOp};
pub use priority::PriorityOrder;
pub use processor::{
    consider_fired_rule, consider_rule, replay_rule_sequence, rule_fires, Consideration, EvalMode,
    Outcome, Processor, RunResult, StepOutcome,
};
pub use ruleset::{CompiledRule, RuleId, RuleSet};
pub use session::Session;
pub use state::ExecState;
pub use strategy::{ChoiceStrategy, FirstEligible, LastEligible, Scripted, SeededRandom};

/// Convenient result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
