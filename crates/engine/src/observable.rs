//! Observable actions (paper Section 8).
//!
//! An action is *observable* when it is visible to the environment: data
//! retrieval (`SELECT`) or `ROLLBACK`. Observable determinism asks whether
//! the *stream* of such events — order and content — is the same on every
//! execution path.

use starling_sql::eval::ResultSet;
use starling_storage::{CanonicalDigest, Fnv64};

use crate::ruleset::RuleId;

/// What an observable action exposed.
#[derive(Clone, Debug, PartialEq)]
pub enum ObservableKind {
    /// Rows returned by a `SELECT` action.
    Rows(ResultSet),
    /// A rollback became visible.
    Rollback,
}

/// One observable event in a rule-processing run.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservableEvent {
    /// The rule whose action produced the event.
    pub rule: RuleId,
    /// The event payload.
    pub kind: ObservableKind,
}

impl ObservableEvent {
    /// Canonical digest, used to compare observable *streams* across
    /// execution paths ("order and appearance of observable actions").
    ///
    /// The rows of one `SELECT` are digested as a **sorted multiset**: the
    /// language is set-oriented, so the row order within a single retrieval
    /// is an engine artifact (tuple-id scan order), not an observable.
    /// Event order *within the stream* remains significant — see
    /// [`stream_digest`].
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.rule.0);
        match &self.kind {
            ObservableKind::Rollback => h.write(&[0]),
            ObservableKind::Rows(rs) => {
                h.write(&[1]);
                h.write_usize(rs.columns.len());
                for c in &rs.columns {
                    h.write_str(c);
                }
                h.write_usize(rs.rows.len());
                let mut sorted: Vec<_> = rs.rows.iter().collect();
                sorted.sort_unstable();
                for row in sorted {
                    row.as_slice().digest_into(&mut h);
                }
            }
        }
        h.finish()
    }
}

/// Digest of an entire observable stream (order-sensitive).
pub fn stream_digest(events: &[ObservableEvent]) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(events.len());
    for e in events {
        h.write_u64(e.digest());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use starling_storage::Value;

    use super::*;

    fn rows(vals: &[i64]) -> ObservableEvent {
        ObservableEvent {
            rule: RuleId(0),
            kind: ObservableKind::Rows(ResultSet {
                columns: vec!["a".into()],
                rows: vals.iter().map(|v| vec![Value::Int(*v)]).collect(),
            }),
        }
    }

    #[test]
    fn digest_sensitive_to_content_and_rule() {
        assert_eq!(rows(&[1, 2]).digest(), rows(&[1, 2]).digest());
        // Row order within one retrieval is NOT observable (set-oriented
        // semantics) — only content is.
        assert_eq!(rows(&[1, 2]).digest(), rows(&[2, 1]).digest());
        assert_ne!(rows(&[1, 2]).digest(), rows(&[1, 3]).digest());
        let mut other = rows(&[1, 2]);
        other.rule = RuleId(1);
        assert_ne!(rows(&[1, 2]).digest(), other.digest());
        assert_ne!(
            rows(&[]).digest(),
            ObservableEvent {
                rule: RuleId(0),
                kind: ObservableKind::Rollback
            }
            .digest()
        );
    }

    #[test]
    fn stream_digest_order_sensitive() {
        let a = rows(&[1]);
        let b = rows(&[2]);
        assert_ne!(
            stream_digest(&[a.clone(), b.clone()]),
            stream_digest(&[b, a])
        );
        assert_eq!(stream_digest(&[]), stream_digest(&[]));
    }
}
