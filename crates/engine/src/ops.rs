//! Tuple-level operations and the net-effect algebra of \[WF90\].
//!
//! A *transition* is a database state change resulting from a sequence of
//! operations; rules consider only its **net effect** (paper Section 2):
//!
//! 1. update ∘ update  → the composite update;
//! 2. update ∘ delete  → deletion of the *original* tuple;
//! 3. insert ∘ update  → insertion of the *updated* tuple;
//! 4. insert ∘ delete  → nothing at all.
//!
//! [`NetEffect`] maintains this composition incrementally: absorbing each
//! [`TupleOp`] in chronological order yields exactly the net effect of the
//! whole sequence (associativity is property-tested).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use starling_sql::eval::{DmlEffect, TransitionBinding};
use starling_storage::{CanonicalDigest, Fnv64, Op, Row, TupleId};

/// One concrete, tuple-level database operation (an entry in the engine's
/// operation log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TupleOp {
    /// A tuple was inserted.
    Insert {
        /// Target table.
        table: String,
        /// Assigned tuple id.
        id: TupleId,
        /// Inserted values.
        row: Row,
    },
    /// A tuple was deleted.
    Delete {
        /// Target table.
        table: String,
        /// Deleted tuple id.
        id: TupleId,
        /// Values at deletion time.
        old: Row,
    },
    /// A tuple was updated.
    Update {
        /// Target table.
        table: String,
        /// Updated tuple id.
        id: TupleId,
        /// Values before.
        old: Row,
        /// Values after.
        new: Row,
        /// Columns assigned by the statement's `SET` list.
        cols: BTreeSet<String>,
    },
}

impl TupleOp {
    /// The table this operation touches.
    pub fn table(&self) -> &str {
        match self {
            TupleOp::Insert { table, .. }
            | TupleOp::Delete { table, .. }
            | TupleOp::Update { table, .. } => table,
        }
    }

    /// The tuple this operation touches.
    pub fn tuple_id(&self) -> TupleId {
        match self {
            TupleOp::Insert { id, .. }
            | TupleOp::Delete { id, .. }
            | TupleOp::Update { id, .. } => *id,
        }
    }
}

impl From<DmlEffect> for TupleOp {
    fn from(e: DmlEffect) -> Self {
        match e {
            DmlEffect::Insert { table, id, row } => TupleOp::Insert { table, id, row },
            DmlEffect::Delete { table, id, old } => TupleOp::Delete { table, id, old },
            DmlEffect::Update {
                table,
                id,
                old,
                new,
                cols,
            } => TupleOp::Update {
                table,
                id,
                old,
                new,
                cols: cols.into_iter().collect(),
            },
        }
    }
}

/// The net change to a single tuple over a transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetChange {
    /// The tuple was (net) inserted with these values.
    Inserted(Row),
    /// The tuple was (net) deleted; values are those at the transition
    /// start (rule 2: update-then-delete nets to deleting the original).
    Deleted(Row),
    /// The tuple was (net) updated.
    Updated {
        /// Values at the transition start.
        old: Row,
        /// Current values.
        new: Row,
        /// Union of all assigned columns across the composed updates.
        cols: BTreeSet<String>,
    },
}

/// The net effect of a transition: per table, per tuple, the composed
/// change. This is the `TR`-side payload of an execution-graph state and the
/// source of transition-table contents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetEffect {
    changes: BTreeMap<String, BTreeMap<TupleId, NetChange>>,
}

impl NetEffect {
    /// The empty transition.
    pub fn new() -> Self {
        NetEffect::default()
    }

    /// Net effect of a whole operation sequence.
    pub fn from_ops<'a>(ops: impl IntoIterator<Item = &'a TupleOp>) -> Self {
        let mut n = NetEffect::new();
        for op in ops {
            n.absorb(op);
        }
        n
    }

    /// Whether the transition has no net changes.
    pub fn is_empty(&self) -> bool {
        self.changes.values().all(BTreeMap::is_empty)
    }

    /// Total number of net tuple changes.
    pub fn len(&self) -> usize {
        self.changes.values().map(BTreeMap::len).sum()
    }

    /// Composes one more operation into the net effect.
    pub fn absorb(&mut self, op: &TupleOp) {
        let per_table = self.changes.entry(op.table().to_owned()).or_default();
        match op {
            TupleOp::Insert { id, row, .. } => {
                // Tuple ids are never reused, so an insert always creates a
                // fresh entry.
                debug_assert!(
                    !per_table.contains_key(id),
                    "tuple id {id} reused within a transition"
                );
                per_table.insert(*id, NetChange::Inserted(row.clone()));
            }
            TupleOp::Update {
                id, old, new, cols, ..
            } => match per_table.entry(*id) {
                Entry::Vacant(v) => {
                    v.insert(NetChange::Updated {
                        old: old.clone(),
                        new: new.clone(),
                        cols: cols.clone(),
                    });
                }
                Entry::Occupied(mut o) => match o.get_mut() {
                    // Rule 3: insert then update = insert of updated tuple.
                    NetChange::Inserted(row) => *row = new.clone(),
                    // Rule 1: update then update = composite update.
                    NetChange::Updated {
                        new: cur_new,
                        cols: cur_cols,
                        ..
                    } => {
                        *cur_new = new.clone();
                        cur_cols.extend(cols.iter().cloned());
                    }
                    NetChange::Deleted(_) => {
                        debug_assert!(false, "update of deleted tuple {id}")
                    }
                },
            },
            TupleOp::Delete { id, old, .. } => match per_table.entry(*id) {
                Entry::Vacant(v) => {
                    v.insert(NetChange::Deleted(old.clone()));
                }
                Entry::Occupied(mut o) => {
                    let replacement = match o.get() {
                        // Rule 4: insert then delete = nothing at all.
                        NetChange::Inserted(_) => None,
                        // Rule 2: update then delete = delete the original.
                        NetChange::Updated { old: orig, .. } => {
                            Some(NetChange::Deleted(orig.clone()))
                        }
                        NetChange::Deleted(_) => {
                            debug_assert!(false, "double delete of tuple {id}");
                            Some(NetChange::Deleted(old.clone()))
                        }
                    };
                    match replacement {
                        Some(c) => {
                            *o.get_mut() = c;
                        }
                        None => {
                            o.remove();
                        }
                    }
                }
            },
        }
    }

    /// Composes a sequence of operations.
    pub fn absorb_all<'a>(&mut self, ops: impl IntoIterator<Item = &'a TupleOp>) {
        for op in ops {
            self.absorb(op);
        }
    }

    /// Whether the net effect contains an occurrence of the abstract
    /// operation `op` — the triggering test.
    pub fn contains_op(&self, op: &Op) -> bool {
        let Some(per_table) = self.changes.get(op.table()) else {
            return false;
        };
        per_table.values().any(|c| match (op, c) {
            (Op::Insert(_), NetChange::Inserted(_)) => true,
            (Op::Delete(_), NetChange::Deleted(_)) => true,
            (Op::Update(colref), NetChange::Updated { cols, .. }) => cols.contains(&colref.column),
            _ => false,
        })
    }

    /// Whether any operation in `triggered_by` occurs in the net effect
    /// (i.e., whether a rule with that transition predicate is triggered).
    pub fn triggers(&self, triggered_by: &BTreeSet<Op>) -> bool {
        triggered_by.iter().any(|op| self.contains_op(op))
    }

    /// Builds the four transition tables for a rule on `table` (paper
    /// Section 2), in deterministic tuple-id order.
    pub fn transition_binding(&self, table: &str) -> TransitionBinding {
        let mut b = TransitionBinding::empty(table);
        if let Some(per_table) = self.changes.get(table) {
            for c in per_table.values() {
                match c {
                    NetChange::Inserted(row) => b.inserted.push(row.clone()),
                    NetChange::Deleted(row) => b.deleted.push(row.clone()),
                    NetChange::Updated { old, new, .. } => {
                        b.old_updated.push(old.clone());
                        b.new_updated.push(new.clone());
                    }
                }
            }
        }
        b
    }

    /// Iterates `(table, tuple id, net change)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, TupleId, &NetChange)> {
        self.changes
            .iter()
            .flat_map(|(t, m)| m.iter().map(move |(id, c)| (t.as_str(), *id, c)))
    }
}

impl CanonicalDigest for NetEffect {
    fn digest_into(&self, h: &mut Fnv64) {
        h.write_usize(self.len());
        for (table, id, change) in self.iter() {
            h.write_str(table);
            h.write_u64(id.0);
            match change {
                NetChange::Inserted(row) => {
                    h.write(&[1]);
                    row.digest_into(h);
                }
                NetChange::Deleted(row) => {
                    h.write(&[2]);
                    row.digest_into(h);
                }
                NetChange::Updated { old, new, cols } => {
                    h.write(&[3]);
                    old.digest_into(h);
                    new.digest_into(h);
                    h.write_usize(cols.len());
                    for c in cols {
                        h.write_str(c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use starling_storage::Value;

    use super::*;

    fn ins(id: u64, v: i64) -> TupleOp {
        TupleOp::Insert {
            table: "t".into(),
            id: TupleId(id),
            row: vec![Value::Int(v)],
        }
    }

    fn del(id: u64, v: i64) -> TupleOp {
        TupleOp::Delete {
            table: "t".into(),
            id: TupleId(id),
            old: vec![Value::Int(v)],
        }
    }

    fn upd(id: u64, old: i64, new: i64) -> TupleOp {
        TupleOp::Update {
            table: "t".into(),
            id: TupleId(id),
            old: vec![Value::Int(old)],
            new: vec![Value::Int(new)],
            cols: std::iter::once("a".to_owned()).collect(),
        }
    }

    #[test]
    fn rule1_update_update_composes() {
        let n = NetEffect::from_ops(&[upd(1, 10, 20), upd(1, 20, 30)]);
        let (_, _, c) = n.iter().next().unwrap();
        assert_eq!(
            c,
            &NetChange::Updated {
                old: vec![Value::Int(10)],
                new: vec![Value::Int(30)],
                cols: std::iter::once("a".to_owned()).collect(),
            }
        );
    }

    #[test]
    fn rule2_update_delete_deletes_original() {
        let n = NetEffect::from_ops(&[upd(1, 10, 20), del(1, 20)]);
        let (_, _, c) = n.iter().next().unwrap();
        assert_eq!(c, &NetChange::Deleted(vec![Value::Int(10)]));
    }

    #[test]
    fn rule3_insert_update_inserts_updated() {
        let n = NetEffect::from_ops(&[ins(1, 10), upd(1, 10, 20)]);
        let (_, _, c) = n.iter().next().unwrap();
        assert_eq!(c, &NetChange::Inserted(vec![Value::Int(20)]));
    }

    #[test]
    fn rule4_insert_delete_annihilates() {
        let n = NetEffect::from_ops(&[ins(1, 10), del(1, 10)]);
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
    }

    #[test]
    fn insert_update_delete_also_annihilates() {
        let n = NetEffect::from_ops(&[ins(1, 10), upd(1, 10, 20), del(1, 20)]);
        assert!(n.is_empty());
    }

    #[test]
    fn triggering_checks() {
        let n = NetEffect::from_ops(&[ins(1, 10), upd(2, 5, 6), del(3, 9)]);
        assert!(n.contains_op(&Op::Insert("t".into())));
        assert!(n.contains_op(&Op::Delete("t".into())));
        assert!(n.contains_op(&Op::update("t", "a")));
        assert!(!n.contains_op(&Op::update("t", "b")));
        assert!(!n.contains_op(&Op::Insert("u".into())));

        let tb: BTreeSet<Op> = std::iter::once(Op::update("t", "b")).collect();
        assert!(!n.triggers(&tb));
        let tb: BTreeSet<Op> = std::iter::once(Op::Delete("t".into())).collect();
        assert!(n.triggers(&tb));
    }

    #[test]
    fn insert_then_update_is_not_an_update_for_triggering() {
        // Rule 3 means updated-triggered rules do NOT see insert∘update.
        let n = NetEffect::from_ops(&[ins(1, 10), upd(1, 10, 20)]);
        assert!(!n.contains_op(&Op::update("t", "a")));
        assert!(n.contains_op(&Op::Insert("t".into())));
    }

    #[test]
    fn transition_binding_contents() {
        let n = NetEffect::from_ops(&[ins(1, 10), upd(2, 5, 6), del(3, 9)]);
        let b = n.transition_binding("t");
        assert_eq!(b.inserted, vec![vec![Value::Int(10)]]);
        assert_eq!(b.deleted, vec![vec![Value::Int(9)]]);
        assert_eq!(b.old_updated, vec![vec![Value::Int(5)]]);
        assert_eq!(b.new_updated, vec![vec![Value::Int(6)]]);
        // Other tables yield empty bindings.
        let b = n.transition_binding("u");
        assert!(b.inserted.is_empty() && b.deleted.is_empty());
    }

    #[test]
    fn incremental_equals_batch() {
        let ops = vec![
            ins(1, 10),
            upd(1, 10, 20),
            upd(2, 1, 2),
            del(2, 2),
            ins(3, 7),
        ];
        let batch = NetEffect::from_ops(&ops);
        let mut inc = NetEffect::new();
        inc.absorb_all(&ops[..2]);
        inc.absorb_all(&ops[2..]);
        assert_eq!(batch, inc);
        assert_eq!(batch.digest(), inc.digest());
    }

    #[test]
    fn digest_distinguishes() {
        let a = NetEffect::from_ops(&[ins(1, 10)]);
        let b = NetEffect::from_ops(&[ins(1, 11)]);
        let c = NetEffect::from_ops(&[del(1, 10)]);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(NetEffect::new().digest(), NetEffect::new().digest());
    }

    #[test]
    fn update_cols_union() {
        let mut u1 = upd(1, 10, 20);
        if let TupleOp::Update { cols, .. } = &mut u1 {
            *cols = std::iter::once("a".to_owned()).collect();
        }
        let mut u2 = upd(1, 20, 30);
        if let TupleOp::Update { cols, .. } = &mut u2 {
            *cols = std::iter::once("b".to_owned()).collect();
        }
        let n = NetEffect::from_ops(&[u1, u2]);
        assert!(n.contains_op(&Op::update("t", "a")));
        assert!(n.contains_op(&Op::update("t", "b")));
    }

    #[test]
    fn from_dml_effect() {
        let e = DmlEffect::Update {
            table: "t".into(),
            id: TupleId(4),
            old: vec![Value::Int(1)],
            new: vec![Value::Int(2)],
            cols: vec!["a".into()],
        };
        let op: TupleOp = e.into();
        assert_eq!(op.table(), "t");
        assert_eq!(op.tuple_id(), TupleId(4));
    }
}
