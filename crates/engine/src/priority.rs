//! The user-defined priority relation `P` (paper Sections 2–3).
//!
//! `precedes`/`follows` clauses induce a strict partial order over rules,
//! "including those implied by transitivity". The closure is computed with
//! Warshall's algorithm over a dense boolean matrix (rule sets are small —
//! hundreds, not millions) and cyclic orderings are rejected at compile
//! time.

use crate::error::EngineError;
use crate::ruleset::RuleId;

/// The transitive closure of the user-defined priority edges.
///
/// `gt(i, j)` means rule `i` has precedence over rule `j` (`r_i > r_j ∈ P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PriorityOrder {
    n: usize,
    gt: Vec<bool>,
}

impl PriorityOrder {
    /// Builds the closure from direct edges `(higher, lower)`.
    ///
    /// `names` is used only for error reporting; `names.len()` defines the
    /// number of rules.
    pub fn from_edges(names: &[String], edges: &[(usize, usize)]) -> Result<Self, EngineError> {
        let n = names.len();
        let mut gt = vec![false; n * n];
        for &(hi, lo) in edges {
            debug_assert!(hi < n && lo < n);
            gt[hi * n + lo] = true;
        }
        // Warshall transitive closure.
        for k in 0..n {
            for i in 0..n {
                if gt[i * n + k] {
                    for j in 0..n {
                        if gt[k * n + j] {
                            gt[i * n + j] = true;
                        }
                    }
                }
            }
        }
        let cyclic: Vec<String> = (0..n)
            .filter(|&i| gt[i * n + i])
            .map(|i| names[i].clone())
            .collect();
        if !cyclic.is_empty() {
            return Err(EngineError::PriorityCycle(cyclic));
        }
        Ok(PriorityOrder { n, gt })
    }

    /// An empty order over `n` rules (no priorities: `P = ∅`).
    pub fn empty(n: usize) -> Self {
        PriorityOrder {
            n,
            gt: vec![false; n * n],
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` has precedence over `b`.
    pub fn gt(&self, a: RuleId, b: RuleId) -> bool {
        self.gt[a.0 * self.n + b.0]
    }

    /// Whether `a` and `b` are **unordered**: neither `a > b` nor `b > a`
    /// (Section 6.2). A rule is ordered with itself by convention (the
    /// analysis never needs the pair `(r, r)`).
    pub fn unordered(&self, a: RuleId, b: RuleId) -> bool {
        a != b && !self.gt(a, b) && !self.gt(b, a)
    }

    /// The paper's `Choose`: the subset of `set` with no member of `set`
    /// having precedence over them.
    pub fn choose(&self, set: &[RuleId]) -> Vec<RuleId> {
        set.iter()
            .copied()
            .filter(|&r| !set.iter().any(|&q| self.gt(q, r)))
            .collect()
    }

    /// Number of ordered pairs (for reporting).
    pub fn ordered_pair_count(&self) -> usize {
        self.gt.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("r{i}")).collect()
    }

    #[test]
    fn transitivity() {
        // r0 > r1 > r2 implies r0 > r2.
        let p = PriorityOrder::from_edges(&names(3), &[(0, 1), (1, 2)]).unwrap();
        assert!(p.gt(RuleId(0), RuleId(2)));
        assert!(!p.gt(RuleId(2), RuleId(0)));
        assert!(!p.unordered(RuleId(0), RuleId(2)));
    }

    #[test]
    fn cycle_rejected() {
        let err = PriorityOrder::from_edges(&names(3), &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        let EngineError::PriorityCycle(rs) = err else {
            panic!()
        };
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn self_edge_rejected() {
        assert!(PriorityOrder::from_edges(&names(1), &[(0, 0)]).is_err());
    }

    #[test]
    fn unordered_pairs() {
        let p = PriorityOrder::from_edges(&names(3), &[(0, 1)]).unwrap();
        assert!(p.unordered(RuleId(0), RuleId(2)));
        assert!(p.unordered(RuleId(1), RuleId(2)));
        assert!(!p.unordered(RuleId(0), RuleId(1)));
        assert!(!p.unordered(RuleId(1), RuleId(1)));
    }

    #[test]
    fn choose_filters_dominated() {
        let p = PriorityOrder::from_edges(&names(4), &[(0, 1), (2, 3)]).unwrap();
        // From {r1, r0, r3}: r0 dominates r1; r3's dominator r2 is absent.
        let picked = p.choose(&[RuleId(1), RuleId(0), RuleId(3)]);
        assert_eq!(picked, vec![RuleId(0), RuleId(3)]);
        // Choose over the empty set is empty.
        assert!(p.choose(&[]).is_empty());
    }

    #[test]
    fn empty_order_everything_unordered() {
        let p = PriorityOrder::empty(3);
        assert!(p.unordered(RuleId(0), RuleId(1)));
        assert_eq!(p.ordered_pair_count(), 0);
        let picked = p.choose(&[RuleId(2), RuleId(0)]);
        assert_eq!(picked, vec![RuleId(2), RuleId(0)]);
    }
}
