//! The user-defined priority relation `P` (paper Sections 2–3).
//!
//! `precedes`/`follows` clauses induce a strict partial order over rules,
//! "including those implied by transitivity". The closure is stored as one
//! bitset row per rule and computed in a single pass over the rules in
//! reverse topological order (each rule's row is the union of its direct
//! successors' completed rows), so building the order is O(E·n/64) instead
//! of the former Warshall O(n³) — the difference between "hundreds of
//! rules" and the 10k-rule sets the analysis benchmarks exercise. Cyclic
//! orderings are rejected at compile time via Tarjan's SCC algorithm,
//! reporting exactly the rules that lie on a cycle (the same set the old
//! Warshall diagonal check produced), in rule-index order.

use crate::error::EngineError;
use crate::ruleset::RuleId;

/// The transitive closure of the user-defined priority edges.
///
/// `gt(i, j)` means rule `i` has precedence over rule `j` (`r_i > r_j ∈ P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PriorityOrder {
    n: usize,
    words: usize,
    /// `n * words` little-endian bit rows; bit `j` of row `i` = `gt(i, j)`.
    rows: Vec<u64>,
    /// Cached number of ordered pairs in the closure.
    pairs: usize,
}

impl PriorityOrder {
    /// Builds the closure from direct edges `(higher, lower)`.
    ///
    /// `names` is used only for error reporting; `names.len()` defines the
    /// number of rules.
    pub fn from_edges(names: &[String], edges: &[(usize, usize)]) -> Result<Self, EngineError> {
        let n = names.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(hi, lo) in edges {
            debug_assert!(hi < n && lo < n);
            adj[hi].push(lo);
        }

        // Tarjan SCCs (iterative): detects cycles exactly (a component of
        // size > 1, or a self-edge) and emits components in reverse
        // topological order, which doubles as the evaluation order for the
        // closure pass below.
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut cyclic = vec![false; n];
        let mut call: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            call.push((root, 0));
            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child < adj[v].len() {
                    let w = adj[v][*child];
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp: Vec<usize> = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 || adj[v].contains(&v) {
                            for &w in &comp {
                                cyclic[w] = true;
                            }
                        }
                        order.extend(comp);
                    }
                }
            }
        }
        if cyclic.contains(&true) {
            let cyclic: Vec<String> = (0..n)
                .filter(|&i| cyclic[i])
                .map(|i| names[i].clone())
                .collect();
            return Err(EngineError::PriorityCycle(cyclic));
        }

        // The graph is a DAG: `order` lists every rule after all rules it
        // reaches, so each successor's row is complete when it is OR-ed in.
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        for &v in &order {
            for &w in &adj[v] {
                rows[v * words + w / 64] |= 1u64 << (w % 64);
                for k in 0..words {
                    let succ = rows[w * words + k];
                    rows[v * words + k] |= succ;
                }
            }
        }
        let pairs = rows.iter().map(|w| w.count_ones() as usize).sum();
        Ok(PriorityOrder {
            n,
            words,
            rows,
            pairs,
        })
    }

    /// An empty order over `n` rules (no priorities: `P = ∅`).
    pub fn empty(n: usize) -> Self {
        let words = n.div_ceil(64);
        PriorityOrder {
            n,
            words,
            rows: vec![0u64; n * words],
            pairs: 0,
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` has precedence over `b`.
    pub fn gt(&self, a: RuleId, b: RuleId) -> bool {
        self.rows[a.0 * self.words + b.0 / 64] >> (b.0 % 64) & 1 != 0
    }

    /// Whether `a` and `b` are **unordered**: neither `a > b` nor `b > a`
    /// (Section 6.2). A rule is ordered with itself by convention (the
    /// analysis never needs the pair `(r, r)`).
    pub fn unordered(&self, a: RuleId, b: RuleId) -> bool {
        a != b && !self.gt(a, b) && !self.gt(b, a)
    }

    /// Whether rule `a` has precedence over **any** rule. Closure rows are
    /// monotone under Def 6.5, so a rule with an all-zero row can never be
    /// recruited into a pair closure — the confluence sweep uses this as a
    /// fast path.
    pub fn dominates_any(&self, a: usize) -> bool {
        self.rows[a * self.words..(a + 1) * self.words]
            .iter()
            .any(|&w| w != 0)
    }

    /// The paper's `Choose`: the subset of `set` with no member of `set`
    /// having precedence over them.
    pub fn choose(&self, set: &[RuleId]) -> Vec<RuleId> {
        set.iter()
            .copied()
            .filter(|&r| !set.iter().any(|&q| self.gt(q, r)))
            .collect()
    }

    /// Number of ordered pairs (for reporting).
    pub fn ordered_pair_count(&self) -> usize {
        self.pairs
    }

    /// Every ordered pair `(higher, lower)` in the closure, ascending by
    /// `(higher, lower)`. The incremental analyzer diffs consecutive
    /// closures with this to find which rules' orderings changed.
    pub fn gt_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.pairs);
        for i in 0..self.n {
            for k in 0..self.words {
                let mut w = self.rows[i * self.words + k];
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    out.push((i, k * 64 + bit));
                    w &= w - 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("r{i}")).collect()
    }

    #[test]
    fn transitivity() {
        // r0 > r1 > r2 implies r0 > r2.
        let p = PriorityOrder::from_edges(&names(3), &[(0, 1), (1, 2)]).unwrap();
        assert!(p.gt(RuleId(0), RuleId(2)));
        assert!(!p.gt(RuleId(2), RuleId(0)));
        assert!(!p.unordered(RuleId(0), RuleId(2)));
    }

    #[test]
    fn cycle_rejected() {
        let err = PriorityOrder::from_edges(&names(3), &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        let EngineError::PriorityCycle(rs) = err else {
            panic!()
        };
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn cycle_report_matches_warshall_diagonal() {
        // r0 > r1 > r2 > r1, r3 > r0: only {r1, r2} lie on a cycle — the
        // error must name exactly the cyclic rules, in index order.
        let err =
            PriorityOrder::from_edges(&names(4), &[(0, 1), (1, 2), (2, 1), (3, 0)]).unwrap_err();
        let EngineError::PriorityCycle(rs) = err else {
            panic!()
        };
        assert_eq!(rs, vec!["r1".to_owned(), "r2".to_owned()]);
    }

    #[test]
    fn self_edge_rejected() {
        assert!(PriorityOrder::from_edges(&names(1), &[(0, 0)]).is_err());
    }

    #[test]
    fn unordered_pairs() {
        let p = PriorityOrder::from_edges(&names(3), &[(0, 1)]).unwrap();
        assert!(p.unordered(RuleId(0), RuleId(2)));
        assert!(p.unordered(RuleId(1), RuleId(2)));
        assert!(!p.unordered(RuleId(0), RuleId(1)));
        assert!(!p.unordered(RuleId(1), RuleId(1)));
    }

    #[test]
    fn choose_filters_dominated() {
        let p = PriorityOrder::from_edges(&names(4), &[(0, 1), (2, 3)]).unwrap();
        // From {r1, r0, r3}: r0 dominates r1; r3's dominator r2 is absent.
        let picked = p.choose(&[RuleId(1), RuleId(0), RuleId(3)]);
        assert_eq!(picked, vec![RuleId(0), RuleId(3)]);
        // Choose over the empty set is empty.
        assert!(p.choose(&[]).is_empty());
    }

    #[test]
    fn empty_order_everything_unordered() {
        let p = PriorityOrder::empty(3);
        assert!(p.unordered(RuleId(0), RuleId(1)));
        assert_eq!(p.ordered_pair_count(), 0);
        assert!(!p.dominates_any(0));
        let picked = p.choose(&[RuleId(2), RuleId(0)]);
        assert_eq!(picked, vec![RuleId(2), RuleId(0)]);
    }

    #[test]
    fn closure_matches_warshall_on_random_dags() {
        // Differential check against a reference Warshall closure over
        // seeded random DAGs (downward edges only, so always acyclic).
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 7, 65, 130] {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 5 == 0 {
                        edges.push((i, j));
                    }
                }
            }
            let p = PriorityOrder::from_edges(&names(n), &edges).unwrap();
            let mut gt = vec![false; n * n];
            for &(hi, lo) in &edges {
                gt[hi * n + lo] = true;
            }
            for k in 0..n {
                for i in 0..n {
                    if gt[i * n + k] {
                        for j in 0..n {
                            if gt[k * n + j] {
                                gt[i * n + j] = true;
                            }
                        }
                    }
                }
            }
            let mut pairs = 0usize;
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(p.gt(RuleId(i), RuleId(j)), gt[i * n + j], "({i},{j}) n={n}");
                    pairs += usize::from(gt[i * n + j]);
                }
            }
            assert_eq!(p.ordered_pair_count(), pairs);
            let listed = p.gt_pairs();
            assert_eq!(listed.len(), pairs);
            assert!(listed.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
