//! The rule-processing loop (paper Section 2 semantics).
//!
//! At an assertion point the initial (user-generated) transition triggers
//! some rules; the processor repeatedly picks an eligible triggered rule,
//! checks its condition against its triggering transition, executes its
//! action, and re-derives the triggered set — until no rules are triggered
//! (*quiescence*), a rollback occurs, or the consideration limit is hit
//! (possible nontermination).

use std::sync::OnceLock;

use starling_sql::eval::{exec_action, ActionOutcome};
use starling_sql::plan::{eval_condition, execute_action, PlanMode};
use starling_storage::Database;

use crate::budget::{Budget, TruncationReason};
use crate::error::EngineError;
use crate::observable::{ObservableEvent, ObservableKind};
use crate::ops::TupleOp;
use crate::ruleset::{RuleId, RuleSet};
use crate::state::ExecState;
use crate::strategy::ChoiceStrategy;

/// How a processor evaluates rule conditions and actions.
///
/// This used to be a process-global atomic, which made it impossible for
/// two concurrent sessions (e.g. server connections) to use different
/// evaluation paths — one flipping the switch flipped everyone. It is now
/// an explicit per-processor value: the environment variable is only the
/// *default*, never a global override.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Compiled physical plans executed batch-at-a-time: base-table scans
    /// borrow cached columnar views, vectorizable filters run as
    /// whole-column kernels over selection bitmaps, and non-vectorizable
    /// units fall back to row-at-a-time plan execution per statement (the
    /// fast path, and the default).
    Columnar,
    /// Compiled physical plans executed row-at-a-time (the PR-3 engine) —
    /// kept as the differential oracle for the columnar kernels.
    Plan,
    /// The AST interpreter for everything — the differential oracle used to
    /// cross-check the plan layer.
    Interp,
}

impl EvalMode {
    /// The process default, read once per process and cached:
    ///
    /// * `STARLING_FORCE_INTERP` set to a non-empty value other than `0`
    ///   forces [`EvalMode::Interp`] (kept for backward compatibility);
    /// * otherwise `STARLING_EVAL_MODE` selects `columnar`, `row` (also
    ///   accepted as `plan`), or `interp`;
    /// * otherwise [`EvalMode::Columnar`].
    pub fn from_env() -> Self {
        static FROM_ENV: OnceLock<EvalMode> = OnceLock::new();
        *FROM_ENV.get_or_init(|| {
            if std::env::var("STARLING_FORCE_INTERP").is_ok_and(|v| !v.is_empty() && v != "0") {
                return EvalMode::Interp;
            }
            match std::env::var("STARLING_EVAL_MODE").as_deref() {
                Ok("interp") => EvalMode::Interp,
                Ok("row") | Ok("plan") => EvalMode::Plan,
                _ => EvalMode::Columnar,
            }
        })
    }

    /// Whether this mode uses compiled plans.
    pub fn uses_plans(self) -> bool {
        matches!(self, EvalMode::Plan | EvalMode::Columnar)
    }

    /// The plan-execution strategy this mode selects (meaningful only when
    /// [`Self::uses_plans`]).
    pub fn plan_mode(self) -> PlanMode {
        match self {
            EvalMode::Columnar => PlanMode::Columnar,
            _ => PlanMode::Row,
        }
    }
}

impl Default for EvalMode {
    /// The environment-derived default (see [`EvalMode::from_env`]).
    fn default() -> Self {
        EvalMode::from_env()
    }
}

/// Record of one rule consideration.
#[derive(Clone, Debug, PartialEq)]
pub struct Consideration {
    /// The rule considered.
    pub rule: RuleId,
    /// Whether its condition held and its action executed.
    pub fired: bool,
}

/// How a rule-processing run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// No rules triggered: normal termination.
    Quiescent,
    /// A rule action rolled the transaction back.
    RolledBack,
    /// A resource budget was exhausted (see [`RunResult::truncation`] for
    /// which) — rule processing may not terminate.
    LimitExceeded,
    /// An engine error occurred mid-run; the transaction was aborted
    /// crash-consistently (the state was restored to the transaction
    /// snapshot). [`RunResult::error`] carries the cause.
    Aborted,
}

/// The result of running rule processing at an assertion point.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Every consideration, in order.
    pub considerations: Vec<Consideration>,
    /// Observable events, in order of occurrence.
    pub observables: Vec<ObservableEvent>,
    /// How the run ended.
    pub outcome: Outcome,
    /// Which budget was exhausted; `Some` iff the outcome is
    /// [`Outcome::LimitExceeded`].
    pub truncation: Option<TruncationReason>,
    /// The error that aborted the run; `Some` iff the outcome is
    /// [`Outcome::Aborted`].
    pub error: Option<EngineError>,
}

impl RunResult {
    /// Number of rules that actually fired.
    pub fn fired_count(&self) -> usize {
        self.considerations.iter().filter(|c| c.fired).count()
    }
}

/// The outcome of considering a single rule from a state.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Whether the condition held and the action ran.
    pub fired: bool,
    /// Whether the action rolled back.
    pub rolled_back: bool,
    /// Observable events emitted by the action.
    pub observables: Vec<ObservableEvent>,
    /// The abstract operations `O'` executed by the action (Lemma 4.1) —
    /// one entry per touched tuple-operation kind, deduplicated.
    pub ops: std::collections::BTreeSet<starling_storage::Op>,
}

/// Whether rule `id`'s condition holds in `state` against its current
/// pending transition — **without mutating anything**.
///
/// This is the condition check of [`consider_rule`] factored out so the
/// execution-graph explorer can decide whether an edge fires *before*
/// cloning the source state: a non-firing consideration changes nothing but
/// the rule's pending transition, so its successor can be built by a cheap
/// copy-on-write clone plus [`ExecState::reset_pending`], skipping the
/// action machinery entirely.
pub fn rule_fires(
    rules: &RuleSet,
    state: &ExecState,
    id: RuleId,
    mode: EvalMode,
) -> Result<bool, EngineError> {
    let rule = rules.get(id);
    match (&rule.def.condition, &rule.plan.condition) {
        (None, _) => Ok(true),
        (Some(cond), plan) => {
            let binding = state.transition_binding(rules, id);
            let v = match plan {
                Some(plan) if mode.uses_plans() => {
                    eval_condition(plan, &state.db, Some(&binding), mode.plan_mode())?
                }
                _ => {
                    let ctx = starling_sql::eval::EvalCtx {
                        db: &state.db,
                        transitions: Some(&binding),
                    };
                    let mut env = starling_sql::eval::Env::new(&ctx);
                    starling_sql::eval::expr::eval_bool(cond, &mut env)?
                }
            };
            Ok(starling_sql::eval::expr::is_true(&v))
        }
    }
}

/// Considers rule `id` from `state`, mutating it in place: the edge
/// relation of the execution-graph model (Lemma 4.1), shared by the
/// [`Processor`] and the [`crate::exec_graph`] explorer.
///
/// Semantics:
/// 1. the rule's transition tables are fixed from its pending transition;
/// 2. its pending transition resets (it has now "processed" it);
/// 3. if the condition holds, actions execute in order, their effects
///    absorbed into **every** rule's pending transition (including this
///    rule's fresh one);
/// 4. `ROLLBACK` restores `txn_snapshot` and clears all pending transitions.
pub fn consider_rule(
    rules: &RuleSet,
    state: &mut ExecState,
    id: RuleId,
    txn_snapshot: &Database,
    mode: EvalMode,
) -> Result<StepOutcome, EngineError> {
    if rule_fires(rules, state, id, mode)? {
        consider_fired_rule(rules, state, id, txn_snapshot, mode)
    } else {
        state.reset_pending(id);
        Ok(StepOutcome::unfired())
    }
}

/// Replays a fixed sequence of rule considerations from `state`, exactly as
/// the execution-graph explorer expands edges: each step checks the
/// condition, then either runs the fired consideration or resets the
/// pending transition. `txn_snapshot` is the transaction-start database
/// (the rollback target), as in exploration.
///
/// This is the provenance subsystem's cross-check primitive: a divergence
/// witness is only reported after both of its firing sequences replay here
/// to the claimed (distinct) final digests.
pub fn replay_rule_sequence(
    rules: &RuleSet,
    state: &mut ExecState,
    txn_snapshot: &Database,
    seq: &[RuleId],
    mode: EvalMode,
) -> Result<Vec<StepOutcome>, EngineError> {
    let mut steps = Vec::with_capacity(seq.len());
    for &id in seq {
        steps.push(consider_rule(rules, state, id, txn_snapshot, mode)?);
    }
    Ok(steps)
}

impl StepOutcome {
    /// The outcome of a consideration whose condition was false: nothing
    /// executed, nothing observed.
    pub fn unfired() -> Self {
        StepOutcome {
            fired: false,
            rolled_back: false,
            observables: Vec::new(),
            ops: std::collections::BTreeSet::new(),
        }
    }
}

/// Considers rule `id` assuming its condition has already been checked and
/// holds (see [`rule_fires`]): fixes the transition tables, resets the
/// pending transition, and executes the actions.
pub fn consider_fired_rule(
    rules: &RuleSet,
    state: &mut ExecState,
    id: RuleId,
    txn_snapshot: &Database,
    mode: EvalMode,
) -> Result<StepOutcome, EngineError> {
    let rule = rules.get(id);
    let binding = state.transition_binding(rules, id);
    state.reset_pending(id);

    let mut outcome = StepOutcome {
        fired: true,
        rolled_back: false,
        observables: Vec::new(),
        ops: std::collections::BTreeSet::new(),
    };

    let use_plans = mode.uses_plans();
    for (action, plan) in rule.def.actions.iter().zip(&rule.plan.actions) {
        let acted = if use_plans {
            execute_action(plan, &mut state.db, Some(&binding), mode.plan_mode())?
        } else {
            exec_action(action, &mut state.db, Some(&binding))?
        };
        match acted {
            ActionOutcome::Effects(fx) => {
                let ops: Vec<TupleOp> = fx.into_iter().map(TupleOp::from).collect();
                for op in &ops {
                    match op {
                        TupleOp::Insert { table, .. } => {
                            outcome
                                .ops
                                .insert(starling_storage::Op::Insert(table.clone()));
                        }
                        TupleOp::Delete { table, .. } => {
                            outcome
                                .ops
                                .insert(starling_storage::Op::Delete(table.clone()));
                        }
                        TupleOp::Update { table, cols, .. } => {
                            for c in cols {
                                outcome
                                    .ops
                                    .insert(starling_storage::Op::update(table.clone(), c.clone()));
                            }
                        }
                    }
                }
                state.absorb(&ops);
            }
            ActionOutcome::Rows(rs) => {
                outcome.observables.push(ObservableEvent {
                    rule: id,
                    kind: ObservableKind::Rows(rs),
                });
            }
            ActionOutcome::Rollback => {
                outcome.observables.push(ObservableEvent {
                    rule: id,
                    kind: ObservableKind::Rollback,
                });
                outcome.rolled_back = true;
                state.db = txn_snapshot.clone();
                state.clear_pending();
                return Ok(outcome);
            }
        }
    }
    Ok(outcome)
}

/// The rule processor.
#[derive(Clone, Copy, Debug)]
pub struct Processor<'r> {
    rules: &'r RuleSet,
    /// Upper bound on considerations before declaring [`Outcome::LimitExceeded`].
    pub max_considerations: usize,
    /// Optional wall-clock bound on a run.
    pub deadline: Option<std::time::Duration>,
    /// How conditions and actions are evaluated. Per-processor, so
    /// concurrent sessions can never flip each other's evaluation path.
    pub eval_mode: EvalMode,
}

impl<'r> Processor<'r> {
    /// A processor over a rule set with the default limit (10 000
    /// considerations), no deadline, and the environment-default
    /// [`EvalMode`].
    pub fn new(rules: &'r RuleSet) -> Self {
        Processor {
            rules,
            max_considerations: 10_000,
            deadline: None,
            eval_mode: EvalMode::default(),
        }
    }

    /// Sets the consideration limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.max_considerations = limit;
        self
    }

    /// Sets the evaluation mode.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Adopts the processor-relevant bounds of a [`Budget`]
    /// (`max_considerations` and `deadline`).
    pub fn with_budget(mut self, budget: &Budget) -> Self {
        self.max_considerations = budget.max_considerations;
        self.deadline = budget.deadline;
        self
    }

    /// Runs rule processing from `state` to quiescence (or rollback /
    /// budget exhaustion / abort). `txn_snapshot` is the database at
    /// transaction start, restored on rollback — and on abort.
    ///
    /// **Crash consistency**: if considering a rule fails with an
    /// [`EngineError`] (including injected storage faults), the run does
    /// *not* leave `state` mid-mutation. The database is restored to
    /// `txn_snapshot`, all pending transitions are cleared, and the result
    /// carries [`Outcome::Aborted`] with the error in
    /// [`RunResult::error`]. The `Result` wrapper is reserved for future
    /// setup-level failures; run-level errors surface through the outcome.
    pub fn run(
        &self,
        state: &mut ExecState,
        txn_snapshot: &Database,
        strategy: &mut dyn ChoiceStrategy,
    ) -> Result<RunResult, EngineError> {
        let budget = Budget {
            max_considerations: self.max_considerations,
            deadline: self.deadline,
            ..Budget::default()
        };
        let clock = budget.start_clock();
        let mut result = RunResult {
            considerations: Vec::new(),
            observables: Vec::new(),
            outcome: Outcome::Quiescent,
            truncation: None,
            error: None,
        };
        loop {
            let triggered = state.triggered(self.rules);
            if triggered.is_empty() {
                result.outcome = Outcome::Quiescent;
                return Ok(result);
            }
            if result.considerations.len() >= self.max_considerations {
                result.outcome = Outcome::LimitExceeded;
                result.truncation = Some(TruncationReason::Considerations);
                return Ok(result);
            }
            if clock.expired() {
                result.outcome = Outcome::LimitExceeded;
                result.truncation = Some(TruncationReason::Deadline);
                return Ok(result);
            }
            let eligible = self.rules.priority().choose(&triggered);
            debug_assert!(!eligible.is_empty());
            let picked = strategy.choose(&eligible);
            let step = match consider_rule(self.rules, state, picked, txn_snapshot, self.eval_mode)
            {
                Ok(step) => step,
                Err(e) => {
                    // Crash-consistent abort: the failed consideration may
                    // have partially executed its actions. Discard every
                    // effect since transaction start.
                    state.db = txn_snapshot.clone();
                    state.clear_pending();
                    result.outcome = Outcome::Aborted;
                    result.error = Some(e);
                    return Ok(result);
                }
            };
            result.considerations.push(Consideration {
                rule: picked,
                fired: step.fired,
            });
            result.observables.extend(step.observables);
            if step.rolled_back {
                result.outcome = Outcome::RolledBack;
                return Ok(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{ColumnDef, TableSchema, Value, ValueType};

    use crate::strategy::{FirstEligible, LastEligible};

    use super::*;

    fn db_with(tables: &[(&str, &[&str])]) -> Database {
        let mut db = Database::new();
        for (name, cols) in tables {
            db.create_table(
                TableSchema::new(
                    *name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, ValueType::Int))
                        .collect(),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    fn rules(db: &Database, src: &str) -> RuleSet {
        let defs: Vec<_> = parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect();
        RuleSet::compile(&defs, db.catalog()).unwrap()
    }

    fn ins(db: &mut Database, table: &str, vals: &[i64]) -> TupleOp {
        let row: Vec<Value> = vals.iter().map(|v| Value::Int(*v)).collect();
        let id = db.insert(table, row.clone()).unwrap();
        TupleOp::Insert {
            table: table.into(),
            id,
            row,
        }
    }

    /// Cascade: insert into t triggers a rule copying into u; the copy
    /// triggers a second rule updating u.
    #[test]
    fn cascading_rules_run_to_quiescence() {
        let mut db = db_with(&[("t", &["a"]), ("u", &["b", "seen"])]);
        let rs = rules(
            &db,
            "create rule copy on t when inserted then \
               insert into u select a, 0 from inserted end;
             create rule mark on u when inserted then \
               update u set seen = 1 where seen = 0 end;",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[7]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        // copy fired, mark fired (update u does not retrigger mark: it's
        // insert-triggered, and u's update is an update).
        assert_eq!(res.fired_count(), 2);
        let u = st.db.table("u").unwrap();
        assert_eq!(u.len(), 1);
        let (_, row) = u.iter().next().unwrap();
        assert_eq!(row, &vec![Value::Int(7), Value::Int(1)]);
    }

    /// An obviously nonterminating rule set hits the limit.
    #[test]
    fn ping_pong_hits_limit() {
        let mut db = db_with(&[("t", &["a"]), ("u", &["b"])]);
        let rs = rules(
            &db,
            "create rule ping on t when inserted then insert into u values (1) end;
             create rule pong on u when inserted then insert into t values (1) end;",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[1]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .with_limit(50)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::LimitExceeded);
        assert_eq!(res.considerations.len(), 50);
        assert_eq!(res.truncation, Some(TruncationReason::Considerations));
        assert!(res.error.is_none());
    }

    /// A zero wall-clock deadline stops the run before any consideration
    /// and names the deadline as the exhausted budget.
    #[test]
    fn zero_deadline_reports_deadline_truncation() {
        let mut db = db_with(&[("t", &["a"]), ("u", &["b"])]);
        let rs = rules(
            &db,
            "create rule ping on t when inserted then insert into u values (1) end;
             create rule pong on u when inserted then insert into t values (1) end;",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[1]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .with_budget(&Budget::default().with_deadline(std::time::Duration::ZERO))
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::LimitExceeded);
        assert_eq!(res.truncation, Some(TruncationReason::Deadline));
        assert!(res.considerations.is_empty());
    }

    /// An injected storage fault mid-run aborts crash-consistently: the
    /// state is exactly the transaction snapshot, nothing in between.
    #[test]
    fn injected_fault_aborts_crash_consistently() {
        use starling_storage::{FaultPlan, FaultSpec, StorageError};
        let mut db = db_with(&[("t", &["a"]), ("u", &["b"])]);
        let rs = rules(
            &db,
            "create rule copy on t when inserted then \
               insert into u select a from inserted end",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[7]);
        // Kill the rule action's insert into u.
        db.install_fault_plan(FaultPlan::single(FaultSpec::nth(0).on_table("u")));
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Aborted);
        let err = res.error.as_ref().expect("abort carries its cause");
        assert!(err.is_injected_fault(), "{err}");
        assert!(matches!(
            err.storage_cause(),
            Some(StorageError::Injected { .. })
        ));
        // The database is the snapshot — the user's insert into t is gone
        // too, not just the rule's half-done work.
        assert_eq!(st.db.state_digest(), snapshot.state_digest());
        assert!(st.triggered(&rs).is_empty());
    }

    /// A false condition means the rule is considered but does not fire, and
    /// its transition is consumed.
    #[test]
    fn false_condition_consumes_transition() {
        let mut db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule r on t when inserted \
             if exists (select * from inserted where a > 100) \
             then delete from t end",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[5]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        assert_eq!(res.considerations.len(), 1);
        assert!(!res.considerations[0].fired);
        assert_eq!(st.db.table("t").unwrap().len(), 1);
    }

    /// Rollback restores the transaction snapshot.
    #[test]
    fn rollback_restores_snapshot() {
        let mut db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule guard on t when inserted \
             if exists (select * from inserted where a < 0) \
             then rollback end",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[-1]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::RolledBack);
        assert!(st.db.table("t").unwrap().is_empty());
        assert_eq!(res.observables.len(), 1);
        assert!(matches!(res.observables[0].kind, ObservableKind::Rollback));
    }

    /// Priorities decide which of two triggered rules runs first.
    #[test]
    fn priority_respected() {
        let mut db = db_with(&[("t", &["a"]), ("log", &["who"])]);
        let rs = rules(
            &db,
            "create rule second on t when inserted then \
               insert into log values (2) follows first end;
             create rule first on t when inserted then \
               insert into log values (1) end;",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[1]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        // Even an adversarial strategy cannot run `second` first: it is not
        // eligible while `first` is triggered.
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut LastEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        let who: Vec<i64> = st
            .db
            .table("log")
            .unwrap()
            .iter()
            .map(|(_, r)| match r[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(who, vec![1, 2]);
    }

    /// A rule that triggers itself via a bounded condition terminates
    /// (the paper's "monotonic update" special case).
    #[test]
    fn self_triggering_with_bounded_condition_terminates() {
        let mut db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule inc on t when inserted, updated(a) \
             if exists (select * from t where a < 3) \
             then update t set a = a + 1 where a < 3 end",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[0]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .with_limit(100)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        let (_, row) = st.db.table("t").unwrap().iter().next().unwrap();
        assert_eq!(row[0], Value::Int(3));
    }

    /// Select actions surface as observable row events.
    #[test]
    fn select_action_is_observable() {
        let mut db = db_with(&[("t", &["a"])]);
        let rs = rules(
            &db,
            "create rule peek on t when inserted then select a from inserted end",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[42]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.observables.len(), 1);
        let ObservableKind::Rows(rs_out) = &res.observables[0].kind else {
            panic!()
        };
        assert_eq!(rs_out.rows, vec![vec![Value::Int(42)]]);
    }

    /// Transition tables see the *net* composite transition: a tuple
    /// inserted then deleted by an earlier rule is invisible.
    #[test]
    fn net_effect_untriggers() {
        let mut db = db_with(&[("t", &["a"]), ("audit", &["a"])]);
        let rs = rules(
            &db,
            // `purge` runs first (priority) and deletes the inserted tuple;
            // `audit_ins` is then no longer triggered.
            "create rule purge on t when inserted then \
               delete from t where a < 0 precedes audit_ins end;
             create rule audit_ins on t when inserted then \
               insert into audit select a from inserted end;",
        );
        let snapshot = db.clone();
        let op = ins(&mut db, "t", &[-5]);
        let mut st = ExecState::new(db, rs.len(), &[op]);
        let res = Processor::new(&rs)
            .run(&mut st, &snapshot, &mut FirstEligible)
            .unwrap();
        assert_eq!(res.outcome, Outcome::Quiescent);
        // audit_ins was untriggered by purge's delete (insert∘delete = ∅):
        // only purge was considered.
        assert_eq!(res.considerations.len(), 1);
        assert!(st.db.table("audit").unwrap().is_empty());
    }
}
