//! Compiled rule sets: the analyzed set `R` of paper Section 3.

use std::collections::BTreeMap;
use std::fmt;

use starling_sql::validate::validate_rule;
use starling_sql::{RuleDef, RuleSignature};
use starling_storage::Catalog;

use crate::error::EngineError;
use crate::priority::PriorityOrder;

/// Index of a rule within its [`RuleSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub usize);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r#{}", self.0)
    }
}

/// A validated rule with its precomputed static signature and physical plan.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Index in the rule set.
    pub id: RuleId,
    /// The rule definition as written.
    pub def: RuleDef,
    /// `Triggered-By` / `Performs` / `Reads` / `Observable` (Section 3).
    pub sig: RuleSignature,
    /// Compiled condition/action plans (see [`starling_sql::plan`]),
    /// built once here and evaluated on every consideration.
    pub plan: starling_sql::plan::RulePlan,
}

impl CompiledRule {
    /// The rule's name.
    pub fn name(&self) -> &str {
        &self.def.name
    }
}

/// A compiled, validated set of rules plus the priority order `P`.
#[derive(Clone, Debug)]
pub struct RuleSet {
    rules: Vec<CompiledRule>,
    priority: PriorityOrder,
    by_name: BTreeMap<String, RuleId>,
    catalog: Catalog,
}

impl RuleSet {
    /// Compiles rule definitions against a catalog: validates each rule,
    /// computes signatures, resolves `precedes`/`follows` names, and builds
    /// the priority closure.
    pub fn compile(defs: &[RuleDef], catalog: &Catalog) -> Result<Self, EngineError> {
        let mut by_name = BTreeMap::new();
        for (i, def) in defs.iter().enumerate() {
            if by_name.insert(def.name.clone(), RuleId(i)).is_some() {
                return Err(EngineError::DuplicateRule(def.name.clone()));
            }
        }

        let mut rules = Vec::with_capacity(defs.len());
        let mut edges = Vec::new();
        for (i, def) in defs.iter().enumerate() {
            validate_rule(def, catalog)?;
            let sig = RuleSignature::of_rule(def, catalog)?;
            let resolve = |name: &str| -> Result<RuleId, EngineError> {
                by_name
                    .get(name)
                    .copied()
                    .ok_or_else(|| EngineError::UnknownRule {
                        rule: def.name.clone(),
                        referenced: name.to_owned(),
                    })
            };
            for p in &def.precedes {
                edges.push((i, resolve(p)?.0));
            }
            for fl in &def.follows {
                edges.push((resolve(fl)?.0, i));
            }
            let plan = starling_sql::plan::compile_rule(def, catalog);
            rules.push(CompiledRule {
                id: RuleId(i),
                def: def.clone(),
                sig,
                plan,
            });
        }

        let names: Vec<String> = defs.iter().map(|d| d.name.clone()).collect();
        let priority = PriorityOrder::from_edges(&names, &edges)?;
        Ok(RuleSet {
            rules,
            priority,
            by_name,
            catalog: catalog.clone(),
        })
    }

    /// The catalog the rules were compiled against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All rules, in definition order.
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// A rule by id.
    pub fn get(&self, id: RuleId) -> &CompiledRule {
        &self.rules[id.0]
    }

    /// A rule by name.
    pub fn by_name(&self, name: &str) -> Option<&CompiledRule> {
        self.by_name.get(name).map(|id| self.get(*id))
    }

    /// The priority order `P` (transitively closed).
    pub fn priority(&self) -> &PriorityOrder {
        &self.priority
    }

    /// All rule ids.
    pub fn ids(&self) -> impl Iterator<Item = RuleId> + '_ {
        (0..self.rules.len()).map(RuleId)
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(TableSchema::new("t", vec![ColumnDef::new("a", ValueType::Int)]).unwrap())
            .unwrap();
        c
    }

    fn defs(src: &str) -> Vec<RuleDef> {
        parse_script(src)
            .unwrap()
            .into_iter()
            .filter_map(|s| match s {
                Statement::CreateRule(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn compile_resolves_priorities() {
        let rs = RuleSet::compile(
            &defs(
                "create rule a on t when inserted then delete from t precedes b end;
                 create rule b on t when deleted then delete from t end;
                 create rule c on t when inserted then delete from t follows b end;",
            ),
            &catalog(),
        )
        .unwrap();
        assert_eq!(rs.len(), 3);
        let a = rs.by_name("a").unwrap().id;
        let b = rs.by_name("b").unwrap().id;
        let c = rs.by_name("c").unwrap().id;
        assert!(rs.priority().gt(a, b));
        assert!(rs.priority().gt(b, c));
        assert!(rs.priority().gt(a, c)); // transitivity
    }

    #[test]
    fn duplicate_name_rejected() {
        let err = RuleSet::compile(
            &defs(
                "create rule a on t when inserted then delete from t end;
                 create rule a on t when deleted then delete from t end;",
            ),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateRule(_)));
    }

    #[test]
    fn unknown_reference_rejected() {
        let err = RuleSet::compile(
            &defs("create rule a on t when inserted then delete from t precedes zz end"),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::UnknownRule { .. }));
    }

    #[test]
    fn priority_cycle_rejected() {
        let err = RuleSet::compile(
            &defs(
                "create rule a on t when inserted then delete from t precedes b end;
                 create rule b on t when deleted then delete from t precedes a end;",
            ),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::PriorityCycle(_)));
    }

    #[test]
    fn invalid_rule_rejected() {
        let err = RuleSet::compile(
            &defs("create rule a on t when inserted then delete from zz end"),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Storage(_) | EngineError::Sql(_)));
    }

    #[test]
    fn signatures_available() {
        let rs = RuleSet::compile(
            &defs("create rule a on t when inserted then update t set a = 1 end"),
            &catalog(),
        )
        .unwrap();
        let r = rs.by_name("a").unwrap();
        assert_eq!(r.sig.performs.len(), 1);
        assert!(!r.sig.observable);
    }
}
