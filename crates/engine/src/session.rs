//! A small interactive front end: executes scripts (DDL, DML, rule
//! definitions, certification directives), accumulates the user transition,
//! and runs rule processing at assertion points.
//!
//! This is the runtime counterpart of the paper's "rule assertion points":
//! user statements build up a transition; [`Session::assert_rules`] processes
//! rules against it; [`Session::commit`] ends the transaction.

use std::sync::Arc;

use starling_sql::ast::{Directive, Statement};
use starling_sql::eval::{exec_action, ActionOutcome, ResultSet};
use starling_sql::parse_script;
use starling_storage::wal::{SyncPolicy, WalStore};
use starling_storage::Database;

use crate::durability::{Durability, DEFAULT_SNAPSHOT_EVERY};
use crate::error::EngineError;
use crate::ops::TupleOp;
use crate::processor::{EvalMode, Outcome, Processor, RunResult};
use crate::ruleset::RuleSet;
use crate::state::ExecState;
use crate::strategy::ChoiceStrategy;

/// Output of executing one script statement.
#[derive(Clone, Debug, PartialEq)]
pub enum ScriptOutput {
    /// A table was created.
    TableCreated(String),
    /// A rule was defined.
    RuleCreated(String),
    /// A rule was dropped.
    RuleDropped(String),
    /// A rule's orderings were amended.
    RuleAltered(String),
    /// DML executed, touching this many tuples.
    Modified(usize),
    /// A query returned rows.
    Rows(ResultSet),
    /// A certification directive was recorded.
    DirectiveRecorded,
    /// The user rolled the transaction back.
    RolledBack,
}

/// An interactive session: database + rule definitions + pending user
/// transition + recorded certifications.
pub struct Session {
    db: Database,
    rule_defs: Vec<starling_sql::RuleDef>,
    compiled: Option<Arc<RuleSet>>,
    txn_snapshot: Option<Database>,
    pending_ops: Vec<TupleOp>,
    directives: Vec<Directive>,
    durability: Option<Durability>,
    /// Consideration limit for assertion points.
    pub max_considerations: usize,
    /// Optional wall-clock bound on each assertion point's rule processing.
    pub deadline: Option<std::time::Duration>,
    /// How this session's rule processing evaluates conditions and actions.
    /// Per-session state: concurrent sessions cannot affect each other.
    pub eval_mode: EvalMode,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Session {
            db: Database::new(),
            rule_defs: Vec::new(),
            compiled: None,
            txn_snapshot: None,
            pending_ops: Vec::new(),
            directives: Vec::new(),
            durability: None,
            max_considerations: 10_000,
            deadline: None,
            eval_mode: EvalMode::default(),
        }
    }

    /// A session restored from pre-built parts: a database snapshot
    /// (copy-on-write, so this is cheap), rule definitions, an optional
    /// already-compiled rule set (shared via `Arc` — N sessions of the same
    /// rule program compile once), and recorded directives.
    ///
    /// This is the server's snapshot-handout path: each connection gets its
    /// own session seeded from a cached program without re-parsing or
    /// re-compiling anything.
    pub fn restore(
        db: Database,
        rule_defs: Vec<starling_sql::RuleDef>,
        compiled: Option<Arc<RuleSet>>,
        directives: Vec<Directive>,
    ) -> Self {
        Session {
            db,
            rule_defs,
            compiled,
            txn_snapshot: None,
            pending_ops: Vec::new(),
            directives,
            durability: None,
            max_considerations: 10_000,
            deadline: None,
            eval_mode: EvalMode::default(),
        }
    }

    /// Opens (or creates) the durable store at `dir` and builds a session
    /// from its recovered state: latest valid snapshot, WAL tail replayed
    /// with torn records truncated, digests verified, and the rule program
    /// re-parsed and re-validated against the recovered catalog.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        sync: SyncPolicy,
    ) -> Result<Session, EngineError> {
        let (store, recovered) = WalStore::open(dir, sync)?;
        let mut s = Session::new();
        s.db = recovered.db;
        if !recovered.rules_text.is_empty() {
            for stmt in parse_script(&recovered.rules_text)? {
                match stmt {
                    Statement::CreateRule(_) | Statement::Directive(_) => {
                        s.execute(&stmt)?;
                    }
                    other => {
                        return Err(EngineError::InvalidStatement(format!(
                            "recovered rule program contains a non-rule statement: {other}"
                        )))
                    }
                }
            }
        }
        s.durability = Some(Durability {
            store,
            base_db: s.db.clone(),
            base_defs: s.rule_defs.clone(),
            base_directives: s.directives.clone(),
            rules_text: Durability::render_rules(&s.rule_defs, &s.directives),
            commits_since_snapshot: 0,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        });
        Ok(s)
    }

    /// Attaches durability to this in-memory session, persisting its entire
    /// current state as the first logged commit. The store at `dir` must be
    /// empty (use [`Session::open_durable`] to resume an existing store —
    /// silently shadowing persisted state with in-memory state would lose
    /// it).
    pub fn persist_to(
        &mut self,
        dir: impl AsRef<std::path::Path>,
        sync: SyncPolicy,
    ) -> Result<(), EngineError> {
        let dir = dir.as_ref();
        let (mut store, recovered) = WalStore::open(dir, sync)?;
        if !recovered.is_empty() {
            return Err(EngineError::InvalidStatement(format!(
                "durable store at `{}` already holds state; attach to it instead of re-initializing",
                dir.display()
            )));
        }
        store.set_fault_state(self.db.fault_state().cloned());
        self.durability = Some(Durability {
            store,
            base_db: Database::new(),
            base_defs: Vec::new(),
            base_directives: Vec::new(),
            rules_text: String::new(),
            commits_since_snapshot: 0,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        });
        self.persist_changes()
    }

    /// Whether a durable store is attached.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable attachment's last acknowledged state, if attached: what
    /// recovering the store right now would yield.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// Detaches the durable store, handing it to the caller (the server's
    /// checkpoint-restore dance moves the attachment onto the restored
    /// session).
    pub fn take_durability(&mut self) -> Option<Durability> {
        self.durability.take()
    }

    /// Re-attaches a durable store taken from another session. The caller
    /// must ensure this session's state matches the attachment's
    /// acknowledged base (true whenever the session was restored from a
    /// checkpoint taken at a commit point); the next commit diffs against
    /// that base.
    pub fn set_durability(&mut self, durability: Option<Durability>) {
        self.durability = durability;
    }

    /// Sets how many commits accumulate before the log rotates into a
    /// snapshot (default 64; tests lower it to exercise rotation).
    pub fn set_snapshot_every(&mut self, commits: u64) {
        if let Some(dur) = &mut self.durability {
            dur.snapshot_every = commits.max(1);
        }
    }

    /// Persists any un-acknowledged difference between the session state
    /// and the durable base as one commit record — called by
    /// [`Session::commit`] at acknowledged outcomes, and directly by the
    /// server after `certify`/`order` refinements (which change the rule
    /// program without an assertion point).
    ///
    /// **Failure model**: if the append fails (I/O, or an injected
    /// `WalAppend`/`WalSync` fault), the in-memory state is rolled back to
    /// the durable base before the error returns, so memory and disk agree
    /// that the commit did not happen.
    pub fn persist_changes(&mut self) -> Result<(), EngineError> {
        let Some(dur) = &mut self.durability else {
            return Ok(());
        };
        if let Err(e) = dur.persist(&self.db, &self.rule_defs, &self.directives) {
            // Restore the acknowledged base, but keep observing the same
            // fault plan and counters: the base was captured before the
            // plan was installed, and a fired one-shot must stay fired.
            let fault = self.db.fault_state().cloned();
            self.db = dur.base_db.clone();
            self.db.set_fault_state(fault);
            self.rule_defs = dur.base_defs.clone();
            self.directives = dur.base_directives.clone();
            self.compiled = None;
            self.pending_ops.clear();
            self.txn_snapshot = None;
            return Err(e.into());
        }
        Ok(())
    }

    /// Forces a full snapshot + log truncation of the acknowledged state
    /// (the server's drain-time path). No-op without an attachment.
    pub fn durable_snapshot(&mut self) -> Result<(), EngineError> {
        if let Some(dur) = &mut self.durability {
            dur.snapshot()?;
        }
        Ok(())
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Installs a storage fault plan on the session's database (robustness
    /// testing; see [`starling_storage::fault`]). Snapshots taken after
    /// installation share the plan's counters, so an already-fired fault
    /// stays fired across rollback — and the durable store (if attached)
    /// observes the same plan for its WAL/snapshot operations.
    pub fn install_fault_plan(&mut self, plan: starling_storage::FaultPlan) {
        self.db.install_fault_plan(plan);
        if let Some(dur) = &mut self.durability {
            dur.store.set_fault_state(self.db.fault_state().cloned());
        }
    }

    /// The rule definitions, in creation order.
    pub fn rule_defs(&self) -> &[starling_sql::RuleDef] {
        &self.rule_defs
    }

    /// Recorded certification directives (`declare commute`, `declare
    /// terminates`).
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// The compiled rule set (compiling lazily after changes).
    pub fn ruleset(&mut self) -> Result<&RuleSet, EngineError> {
        Ok(self.ruleset_arc()?.as_ref())
    }

    /// The compiled rule set as a shared handle (compiling lazily after
    /// changes). Cloning the returned `Arc` is a refcount bump, so callers
    /// that need the rules to outlive a `&mut self` borrow (e.g. assertion
    /// points, server analyses) pay no deep copy.
    pub fn ruleset_arc(&mut self) -> Result<&Arc<RuleSet>, EngineError> {
        if self.compiled.is_none() {
            self.compiled = Some(Arc::new(RuleSet::compile(
                &self.rule_defs,
                self.db.catalog(),
            )?));
        }
        Ok(self.compiled.as_ref().expect("just compiled"))
    }

    /// Parses and executes a script, one statement at a time. DML
    /// accumulates into the pending user transition; rules are processed
    /// only at [`Session::assert_rules`] / [`Session::commit`].
    ///
    /// **Failure model**: a parse error executes nothing. If a statement
    /// fails mid-script, the enclosing transaction is aborted — the
    /// database is restored to the transaction snapshot and the pending
    /// transition is discarded — before the error is returned. Outputs of
    /// the statements that ran before the failure are not returned; their
    /// effects are rolled back with everything else.
    pub fn execute_script(&mut self, src: &str) -> Result<Vec<ScriptOutput>, EngineError> {
        let stmts = parse_script(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match self.execute(&s) {
                Ok(o) => out.push(o),
                Err(e) => {
                    self.rollback();
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Executes one statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ScriptOutput, EngineError> {
        match stmt {
            Statement::CreateTable(ct) => {
                self.db.create_table(ct.schema.clone())?;
                self.compiled = None;
                Ok(ScriptOutput::TableCreated(ct.schema.name.clone()))
            }
            Statement::CreateRule(def) => {
                // Validate eagerly so errors surface at definition time.
                starling_sql::validate::validate_rule(def, self.db.catalog())?;
                if self.rule_defs.iter().any(|r| r.name == def.name) {
                    return Err(EngineError::DuplicateRule(def.name.clone()));
                }
                self.rule_defs.push(def.clone());
                self.compiled = None;
                Ok(ScriptOutput::RuleCreated(def.name.clone()))
            }
            Statement::DropRule(name) => {
                let before = self.rule_defs.len();
                self.rule_defs.retain(|r| &r.name != name);
                if self.rule_defs.len() == before {
                    return Err(EngineError::InvalidStatement(format!(
                        "drop rule: no rule named `{name}`"
                    )));
                }
                // Dangling precedes/follows references would fail the next
                // compile; scrub them (dropping a rule drops its orderings).
                for r in &mut self.rule_defs {
                    r.precedes.retain(|p| p != name);
                    r.follows.retain(|p| p != name);
                }
                self.compiled = None;
                Ok(ScriptOutput::RuleDropped(name.clone()))
            }
            Statement::AlterRule {
                name,
                precedes,
                follows,
            } => {
                let Some(def) = self.rule_defs.iter_mut().find(|r| &r.name == name) else {
                    return Err(EngineError::InvalidStatement(format!(
                        "alter rule: no rule named `{name}`"
                    )));
                };
                for p in precedes {
                    if !def.precedes.contains(p) {
                        def.precedes.push(p.clone());
                    }
                }
                for f in follows {
                    if !def.follows.contains(f) {
                        def.follows.push(f.clone());
                    }
                }
                self.compiled = None;
                Ok(ScriptOutput::RuleAltered(name.clone()))
            }
            Statement::Directive(d) => {
                self.directives.push(d.clone());
                Ok(ScriptOutput::DirectiveRecorded)
            }
            Statement::Dml(action) => {
                starling_sql::validate::validate_dml(action, self.db.catalog())?;
                self.ensure_txn();
                // A failing DML statement (e.g. an injected storage fault)
                // may have partially mutated the database. Statement-level
                // atomicity is transaction-level here: abort to the
                // snapshot rather than expose a half-applied statement.
                let outcome = match exec_action(action, &mut self.db, None) {
                    Ok(o) => o,
                    Err(e) => {
                        self.rollback();
                        return Err(e.into());
                    }
                };
                match outcome {
                    ActionOutcome::Effects(fx) => {
                        let n = fx.len();
                        self.pending_ops.extend(fx.into_iter().map(TupleOp::from));
                        Ok(ScriptOutput::Modified(n))
                    }
                    ActionOutcome::Rows(rs) => Ok(ScriptOutput::Rows(rs)),
                    ActionOutcome::Rollback => {
                        self.rollback();
                        Ok(ScriptOutput::RolledBack)
                    }
                }
            }
        }
    }

    fn ensure_txn(&mut self) {
        if self.txn_snapshot.is_none() {
            self.txn_snapshot = Some(self.db.clone());
        }
    }

    /// Aborts the current transaction with `error`: restores the snapshot,
    /// discards the pending transition, and packages the cause as an
    /// [`Outcome::Aborted`] result.
    fn abort_txn(&mut self, error: EngineError) -> RunResult {
        self.rollback();
        RunResult {
            considerations: Vec::new(),
            observables: Vec::new(),
            outcome: Outcome::Aborted,
            truncation: None,
            error: Some(error),
        }
    }

    /// Runs rule processing at an assertion point over the pending user
    /// transition. The pending transition is consumed.
    ///
    /// **Failure model**: any error at the assertion point — rule-set
    /// compilation (e.g. a priority cycle introduced by `alter rule`) or a
    /// failure while considering a rule — aborts the transaction
    /// crash-consistently: the database is restored to the transaction
    /// snapshot, the pending transition is discarded (never silently lost
    /// with the mutated state kept, as older versions did), and the result
    /// carries [`Outcome::Aborted`] with the cause in
    /// [`RunResult::error`]. The `Err` arm is reserved for future
    /// setup-level failures that do not touch the transaction.
    pub fn assert_rules(
        &mut self,
        strategy: &mut dyn ChoiceStrategy,
    ) -> Result<RunResult, EngineError> {
        self.ensure_txn();
        let snapshot = self.txn_snapshot.clone().expect("txn exists");
        let limit = self.max_considerations;
        // Compile before consuming the pending transition, and abort (not
        // just error) if the rule set is unusable: the user transition
        // cannot be processed, so it must not survive half-applied.
        let rules = match self.ruleset_arc() {
            Ok(r) => Arc::clone(r),
            Err(e) => return Ok(self.abort_txn(e)),
        };
        let ops = std::mem::take(&mut self.pending_ops);
        let mut state = ExecState::new(self.db.clone(), rules.len(), &ops);
        let mut processor = Processor::new(&rules)
            .with_limit(limit)
            .with_eval_mode(self.eval_mode);
        processor.deadline = self.deadline;
        let result = match processor.run(&mut state, &snapshot, strategy) {
            Ok(r) => r,
            Err(e) => return Ok(self.abort_txn(e)),
        };
        self.db = state.db;
        match result.outcome {
            // The processor already restored the snapshot into `state.db`;
            // both ends of the transaction are closed out here.
            Outcome::RolledBack | Outcome::Aborted => {
                self.txn_snapshot = None;
            }
            Outcome::Quiescent | Outcome::LimitExceeded => {}
        }
        Ok(result)
    }

    /// Commits the transaction: runs an assertion point, then clears the
    /// snapshot. With a durable store attached, acknowledged outcomes
    /// (`Quiescent` — and `RolledBack`, which may still carry DDL executed
    /// outside the transaction snapshot) are persisted before returning;
    /// `Aborted` and `LimitExceeded` are not acknowledged and leave the
    /// durable state untouched, matching the server's checkpoint-restore of
    /// those outcomes.
    pub fn commit(&mut self, strategy: &mut dyn ChoiceStrategy) -> Result<RunResult, EngineError> {
        let result = self.assert_rules(strategy)?;
        self.txn_snapshot = None;
        match result.outcome {
            Outcome::Quiescent | Outcome::RolledBack => {
                if let Err(e) = self.persist_changes() {
                    // The commit could not be made durable: in-memory state
                    // was rolled back to the durable base, and the outcome
                    // reports the abort with its cause.
                    return Ok(RunResult {
                        considerations: Vec::new(),
                        observables: Vec::new(),
                        outcome: Outcome::Aborted,
                        truncation: None,
                        error: Some(e),
                    });
                }
            }
            Outcome::Aborted | Outcome::LimitExceeded => {}
        }
        Ok(result)
    }

    /// Rolls the transaction back manually.
    pub fn rollback(&mut self) {
        if let Some(snap) = self.txn_snapshot.take() {
            self.db = snap;
        }
        self.pending_ops.clear();
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use starling_storage::Value;

    use crate::strategy::FirstEligible;

    use super::*;

    #[test]
    fn script_end_to_end() {
        let mut s = Session::new();
        let out = s
            .execute_script(
                "create table emp (id int, salary int);
                 create rule cap on emp when inserted, updated(salary) \
                   if exists (select * from emp where salary > 100) \
                   then update emp set salary = 100 where salary > 100 end;
                 insert into emp values (1, 250);
                 insert into emp values (2, 50);",
            )
            .unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], ScriptOutput::TableCreated("emp".into()));
        assert_eq!(out[1], ScriptOutput::RuleCreated("cap".into()));
        assert_eq!(out[2], ScriptOutput::Modified(1));

        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, crate::processor::Outcome::Quiescent);
        let salaries: Vec<Value> = s
            .db()
            .table("emp")
            .unwrap()
            .iter()
            .map(|(_, r)| r[1].clone())
            .collect();
        assert_eq!(salaries, vec![Value::Int(100), Value::Int(50)]);
    }

    #[test]
    fn user_rollback_restores() {
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.execute_script("insert into t values (1)").unwrap();
        s.commit(&mut FirstEligible).unwrap();
        let out = s
            .execute_script("insert into t values (2); rollback")
            .unwrap();
        assert_eq!(out[1], ScriptOutput::RolledBack);
        assert_eq!(s.db().table("t").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_rule_rejected() {
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.execute_script("create rule r on t when inserted then delete from t end")
            .unwrap();
        let err = s
            .execute_script("create rule r on t when deleted then delete from t end")
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateRule(_)));
    }

    #[test]
    fn directives_recorded() {
        let mut s = Session::new();
        s.execute_script("declare commute a, b; declare terminates x 'why'")
            .unwrap();
        assert_eq!(s.directives().len(), 2);
    }

    #[test]
    fn queries_do_not_join_transition() {
        let mut s = Session::new();
        s.execute_script("create table t (a int); insert into t values (3)")
            .unwrap();
        let out = s.execute_script("select a from t").unwrap();
        let ScriptOutput::Rows(rs) = &out[0] else {
            panic!()
        };
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn drop_and_alter_rule() {
        let mut s = Session::new();
        s.execute_script(
            "create table t (a int);
             create rule a on t when inserted then update t set a = 1 end;
             create rule b on t when inserted then update t set a = 2 end;",
        )
        .unwrap();
        assert_eq!(s.ruleset().unwrap().len(), 2);

        // Order them via ALTER; the compiled set reflects it.
        s.execute_script("alter rule a precedes b").unwrap();
        let rs = s.ruleset().unwrap();
        let (a, b) = (rs.by_name("a").unwrap().id, rs.by_name("b").unwrap().id);
        assert!(rs.priority().gt(a, b));

        // Dropping `b` also scrubs the ordering reference from `a`.
        s.execute_script("drop rule b").unwrap();
        let rs = s.ruleset().unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs.by_name("a").unwrap().def.precedes.is_empty());

        assert!(s.execute_script("drop rule zz").is_err());
        assert!(s.execute_script("alter rule zz precedes a").is_err());
    }

    #[test]
    fn mid_script_error_aborts_transaction() {
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.execute_script("insert into t values (1)").unwrap();
        s.commit(&mut FirstEligible).unwrap();
        // Second statement fails: the first one's effect must not survive.
        let err = s
            .execute_script("insert into t values (2); insert into nope values (3)")
            .unwrap_err();
        assert!(matches!(err, EngineError::Sql(_)));
        assert_eq!(s.db().table("t").unwrap().len(), 1);
        // The session is usable afterwards: a fresh transaction commits.
        s.execute_script("insert into t values (4)").unwrap();
        s.commit(&mut FirstEligible).unwrap();
        assert_eq!(s.db().table("t").unwrap().len(), 2);
    }

    #[test]
    fn injected_fault_at_assertion_point_aborts() {
        use starling_storage::{FaultPlan, FaultSpec};
        let mut s = Session::new();
        s.execute_script(
            "create table t (a int);
             create table log (a int);
             create rule audit on t when inserted then \
               insert into log select a from inserted end;",
        )
        .unwrap();
        // Kill the rule's insert into log. The user's insert into t lands
        // first (op #0 is on t; the spec only matches log).
        s.install_fault_plan(FaultPlan::single(FaultSpec::nth(0).on_table("log")));
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Aborted);
        assert!(
            run.error
                .as_ref()
                .is_some_and(EngineError::is_injected_fault),
            "{:?}",
            run.error
        );
        // Crash-consistent: the whole transaction is gone, not just the
        // rule's half — and the pending transition was discarded.
        assert!(s.db().table("t").unwrap().is_empty());
        assert!(s.db().table("log").unwrap().is_empty());
        // The fault is one-shot, so the retry commits cleanly.
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        assert_eq!(s.db().table("t").unwrap().len(), 1);
        assert_eq!(s.db().table("log").unwrap().len(), 1);
    }

    #[test]
    fn ruleset_compile_error_at_assertion_point_aborts() {
        let mut s = Session::new();
        s.execute_script(
            "create table t (a int);
             create rule a on t when inserted then update t set a = 1 end;
             create rule b on t when inserted then update t set a = 2 end;",
        )
        .unwrap();
        // Introduce a priority cycle, then try to commit a pending insert.
        s.execute_script("alter rule a precedes b; alter rule b precedes a")
            .unwrap();
        s.execute_script("insert into t values (9)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Aborted);
        assert!(matches!(run.error, Some(EngineError::PriorityCycle(_))));
        // The pending insert was aborted, not silently kept.
        assert!(s.db().table("t").unwrap().is_empty());
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "starling-session-dur-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_commit_recovers_identically() {
        let dir = durable_dir("roundtrip");
        {
            let mut s = Session::new();
            s.execute_script(
                "create table t (a int);
                 create rule echo on t when inserted then \
                   update t set a = a where a < 0 end;
                 declare terminates echo 'no-op';",
            )
            .unwrap();
            s.persist_to(&dir, SyncPolicy::Always).unwrap();
            s.execute_script("insert into t values (1); insert into t values (2)")
                .unwrap();
            s.commit(&mut FirstEligible).unwrap();
            // DDL after attachment is captured by the next commit's diff.
            s.execute_script("create table u (b int); insert into u values (7)")
                .unwrap();
            s.commit(&mut FirstEligible).unwrap();

            let r = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
            assert_eq!(r.db(), s.db());
            assert_eq!(r.db().next_tuple_id(), s.db().next_tuple_id());
            assert_eq!(r.rule_defs(), s.rule_defs());
            assert_eq!(r.directives(), s.directives());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_to_refuses_nonempty_store() {
        let dir = durable_dir("nonempty");
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.persist_to(&dir, SyncPolicy::Always).unwrap();
        let mut other = Session::new();
        assert!(matches!(
            other.persist_to(&dir, SyncPolicy::Always),
            Err(EngineError::InvalidStatement(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unacknowledged_outcomes_leave_durable_state_untouched() {
        let dir = durable_dir("abort");
        let mut s = Session::new();
        s.execute_script(
            "create table t (a int);
             create table log (a int);
             create rule audit on t when inserted then \
               insert into log select a from inserted end;",
        )
        .unwrap();
        s.persist_to(&dir, SyncPolicy::Always).unwrap();
        let acked = s.durability().unwrap().base_db().clone();
        // Kill the rule's action: the commit aborts and must not be logged.
        s.install_fault_plan(starling_storage::FaultPlan::single(
            starling_storage::FaultSpec::nth(0).on_table("log"),
        ));
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Aborted);
        assert_eq!(*s.durability().unwrap().base_db(), acked);
        let r = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(*r.db(), acked);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_wal_append_rolls_back_to_durable_base() {
        use starling_storage::{FaultOpKind, FaultPlan, FaultSpec};
        let dir = durable_dir("walfail");
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.persist_to(&dir, SyncPolicy::Always).unwrap();
        let acked = s.durability().unwrap().base_db().clone();
        s.install_fault_plan(FaultPlan::single(
            FaultSpec::nth(0).on_kind(FaultOpKind::WalAppend),
        ));
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Aborted);
        assert!(run
            .error
            .as_ref()
            .is_some_and(EngineError::is_injected_fault));
        // Memory agrees with disk that the commit did not happen...
        assert_eq!(*s.db(), acked);
        let r = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(*r.db(), acked);
        // ...and the one-shot fault lets the retry land durably.
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, Outcome::Quiescent);
        let r = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(r.db(), s.db());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotation_preserves_recovery() {
        let dir = durable_dir("rotate");
        let mut s = Session::new();
        s.execute_script("create table t (a int)").unwrap();
        s.persist_to(&dir, SyncPolicy::Batch).unwrap();
        s.set_snapshot_every(2);
        for i in 0..5 {
            s.execute_script(&format!("insert into t values ({i})"))
                .unwrap();
            s.commit(&mut FirstEligible).unwrap();
        }
        s.durable_snapshot().unwrap();
        let r = Session::open_durable(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(r.db(), s.db());
        assert_eq!(r.db().total_rows(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rule_rollback_aborts_transaction() {
        let mut s = Session::new();
        s.execute_script(
            "create table t (a int);
             create rule nope on t when inserted then rollback end;",
        )
        .unwrap();
        s.execute_script("insert into t values (1)").unwrap();
        let run = s.commit(&mut FirstEligible).unwrap();
        assert_eq!(run.outcome, crate::processor::Outcome::RolledBack);
        assert!(s.db().table("t").unwrap().is_empty());
    }
}
