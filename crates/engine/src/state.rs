//! Execution states `S = (D, TR)` (paper Section 4).
//!
//! `D` is the database; `TR` is represented as one pending [`NetEffect`] per
//! rule — the net effect of the composite transition since the rule was last
//! considered (or since the assertion point). The pending net effect
//! determines *both* whether the rule is triggered *and* the contents of its
//! transition tables, exactly the "triggered rule and its associated
//! transition tables" of the paper.

use starling_sql::eval::TransitionBinding;
use starling_storage::{CanonicalDigest, Database, Fnv64};

use crate::ops::{NetEffect, TupleOp};
use crate::ruleset::{RuleId, RuleSet};

/// A rule-processing state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecState {
    /// Current database state `D`.
    pub db: Database,
    /// Per-rule pending transition (indexed by [`RuleId`]).
    pending: Vec<NetEffect>,
}

impl ExecState {
    /// A state at the start of rule processing: database after the initial
    /// transition, with every rule's pending transition set to the initial
    /// operations.
    pub fn new(db: Database, n_rules: usize, initial_ops: &[TupleOp]) -> Self {
        let initial = NetEffect::from_ops(initial_ops);
        ExecState {
            db,
            pending: vec![initial; n_rules],
        }
    }

    /// The pending transition of one rule.
    pub fn pending(&self, id: RuleId) -> &NetEffect {
        &self.pending[id.0]
    }

    /// Absorbs newly executed operations into **every** rule's pending
    /// transition (rules see operations executed after their last
    /// consideration as part of their next triggering transition).
    pub fn absorb(&mut self, ops: &[TupleOp]) {
        for p in &mut self.pending {
            p.absorb_all(ops);
        }
    }

    /// Resets one rule's pending transition (the rule has been considered).
    pub fn reset_pending(&mut self, id: RuleId) {
        self.pending[id.0] = NetEffect::new();
    }

    /// Clears all pending transitions (rollback).
    pub fn clear_pending(&mut self) {
        for p in &mut self.pending {
            *p = NetEffect::new();
        }
    }

    /// The set of triggered rules: those whose pending transition's net
    /// effect contains one of their triggering operations.
    pub fn triggered(&self, rules: &RuleSet) -> Vec<RuleId> {
        rules
            .rules()
            .iter()
            .filter(|r| self.pending[r.id.0].triggers(&r.sig.triggered_by))
            .map(|r| r.id)
            .collect()
    }

    /// Whether a specific rule is triggered.
    pub fn is_triggered(&self, rules: &RuleSet, id: RuleId) -> bool {
        self.pending[id.0].triggers(&rules.get(id).sig.triggered_by)
    }

    /// Transition tables for a rule at consideration time.
    pub fn transition_binding(&self, rules: &RuleSet, id: RuleId) -> TransitionBinding {
        self.pending[id.0].transition_binding(&rules.get(id).sig.table)
    }

    /// Canonical digest of the full state `(D, TR)` — used by the
    /// execution-graph explorer to deduplicate states and detect cycles.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.db.digest_into(&mut h);
        h.write_usize(self.pending.len());
        for p in &self.pending {
            p.digest_into(&mut h);
        }
        h.finish()
    }

    /// Digest of the state *as the paper defines state identity* (Section
    /// 4): the database contents plus the set `TR` of **triggered** rules
    /// with the contents of their transition tables — with no dependence on
    /// tuple ids.
    ///
    /// Two deliberate coarsenings relative to [`Self::digest`]:
    ///
    /// * tuple ids are ignored (two executions inserting the same rows
    ///   under different ids are the same paper-state);
    /// * an **untriggered** rule's partially accumulated transition window
    ///   is ignored, because the paper's `TR` only contains triggered
    ///   rules. This is a real abstraction leak in the paper (documented in
    ///   `EXPERIMENTS.md` as the *masking* finding): operationally, an
    ///   insert sitting in an untriggered rule's window can annihilate a
    ///   future delete (net-effect rule 4) and change whether the rule ever
    ///   triggers — a distinction the Section 4 model, and therefore Lemma
    ///   6.1, does not see. The Figure 1 commutativity diamond must be
    ///   checked at the paper's granularity, so this digest is what the E1
    ///   experiment compares.
    pub fn semantic_digest(&self, rules: &RuleSet) -> u64 {
        let mut h = Fnv64::new();
        self.db.digest_into(&mut h);
        for r in rules.rules() {
            let triggered = self.is_triggered(rules, r.id);
            h.write(&[u8::from(triggered)]);
            if !triggered {
                continue;
            }
            let b = self.transition_binding(rules, r.id);
            for rows in [&b.inserted, &b.deleted, &b.new_updated, &b.old_updated] {
                let mut sorted: Vec<_> = rows.iter().collect();
                sorted.sort_unstable();
                h.write_usize(sorted.len());
                for row in sorted {
                    row.as_slice().digest_into(&mut h);
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use starling_sql::ast::Statement;
    use starling_sql::parse_script;
    use starling_storage::{ColumnDef, TableSchema, TupleId, Value, ValueType};

    use super::*;

    fn setup() -> (Database, RuleSet) {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![ColumnDef::new("a", ValueType::Int)]).unwrap())
            .unwrap();
        let defs: Vec<_> = parse_script(
            "create rule on_ins on t when inserted then delete from t end;
             create rule on_del on t when deleted then update t set a = 0 end;",
        )
        .unwrap()
        .into_iter()
        .filter_map(|s| match s {
            Statement::CreateRule(r) => Some(r),
            _ => None,
        })
        .collect();
        let rs = RuleSet::compile(&defs, db.catalog()).unwrap();
        (db, rs)
    }

    fn ins_op(id: u64, v: i64) -> TupleOp {
        TupleOp::Insert {
            table: "t".into(),
            id: TupleId(id),
            row: vec![Value::Int(v)],
        }
    }

    #[test]
    fn initial_triggering() {
        let (db, rs) = setup();
        let st = ExecState::new(db, rs.len(), &[ins_op(1, 5)]);
        let triggered = st.triggered(&rs);
        assert_eq!(triggered, vec![RuleId(0)]); // only on_ins
    }

    #[test]
    fn absorb_extends_all_pendings() {
        let (db, rs) = setup();
        let mut st = ExecState::new(db, rs.len(), &[]);
        assert!(st.triggered(&rs).is_empty());
        st.absorb(&[TupleOp::Delete {
            table: "t".into(),
            id: TupleId(9),
            old: vec![Value::Int(1)],
        }]);
        assert_eq!(st.triggered(&rs), vec![RuleId(1)]);
    }

    #[test]
    fn reset_untrigggers_one_rule() {
        let (db, rs) = setup();
        let mut st = ExecState::new(db, rs.len(), &[ins_op(1, 5)]);
        st.reset_pending(RuleId(0));
        assert!(st.triggered(&rs).is_empty());
        // New ops re-trigger.
        st.absorb(&[ins_op(2, 6)]);
        assert_eq!(st.triggered(&rs), vec![RuleId(0)]);
    }

    #[test]
    fn untriggering_via_net_effect() {
        // A rule triggered by an insert becomes untriggered when another
        // rule deletes the inserted tuple (insert∘delete annihilates).
        let (db, rs) = setup();
        let mut st = ExecState::new(db, rs.len(), &[ins_op(1, 5)]);
        assert!(st.is_triggered(&rs, RuleId(0)));
        st.absorb(&[TupleOp::Delete {
            table: "t".into(),
            id: TupleId(1),
            old: vec![Value::Int(5)],
        }]);
        assert!(!st.is_triggered(&rs, RuleId(0)));
        // Rule (4) of net effects: insert∘delete is "not considered at
        // all" — the deletion of a same-transition insert does not trigger
        // deleted-rules either.
        assert!(!st.is_triggered(&rs, RuleId(1)));
        // Deleting a tuple that existed before the transition does.
        st.absorb(&[TupleOp::Delete {
            table: "t".into(),
            id: TupleId(99),
            old: vec![Value::Int(7)],
        }]);
        assert!(st.is_triggered(&rs, RuleId(1)));
    }

    #[test]
    fn binding_reflects_pending() {
        let (db, rs) = setup();
        let st = ExecState::new(db, rs.len(), &[ins_op(1, 5)]);
        let b = st.transition_binding(&rs, RuleId(0));
        assert_eq!(b.inserted, vec![vec![Value::Int(5)]]);
        assert!(b.deleted.is_empty());
    }

    #[test]
    fn digest_captures_pending_differences() {
        let (db, rs) = setup();
        let a = ExecState::new(db.clone(), rs.len(), &[ins_op(1, 5)]);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.reset_pending(RuleId(0));
        // Same database, different TR — different state.
        assert_eq!(a.db.state_digest(), b.db.state_digest());
        assert_ne!(a.digest(), b.digest());
    }
}
