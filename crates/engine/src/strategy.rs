//! Conflict-resolution strategies: which eligible rule to consider next.
//!
//! The paper's semantics leave the choice among unordered eligible rules
//! *arbitrary* — that arbitrariness is exactly what confluence and
//! observable determinism analyze. The processor therefore takes a pluggable
//! strategy; the execution-graph oracle explores **all** choices instead.

use crate::ruleset::RuleId;

/// Picks one rule from a non-empty set of eligible (triggered, maximal-
/// priority) rules.
pub trait ChoiceStrategy {
    /// Chooses from `eligible`, which is non-empty and sorted by rule id.
    fn choose(&mut self, eligible: &[RuleId]) -> RuleId;
}

/// Always the lowest-numbered eligible rule (definition order).
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstEligible;

impl ChoiceStrategy for FirstEligible {
    fn choose(&mut self, eligible: &[RuleId]) -> RuleId {
        eligible[0]
    }
}

/// Always the highest-numbered eligible rule — a cheap adversary for
/// exposing non-confluence in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct LastEligible;

impl ChoiceStrategy for LastEligible {
    fn choose(&mut self, eligible: &[RuleId]) -> RuleId {
        *eligible.last().expect("eligible set is non-empty")
    }
}

/// Deterministic pseudo-random choice (xorshift64*), reproducible from the
/// seed. No external RNG dependency is needed for this.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    state: u64,
}

impl SeededRandom {
    /// A strategy from a seed (0 is mapped to a fixed non-zero state).
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ChoiceStrategy for SeededRandom {
    fn choose(&mut self, eligible: &[RuleId]) -> RuleId {
        let i = (self.next_u64() % eligible.len() as u64) as usize;
        eligible[i]
    }
}

/// Follows a script of indices (each taken modulo the eligible count);
/// after the script is exhausted, falls back to the first eligible rule.
/// Used to drive execution down a specific path.
#[derive(Clone, Debug)]
pub struct Scripted {
    picks: Vec<usize>,
    next: usize,
}

impl Scripted {
    /// A strategy following `picks`.
    pub fn new(picks: Vec<usize>) -> Self {
        Scripted { picks, next: 0 }
    }
}

impl ChoiceStrategy for Scripted {
    fn choose(&mut self, eligible: &[RuleId]) -> RuleId {
        let pick = self.picks.get(self.next).copied().unwrap_or(0);
        self.next += 1;
        eligible[pick % eligible.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<RuleId> {
        v.iter().map(|&i| RuleId(i)).collect()
    }

    #[test]
    fn first_and_last() {
        let e = ids(&[1, 3, 5]);
        assert_eq!(FirstEligible.choose(&e), RuleId(1));
        assert_eq!(LastEligible.choose(&e), RuleId(5));
    }

    #[test]
    fn seeded_random_is_reproducible_and_in_range() {
        let e = ids(&[0, 1, 2, 3]);
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        for _ in 0..50 {
            let x = a.choose(&e);
            assert_eq!(x, b.choose(&e));
            assert!(e.contains(&x));
        }
        // Zero seed still works.
        let _ = SeededRandom::new(0).choose(&e);
    }

    #[test]
    fn scripted_wraps_and_falls_back() {
        let e = ids(&[10, 20]);
        let mut s = Scripted::new(vec![1, 3, 0]);
        assert_eq!(s.choose(&e), RuleId(20)); // 1 % 2 = 1
        assert_eq!(s.choose(&e), RuleId(20)); // 3 % 2 = 1
        assert_eq!(s.choose(&e), RuleId(10)); // 0
        assert_eq!(s.choose(&e), RuleId(10)); // exhausted -> 0
    }
}
