//! The reproducer corpus: shrunk counterexamples written as runnable
//! `.star` scripts, and replay of pinned scripts as ordinary regressions.
//!
//! A reproducer is a plain loader-convention script with a `--` comment
//! header describing which oracle fired and why (the lexer skips line
//! comments, so the file runs unchanged under `starling explore`/`run`).
//! `tests/fuzz_corpus.rs` replays every `*.star` file in the repo corpus
//! through [`check_script`] on each `cargo test` run, so a fixed bug stays
//! fixed.

use std::io;
use std::path::{Path, PathBuf};

use starling_engine::Budget;

use crate::oracle::{check_script, CaseOutcome, Mutation};

/// One line of detail, bounded, safe for a `--` comment.
fn comment_safe(detail: &str, max: usize) -> String {
    let one_line: String = detail
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .take(max)
        .collect();
    one_line
}

/// Writes a shrunk reproducer into `dir`, returning its path. The file name
/// encodes the run seed, case index, and the oracle that fired, so repeated
/// runs over the same seed overwrite rather than accumulate.
pub fn write_reproducer(
    dir: &Path,
    seed: u64,
    case_index: usize,
    oracle: &str,
    detail: &str,
    witness: Option<&str>,
    script: &str,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed{seed}_case{case_index}_{oracle}.star"));
    // Confluence findings carry their replay-verified divergence witness
    // (re-derived from the shrunk script), so the reproducer explains
    // itself: `starling explain <file>` prints the full transcript.
    let witness_line = match witness {
        Some(w) => format!("-- witness: {}\n", comment_safe(w, 400)),
        None => String::new(),
    };
    let contents = format!(
        "-- starling-fuzz reproducer (shrunk)\n\
         -- oracle: {oracle}\n\
         -- detail: {}\n\
         {witness_line}\
         -- replay: cargo test --test fuzz_corpus (or `starling explore` this file)\n\
         \n{script}",
        comment_safe(detail, 240)
    );
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Replays every `*.star` script in `dir` through all oracles. Returns
/// `(path, outcome)` per script in file-name order (deterministic). A
/// missing directory is an empty corpus, not an error.
pub fn replay_dir(dir: &Path, budget: &Budget) -> io::Result<Vec<(PathBuf, CaseOutcome)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "star"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(&path)?;
        let outcome = check_script(&src, budget, Mutation::None);
        out.push((path, outcome));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducer_round_trips_through_replay() {
        let dir =
            std::env::temp_dir().join(format!("starling-fuzz-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let script = "create table t (x int);\n\
                      create rule a on t when inserted then delete from t end;\n\
                      insert into t values (1);\n";
        let path = write_reproducer(
            &dir,
            7,
            3,
            "analyzer-termination",
            "a\nb",
            Some("witness [a|b]: left=[a] right=[b]"),
            script,
        )
        .unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".star"));
        let replayed = replay_dir(&dir, &Budget::default()).unwrap();
        assert_eq!(replayed.len(), 1);
        // The header comments must not break loading: the script replays
        // cleanly (this program has no disagreement).
        assert!(
            replayed[0].1.disagreement.is_none(),
            "{:?}",
            replayed[0].1.disagreement
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let dir = Path::new("/nonexistent/starling-fuzz-nowhere");
        assert!(replay_dir(dir, &Budget::default()).unwrap().is_empty());
    }
}
