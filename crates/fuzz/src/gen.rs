//! Seeded, deterministic generation of random schemas, initial databases,
//! and Starburst rule programs.
//!
//! The generator produces *valid* programs by construction: every column
//! reference resolves, every `insert` matches its target's arity, transition
//! tables (`inserted` / `deleted` / `new_updated` / `old_updated`) are
//! referenced only by rules whose transition predicate includes the matching
//! triggering operation, and `precedes` / `follows` edges are drawn only
//! downward in rule-index order so the priority order stays acyclic (a
//! priority *cycle* is a script error, not an interesting execution).
//!
//! Everything is a pure function of the seed: the RNG is the vendored
//! splitmix64 [`StdRng`] and no iteration order depends on a hash map, so a
//! fuzz run's report is byte-identical across repetitions — the property the
//! `starling fuzz` CLI contract and the CI job rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use starling_sql::ast::{
    Action, BinOp, DeleteStmt, Expr, FromItem, InsertSource, InsertStmt, RuleDef, SelectItem,
    SelectStmt, TableRef, TransitionTable, TriggerEvent, UpdateStmt,
};

/// Size and probability knobs for [`generate`]. The defaults keep programs
/// small enough that one exploration under the fuzz budget runs in
/// milliseconds, while still covering multi-table, multi-rule interactions.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Tables per schema, `1..=max_tables`.
    pub max_tables: usize,
    /// Columns per table, `1..=max_cols`.
    pub max_cols: usize,
    /// Rules per program, `min_rules..=max_rules`.
    pub max_rules: usize,
    /// Lower bound on rules per program (clamped to `1..=max_rules`).
    /// The default of 1 preserves the historical draw; scale configs pin
    /// `min_rules == max_rules` so a "10k-rule program" has exactly 10k.
    pub min_rules: usize,
    /// Actions per rule, `1..=max_actions`.
    pub max_actions: usize,
    /// Seed rows per table, `0..=max_rows`.
    pub max_rows: usize,
    /// User-transition statements, `1..=max_user_actions`.
    pub max_user_actions: usize,
    /// Probability a rule has an `if` condition.
    pub p_condition: f64,
    /// Probability an unordered rule pair gets a `precedes`/`follows` edge.
    pub p_order: f64,
    /// Probability an action slot is an observable `select`.
    pub p_observable: f64,
    /// Probability an action slot is a `rollback`.
    pub p_rollback: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_tables: 3,
            max_cols: 3,
            max_rules: 5,
            min_rules: 1,
            max_actions: 3,
            max_rows: 3,
            max_user_actions: 2,
            p_condition: 0.5,
            p_order: 0.25,
            p_observable: 0.12,
            p_rollback: 0.04,
        }
    }
}

/// Above this rule count, [`generate`] switches the priority-edge pass from
/// the exhaustive O(n²) pair scan to sparse O(n) sampling. Programs at or
/// below the limit are byte-identical to what every earlier release
/// generated for the same seed and config.
pub const DENSE_ORDER_LIMIT: usize = 64;

impl GenConfig {
    /// A config for large analysis workloads: up to `rules` rules spread
    /// over proportionally many tables. Keeping tables ≈ rules/2 bounds the
    /// number of conflicting pairs (rules collide only when their tables
    /// overlap), so a 10k-rule program yields an analysis report of sane
    /// size rather than ~n²/2 violations. Seed rows are dropped — analysis
    /// is static, the initial database is irrelevant — and so are
    /// observable/rollback action slots, so the measured cost is the §6
    /// pair machinery itself rather than the §8 observable sweep.
    pub fn scaled(rules: usize) -> GenConfig {
        GenConfig {
            max_rules: rules.max(1),
            min_rules: rules.max(1),
            max_tables: (rules / 2).max(3),
            max_rows: 0,
            p_observable: 0.0,
            p_rollback: 0.0,
            ..GenConfig::default()
        }
    }
}

/// A generated table: `name` with integer columns `c0..c{cols-1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Table name (`t0`, `t1`, ...).
    pub name: String,
    /// Column count.
    pub cols: usize,
}

/// One generated program: schema, seed rows, rules, and the user transition
/// probed by `explore`. The case is kept in AST form (not text) so the
/// shrinker can delete and simplify parts structurally and re-render.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// The schema.
    pub tables: Vec<TableSpec>,
    /// Seed rows: `(table index, values)`, inserted before the rules.
    pub rows: Vec<(usize, Vec<i64>)>,
    /// The rule program.
    pub defs: Vec<RuleDef>,
    /// The user transition (DML after the rules, per the script convention).
    pub user_actions: Vec<Action>,
}

impl FuzzCase {
    /// The case's schema as a [`Catalog`](starling_storage::Catalog) —
    /// lets large cases compile via `RuleSet::compile(&case.defs, ...)`
    /// directly, without rendering and re-parsing a multi-megabyte script.
    pub fn catalog(&self) -> starling_storage::Catalog {
        use starling_storage::{ColumnDef, TableSchema, ValueType};
        let mut cat = starling_storage::Catalog::new();
        for t in &self.tables {
            let cols = (0..t.cols)
                .map(|c| ColumnDef::new(format!("c{c}"), ValueType::Int))
                .collect();
            cat.add_table(TableSchema::new(&t.name, cols).expect("generated schema"))
                .expect("generated table names are unique");
        }
        cat
    }

    /// Renders the case as a runnable script per the loader convention:
    /// `create table`s, seed DML, rules, then the user transition.
    pub fn script(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for t in &self.tables {
            let cols: Vec<String> = (0..t.cols).map(|c| format!("c{c} int")).collect();
            let _ = writeln!(s, "create table {} ({});", t.name, cols.join(", "));
        }
        for (ti, vals) in &self.rows {
            let vals: Vec<String> = vals.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                s,
                "insert into {} values ({});",
                self.tables[*ti].name,
                vals.join(", ")
            );
        }
        for def in &self.defs {
            let _ = writeln!(s, "{def};");
        }
        for a in &self.user_actions {
            let _ = writeln!(s, "{a};");
        }
        s
    }
}

/// The transition tables a rule with `events` may legally reference.
fn allowed_transitions(events: &[TriggerEvent]) -> Vec<TransitionTable> {
    let mut out = Vec::new();
    for e in events {
        match e {
            TriggerEvent::Inserted => out.push(TransitionTable::Inserted),
            TriggerEvent::Deleted => out.push(TransitionTable::Deleted),
            TriggerEvent::Updated(_) => {
                out.push(TransitionTable::NewUpdated);
                out.push(TransitionTable::OldUpdated);
            }
        }
    }
    out
}

/// A small integer literal. Negative values are spelled as unary minus
/// applied to a positive literal — the shape the parser produces for `-3` —
/// so generated ASTs survive the print→parse round-trip unchanged.
fn lit(rng: &mut StdRng) -> Expr {
    let v = rng.gen_range(-9i64..=9);
    if v < 0 {
        Expr::Neg(Box::new(Expr::int(-v)))
    } else {
        Expr::int(v)
    }
}

/// A random column of a `cols`-wide table.
fn col(rng: &mut StdRng, cols: usize) -> Expr {
    Expr::col(&format!("c{}", rng.gen_range(0..cols)))
}

/// A scalar expression over a `cols`-wide row: a literal, a column, a
/// column plus/minus a small constant (the shape that drives monotone
/// growth, the interesting case for termination), or `k - column` (an
/// involution: applying it twice restores the value, the shape that drives
/// finite cycles — nontermination the exec graph can actually *prove* — and
/// order-dependent final states).
fn scalar(rng: &mut StdRng, cols: usize) -> Expr {
    match rng.gen_range(0..5u32) {
        0 => lit(rng),
        1 => col(rng, cols),
        2 => Expr::bin(
            BinOp::Add,
            col(rng, cols),
            Expr::int(rng.gen_range(1i64..=3)),
        ),
        3 => Expr::bin(
            BinOp::Sub,
            col(rng, cols),
            Expr::int(rng.gen_range(1i64..=3)),
        ),
        _ => Expr::bin(
            BinOp::Sub,
            Expr::int(rng.gen_range(0i64..=3)),
            col(rng, cols),
        ),
    }
}

/// A boolean predicate over a `cols`-wide row.
fn predicate(rng: &mut StdRng, cols: usize) -> Expr {
    let simple = |rng: &mut StdRng| {
        let op = match rng.gen_range(0..6u32) {
            0 => BinOp::Eq,
            1 => BinOp::Ne,
            2 => BinOp::Lt,
            3 => BinOp::Le,
            4 => BinOp::Gt,
            _ => BinOp::Ge,
        };
        let l = col(rng, cols);
        let r = if rng.gen_bool(0.3) {
            col(rng, cols)
        } else {
            lit(rng)
        };
        Expr::bin(op, l, r)
    };
    match rng.gen_range(0..10u32) {
        0 => Expr::bin(BinOp::And, simple(rng), simple(rng)),
        1 => Expr::bin(BinOp::Or, simple(rng), simple(rng)),
        2 => Expr::InList {
            expr: Box::new(col(rng, cols)),
            list: vec![lit(rng), lit(rng)],
            negated: rng.gen_bool(0.3),
        },
        _ => simple(rng),
    }
}

/// A `FROM` source for a rule body: one of the base tables, or (with bias,
/// when any are legal) one of the rule's transition tables. Returns the
/// source and its column count.
fn pick_source(
    rng: &mut StdRng,
    tables: &[TableSpec],
    rule_table_cols: usize,
    trans: &[TransitionTable],
) -> (TableRef, usize) {
    if !trans.is_empty() && rng.gen_bool(0.55) {
        let t = trans[rng.gen_range(0..trans.len())];
        // Transition tables carry the rule table's schema.
        (TableRef::Transition(t), rule_table_cols)
    } else {
        let ti = rng.gen_range(0..tables.len());
        (TableRef::Base(tables[ti].name.clone()), tables[ti].cols)
    }
}

fn select_from(source: TableRef, items: Vec<SelectItem>, where_clause: Option<Expr>) -> SelectStmt {
    SelectStmt {
        distinct: false,
        items,
        from: vec![FromItem {
            table: source,
            alias: None,
        }],
        where_clause,
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
    }
}

/// One rule action. `rule_ti` is the rule's own table: update and delete
/// targets are biased toward it, because a rule that rewrites the table it
/// triggers on is the shape that closes execution-graph cycles (the paper's
/// nontermination examples) — a uniform target choice almost never produces
/// one.
fn gen_action(
    rng: &mut StdRng,
    cfg: &GenConfig,
    tables: &[TableSpec],
    rule_ti: usize,
    trans: &[TransitionTable],
) -> Action {
    let rule_table_cols = tables[rule_ti].cols;
    if rng.gen_bool(cfg.p_rollback) {
        return Action::Rollback;
    }
    if rng.gen_bool(cfg.p_observable) {
        let (src, cols) = pick_source(rng, tables, rule_table_cols, trans);
        let where_clause = rng.gen_bool(0.6).then(|| predicate(rng, cols));
        return Action::Select(select_from(src, vec![SelectItem::Wildcard], where_clause));
    }
    let ti = if rng.gen_bool(0.5) {
        rule_ti
    } else {
        rng.gen_range(0..tables.len())
    };
    let target = &tables[ti];
    match rng.gen_range(0..4u32) {
        // insert ... values
        0 => Action::Insert(InsertStmt {
            table: target.name.clone(),
            columns: None,
            source: InsertSource::Values(vec![(0..target.cols).map(|_| lit(rng)).collect()]),
        }),
        // insert ... select (possibly from a transition table — the shape
        // that propagates a transition across tables, the paper's canonical
        // rule body)
        1 => {
            let (src, cols) = pick_source(rng, tables, rule_table_cols, trans);
            let items = (0..target.cols)
                .map(|_| SelectItem::Expr {
                    expr: scalar(rng, cols),
                    alias: None,
                })
                .collect();
            let where_clause = rng.gen_bool(0.5).then(|| predicate(rng, cols));
            Action::Insert(InsertStmt {
                table: target.name.clone(),
                columns: None,
                source: InsertSource::Select(select_from(src, items, where_clause)),
            })
        }
        // update
        2 => {
            let n_sets = rng.gen_range(1..=target.cols.min(2));
            // Distinct SET columns: start at a random column, walk forward.
            let first = rng.gen_range(0..target.cols);
            let sets = (0..n_sets)
                .map(|k| {
                    let cname = format!("c{}", (first + k) % target.cols);
                    // Bias toward `c := k - c`, an involution of the column
                    // being set: two firings restore the value, so a rule
                    // that re-triggers itself closes a 2-cycle in the
                    // execution graph — the provable-nontermination shape.
                    // A generic scalar almost never lands on it.
                    let value = if rng.gen_bool(0.35) {
                        Expr::bin(
                            BinOp::Sub,
                            Expr::int(rng.gen_range(0i64..=3)),
                            Expr::col(&cname),
                        )
                    } else {
                        scalar(rng, target.cols)
                    };
                    (cname, value)
                })
                .collect();
            let where_clause = rng.gen_bool(0.7).then(|| predicate(rng, target.cols));
            Action::Update(UpdateStmt {
                table: target.name.clone(),
                sets,
                where_clause,
            })
        }
        // delete
        _ => Action::Delete(DeleteStmt {
            table: target.name.clone(),
            where_clause: rng.gen_bool(0.8).then(|| predicate(rng, target.cols)),
        }),
    }
}

/// A rule's optional `if` condition: `[not] exists (select * from src
/// [where p])`, over a base table or a legal transition table.
fn gen_condition(
    rng: &mut StdRng,
    tables: &[TableSpec],
    rule_table_cols: usize,
    trans: &[TransitionTable],
) -> Expr {
    let (src, cols) = pick_source(rng, tables, rule_table_cols, trans);
    let where_clause = rng.gen_bool(0.7).then(|| predicate(rng, cols));
    let exists = Expr::Exists(Box::new(select_from(
        src,
        vec![SelectItem::Wildcard],
        where_clause,
    )));
    if rng.gen_bool(0.3) {
        Expr::Not(Box::new(exists))
    } else {
        exists
    }
}

/// The transition predicate: one or two distinct triggering operations.
fn gen_events(rng: &mut StdRng, table_cols: usize) -> Vec<TriggerEvent> {
    let mut kinds = [0u32, 1, 2];
    // Deterministic partial shuffle: pick the first event, then maybe a
    // second distinct one.
    let first = rng.gen_range(0..3usize);
    kinds.swap(0, first);
    let n = if rng.gen_bool(0.3) { 2 } else { 1 };
    let mut events = Vec::new();
    for &k in kinds.iter().take(n) {
        events.push(match k {
            0 => TriggerEvent::Inserted,
            1 => TriggerEvent::Deleted,
            _ => {
                if rng.gen_bool(0.4) {
                    let c = rng.gen_range(0..table_cols);
                    TriggerEvent::Updated(Some(vec![format!("c{c}")]))
                } else {
                    TriggerEvent::Updated(None)
                }
            }
        });
    }
    events
}

/// Generates one case from a seed. Same seed + same config ⇒ identical case.
pub fn generate(seed: u64, cfg: &GenConfig) -> FuzzCase {
    // Decorrelate from other users of the seed (e.g. the harness's own
    // per-case seed derivation).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf022_ed1c_ab1e_0000);

    let n_tables = rng.gen_range(1..=cfg.max_tables);
    let tables: Vec<TableSpec> = (0..n_tables)
        .map(|i| TableSpec {
            name: format!("t{i}"),
            cols: rng.gen_range(1..=cfg.max_cols),
        })
        .collect();

    let mut rows = Vec::new();
    for (ti, t) in tables.iter().enumerate() {
        for _ in 0..rng.gen_range(0..=cfg.max_rows) {
            rows.push((ti, (0..t.cols).map(|_| rng.gen_range(-9i64..=9)).collect()));
        }
    }

    let n_rules = rng.gen_range(cfg.min_rules.clamp(1, cfg.max_rules)..=cfg.max_rules);
    let mut defs: Vec<RuleDef> = Vec::new();
    for r in 0..n_rules {
        let ti = rng.gen_range(0..tables.len());
        let table = &tables[ti];
        let events = gen_events(&mut rng, table.cols);
        let trans = allowed_transitions(&events);
        let condition = rng
            .gen_bool(cfg.p_condition)
            .then(|| gen_condition(&mut rng, &tables, table.cols, &trans));
        let n_actions = rng.gen_range(1..=cfg.max_actions);
        let actions = (0..n_actions)
            .map(|_| gen_action(&mut rng, cfg, &tables, ti, &trans))
            .collect();
        defs.push(RuleDef {
            name: format!("r{r}"),
            table: table.name.clone(),
            events,
            condition,
            actions,
            precedes: Vec::new(),
            follows: Vec::new(),
        });
    }
    // Priority edges, only downward in index order (acyclic by
    // construction). `precedes` on the lower index and `follows` on the
    // higher are the same ordering; generate both spellings to exercise
    // both paths through the priority machinery.
    //
    // Small programs keep the exhaustive pair scan — byte-identical output
    // for every seed under the default config, which the pinned fuzz-corpus
    // reproducers and CI determinism checks rely on. Past
    // [`DENSE_ORDER_LIMIT`] rules the O(n²) scan is replaced by sparse
    // sampling (a few Bernoulli trials per rule, each drawing a random
    // earlier partner), keeping generation O(n) at the 1k–10k-rule scale
    // while producing a comparable per-rule edge density.
    if n_rules <= DENSE_ORDER_LIMIT {
        for i in 0..n_rules {
            for j in (i + 1)..n_rules {
                if rng.gen_bool(cfg.p_order) {
                    if rng.gen_bool(0.5) {
                        let name = defs[j].name.clone();
                        defs[i].precedes.push(name);
                    } else {
                        let name = defs[i].name.clone();
                        defs[j].follows.push(name);
                    }
                }
            }
        }
    } else {
        for j in 1..n_rules {
            for _ in 0..4 {
                if rng.gen_bool(cfg.p_order) {
                    let i = rng.gen_range(0..j);
                    if rng.gen_bool(0.5) {
                        let name = defs[j].name.clone();
                        if !defs[i].precedes.contains(&name) {
                            defs[i].precedes.push(name);
                        }
                    } else {
                        let name = defs[i].name.clone();
                        if !defs[j].follows.contains(&name) {
                            defs[j].follows.push(name);
                        }
                    }
                }
            }
        }
    }

    // The user transition: plain DML, biased toward tables that have rules
    // so most cases actually trigger something.
    let n_user = rng.gen_range(1..=cfg.max_user_actions);
    let mut user_actions = Vec::new();
    for _ in 0..n_user {
        let ti = if rng.gen_bool(0.8) {
            let def = &defs[rng.gen_range(0..defs.len())];
            tables.iter().position(|t| t.name == def.table).unwrap()
        } else {
            rng.gen_range(0..tables.len())
        };
        let t = &tables[ti];
        user_actions.push(match rng.gen_range(0..3u32) {
            0 => Action::Update(UpdateStmt {
                table: t.name.clone(),
                sets: vec![(
                    format!("c{}", rng.gen_range(0..t.cols)),
                    scalar(&mut rng, t.cols),
                )],
                where_clause: rng.gen_bool(0.5).then(|| predicate(&mut rng, t.cols)),
            }),
            1 => Action::Delete(DeleteStmt {
                table: t.name.clone(),
                where_clause: Some(predicate(&mut rng, t.cols)),
            }),
            _ => Action::Insert(InsertStmt {
                table: t.name.clone(),
                columns: None,
                source: InsertSource::Values(vec![(0..t.cols).map(|_| lit(&mut rng)).collect()]),
            }),
        });
    }

    FuzzCase {
        tables,
        rows,
        defs,
        user_actions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.script(), b.script(), "seed {seed}");
        }
    }

    #[test]
    fn generated_scripts_load() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let case = generate(seed, &cfg);
            let script = case.script();
            let loaded = starling_analysis::loader::load_script(&script)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{script}"));
            assert_eq!(
                loaded.defs, case.defs,
                "seed {seed}: defs drifted\n{script}"
            );
            assert_eq!(
                loaded.user_actions, case.user_actions,
                "seed {seed}: user transition drifted\n{script}"
            );
            assert!(!loaded.user_actions.is_empty(), "seed {seed}");
        }
    }

    /// Scale configs pin the rule count exactly, compile via the direct
    /// catalog (no script round-trip), and stay deterministic across the
    /// sparse priority-edge path.
    #[test]
    fn scaled_cases_compile_at_exact_size() {
        const N: usize = 200;
        const _: () = assert!(N > DENSE_ORDER_LIMIT);
        let cfg = GenConfig::scaled(N);
        let a = generate(7, &cfg);
        let b = generate(7, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.defs.len(), 200);
        let edges: usize = a
            .defs
            .iter()
            .map(|d| d.precedes.len() + d.follows.len())
            .sum();
        assert!(edges > 0, "sparse sampling produced no priority edges");
        starling_engine::RuleSet::compile(&a.defs, &a.catalog())
            .expect("scaled case compiles (names resolve, priority acyclic)");
    }

    /// The sparse path only engages above the limit: default-sized programs
    /// still take the historical exhaustive scan (same bytes per seed).
    #[test]
    fn default_config_stays_on_dense_path() {
        assert!(GenConfig::default().max_rules <= DENSE_ORDER_LIMIT);
    }
}
