//! `starling-fuzz` — randomized rule-program generation with differential
//! oracles and counterexample shrinking.
//!
//! The paper's analyzer is only trustworthy if its verdicts agree with
//! ground truth on programs nobody hand-wrote. This crate closes that loop:
//! a seeded generator produces whole random rule programs ([`gen`]), each
//! program runs through four independent implementations of "what does this
//! program do" ([`oracle`]), any disagreement is greedily shrunk to a
//! minimal reproducer ([`shrink`]) and pinned as a runnable `.star` script
//! ([`corpus`]) that replays as an ordinary `cargo test` regression.
//!
//! Everything is deterministic: the same `(seed, cases, budget)` triple
//! produces the same cases, the same oracle answers, and a byte-identical
//! [`FuzzReport`] rendering — the contract `starling fuzz` exposes and CI
//! relies on. No wall-clock deadline is ever set on the exploration budget
//! for exactly this reason; the per-case bound is `max_states`.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::path::PathBuf;

use starling_engine::Budget;

pub use gen::{generate, FuzzCase, GenConfig};
pub use oracle::{check_script, CaseOutcome, Disagreement, Mutation};
pub use shrink::shrink;

/// One fuzz campaign's configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Root seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Per-case exploration budget (no deadline: determinism).
    pub budget: Budget,
    /// Generator sizes and probabilities.
    pub gen: GenConfig,
    /// Injected analyzer bug, for harness self-tests ([`Mutation::None`]
    /// in production fuzzing).
    pub mutation: Mutation,
    /// Where to write shrunk reproducers (`None`: report only).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 100,
            // Small per-case bounds: a fuzz campaign wants many shallow
            // probes, not one deep one. No deadline — reports must be a
            // pure function of the seed. The row cap matters: generated
            // `insert ... select` rules can multiply rows on every firing,
            // and without it a single case exhausts memory long before
            // `max_states` trips.
            budget: Budget::default()
                .with_max_states(300)
                .with_max_paths(2_000)
                .with_max_considerations(5_000)
                .with_max_rows(2_000),
            gen: GenConfig::default(),
            mutation: Mutation::None,
            corpus_dir: None,
        }
    }
}

/// One disagreement found by a campaign, after shrinking.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Index of the generated case within the campaign.
    pub case_index: usize,
    /// The oracle that fired.
    pub oracle: &'static str,
    /// Both sides' answers, from the *shrunk* reproducer.
    pub detail: String,
    /// For confluence findings: the compact divergence witness, re-derived
    /// from the shrunk reproducer so it stays self-explaining.
    pub witness: Option<String>,
    /// The shrunk case.
    pub case: FuzzCase,
    /// Candidate evaluations the shrinker spent.
    pub shrink_checks: usize,
    /// Where the reproducer was written, when a corpus dir was given.
    pub path: Option<PathBuf>,
}

/// A campaign summary. [`FuzzReport::render`] is byte-identical across runs
/// with the same config.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The campaign's configuration.
    pub config: FuzzConfig,
    /// Total states across all (sequential plan-mode) explorations.
    pub total_states: u64,
    /// Cases whose exploration hit a budget.
    pub truncated: usize,
    /// Cases whose user transition raised an engine error (all engines
    /// agreed on the error).
    pub errored: usize,
    /// All disagreements, shrunk.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Whether the campaign found no disagreements.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// The deterministic text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "starling-fuzz campaign");
        let _ = writeln!(
            s,
            "  seed {}  cases {}  budget max_states={} max_paths={} max_considerations={} max_rows={}",
            self.config.seed,
            self.config.cases,
            self.config.budget.max_states,
            self.config.budget.max_paths,
            self.config.budget.max_considerations,
            self.config.budget.max_rows
        );
        if self.config.mutation != Mutation::None {
            let _ = writeln!(
                s,
                "  INJECTED ANALYZER BUG: {} (harness self-test mode)",
                self.config.mutation.name()
            );
        }
        let _ = writeln!(
            s,
            "  explored {} state(s) total; {} truncated, {} errored transition(s)",
            self.total_states, self.truncated, self.errored
        );
        let _ = writeln!(s, "  disagreements: {}", self.findings.len());
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(s);
            let _ = writeln!(
                s,
                "FINDING {}: oracle `{}` on case {} (shrunk: {} rule(s), {} row(s), \
                 {} user statement(s); {} shrink check(s))",
                i + 1,
                f.oracle,
                f.case_index,
                f.case.defs.len(),
                f.case.rows.len(),
                f.case.user_actions.len(),
                f.shrink_checks
            );
            for line in f.detail.lines() {
                let _ = writeln!(s, "  | {line}");
            }
            if let Some(p) = &f.path {
                let _ = writeln!(s, "  reproducer: {}", p.display());
            }
            for line in f.case.script().lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
        s
    }
}

/// splitmix64 step — derives per-case seeds from the campaign seed so cases
/// are decorrelated but reproducible individually.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a fuzz campaign: generate, cross-check, shrink, pin.
pub fn run_fuzz(config: FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        total_states: 0,
        truncated: 0,
        errored: 0,
        findings: Vec::new(),
        config,
    };
    for i in 0..report.config.cases {
        let case_seed = mix(report.config.seed, i as u64);
        let case = generate(case_seed, &report.config.gen);
        let outcome = check_script(
            &case.script(),
            &report.config.budget,
            report.config.mutation,
        );
        report.total_states += outcome.states as u64;
        if outcome.truncated {
            report.truncated += 1;
        }
        if outcome.errored {
            report.errored += 1;
        }
        let Some(d) = outcome.disagreement else {
            continue;
        };
        let (small, shrink_checks) = shrink(
            &case,
            &report.config.budget,
            report.config.mutation,
            d.oracle,
        );
        // Re-check the shrunk case for the final detail and witness (the
        // shrunk reproducer's answers, not the original's — this is also
        // what re-minimizes a divergence witness after every shrink).
        let (detail, witness) = check_script(
            &small.script(),
            &report.config.budget,
            report.config.mutation,
        )
        .disagreement
        .map(|d| (d.detail, d.witness))
        .unwrap_or((d.detail, d.witness));
        let path = report.config.corpus_dir.as_ref().and_then(|dir| {
            corpus::write_reproducer(
                dir,
                report.config.seed,
                i,
                d.oracle,
                &detail,
                witness.as_deref(),
                &small.script(),
            )
            .ok()
        });
        report.findings.push(Finding {
            case_index: i,
            oracle: d.oracle,
            detail,
            witness,
            case: small,
            shrink_checks,
            path,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cases: usize, mutation: Mutation) -> FuzzConfig {
        FuzzConfig {
            cases,
            mutation,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_fuzz(quick(12, Mutation::None));
        let b = run_fuzz(quick(12, Mutation::None));
        assert_eq!(a.render(), b.render());
        assert_eq!(a.total_states, b.total_states);
    }

    #[test]
    fn shipped_code_has_no_disagreements() {
        let r = run_fuzz(quick(40, Mutation::None));
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn injected_analyzer_bug_is_caught_and_shrunk() {
        // The acceptance-criteria mutation check: pretending the analyzer
        // certifies termination for every program must produce a
        // disagreement within a modest number of cases, and the shrunk
        // reproducer must be tiny.
        let r = run_fuzz(quick(60, Mutation::CertifyTermination));
        assert!(
            !r.findings.is_empty(),
            "mutation produced no disagreement in 60 cases:\n{}",
            r.render()
        );
        for f in &r.findings {
            assert_eq!(f.oracle, "analyzer-termination", "{}", r.render());
            assert!(
                f.case.defs.len() <= 3,
                "finding on case {} shrunk to {} rules (> 3):\n{}",
                f.case_index,
                f.case.defs.len(),
                f.case.script()
            );
        }
    }

    #[test]
    fn injected_confluence_bug_is_caught_and_shrunk() {
        let r = run_fuzz(quick(60, Mutation::CertifyConfluence));
        assert!(
            !r.findings.is_empty(),
            "mutation produced no disagreement in 60 cases:\n{}",
            r.render()
        );
        for f in &r.findings {
            assert_eq!(f.oracle, "analyzer-confluence", "{}", r.render());
            assert!(f.case.defs.len() <= 3, "{}", f.case.script());
        }
    }
}
