//! The differential harness: one generated (or replayed) script, five
//! cross-checked oracles.
//!
//! | oracle        | left side                     | right side                  |
//! |---------------|-------------------------------|-----------------------------|
//! | `analyzer`    | §5–§8 static verdicts         | bounded exec-graph oracle   |
//! | `eval-mode`   | columnar-plan exploration     | row-plan exploration and    |
//! |               |                               | AST-interpreter exploration |
//! | `parallelism` | sequential exploration        | level-parallel exploration  |
//! | `transport`   | in-process load + explore     | server session (wire shape) |
//! | `durability`  | in-memory session commit      | WAL-attached session, then  |
//! |               |                               | drop-and-reopen recovery    |
//!
//! Directionality matters for the analyzer oracle: the static analysis
//! quantifies over *all* databases while the exec graph checks *one* initial
//! state, so only one implication is checkable — a static "guaranteed" must
//! never coexist with a dynamic counterexample ([`Verdict::Fails`]). A
//! dynamic `Holds` with a static "may not" is the analyzer being
//! conservative, which is correct. The other three oracles demand byte
//! equality of the serialized graph summary.
//!
//! A zeroth check rides along for free: each loaded rule definition must
//! survive print → parse unchanged (the fixpoint property the SQL layer's
//! property tests assert statement-by-statement, here applied to whole
//! generated rules).

use starling_analysis::loader::load_script;
use starling_analysis::report::{explore_json, AnalysisReport};
use starling_engine::{
    explore_parallel, explore_with_mode, Budget, EvalMode, ExecGraph, FirstEligible, Session,
    Verdict,
};
use starling_server::{ErrorCode, ScriptCache, ServerSession};
use starling_sql::ast::Statement;
use starling_sql::json::Json;
use starling_sql::parse_script;
use starling_storage::SyncPolicy;

/// A deliberately injected analyzer bug, used to validate that the harness
/// actually catches unsound verdicts (the mutation check documented in
/// DESIGN.md §4g). `None` in production fuzzing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No injected bug.
    None,
    /// Pretend the analyzer certified termination for every program.
    CertifyTermination,
    /// Pretend the analyzer certified confluence for every program.
    CertifyConfluence,
    /// Pretend the analyzer certified observable determinism.
    CertifyObservable,
}

impl Mutation {
    /// Parses a CLI spelling (`none`, `certify-termination`, ...).
    pub fn from_name(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "certify-termination" => Some(Mutation::CertifyTermination),
            "certify-confluence" => Some(Mutation::CertifyConfluence),
            "certify-observable" => Some(Mutation::CertifyObservable),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::CertifyTermination => "certify-termination",
            Mutation::CertifyConfluence => "certify-confluence",
            Mutation::CertifyObservable => "certify-observable",
        }
    }
}

/// One oracle disagreement: which oracle, and what each side said.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// The oracle that fired (`analyzer-termination`, `eval-mode`, ...).
    pub oracle: &'static str,
    /// Human-readable detail: both sides' answers.
    pub detail: String,
    /// For confluence findings: the compact replay-verified divergence
    /// witness, recomputed on every (re-)check so it always explains the
    /// script as written — shrunk reproducers included.
    pub witness: Option<String>,
}

/// The outcome of running one script through every oracle.
#[derive(Clone, Debug, Default)]
pub struct CaseOutcome {
    /// States in the (sequential, columnar-mode) execution graph.
    pub states: usize,
    /// Whether the exploration hit a budget.
    pub truncated: bool,
    /// Whether the user transition itself raised an engine error (the
    /// oracles then only check that every engine agrees on the error).
    pub errored: bool,
    /// The first disagreement found, if any.
    pub disagreement: Option<Disagreement>,
}

fn disagree(oracle: &'static str, detail: String) -> CaseOutcome {
    CaseOutcome {
        disagreement: Some(Disagreement {
            oracle,
            detail,
            witness: None,
        }),
        ..CaseOutcome::default()
    }
}

/// The server side of the `transport` oracle: load the script into a fresh
/// in-process [`ServerSession`] and run `explore` through the protocol
/// handler — cache, session restore, request budget parsing and the
/// inconclusive-error envelope included. Returns the serialized graph
/// summary (a truncated exploration's partial result counts: it travels in
/// the error's `data` member with the same shape).
fn server_explore_json(src: &str, budget: &Budget) -> Result<String, String> {
    let cache = ScriptCache::new();
    let mut session = ServerSession::new();
    let load = Json::obj([("op", Json::from("load")), ("script", Json::from(src))]);
    session
        .handle_op("load", &load, &cache)
        .map_err(|(c, m, _)| format!("load: {} {m}", c.as_str()))?;
    let req = Json::obj([
        ("op", Json::from("explore")),
        (
            "budget",
            Json::obj([
                ("max_considerations", Json::from(budget.max_considerations)),
                ("max_states", Json::from(budget.max_states)),
                ("max_paths", Json::from(budget.max_paths)),
                ("max_rows", Json::from(budget.max_rows)),
            ]),
        ),
    ]);
    match session.handle_op("explore", &req, &cache) {
        Ok(result) => Ok(result.to_string()),
        Err((ErrorCode::Inconclusive, _, Some(data))) => Ok(data.to_string()),
        Err((c, m, _)) => Err(format!("explore: {} {m}", c.as_str())),
    }
}

/// The `durability` oracle: the same script through an in-memory session
/// and a WAL-attached session must produce identical state (a durable
/// attachment must not change semantics), and dropping the durable session
/// *without* a final snapshot — the crash simulation — must recover exactly
/// the acknowledged state: digest and full database equality (tuple-id
/// allocator included), rule definitions, and directives.
fn durability_check(src: &str, budget: &Budget) -> Option<Disagreement> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "starling-fuzz-dur-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let result = durability_check_in(src, budget, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn durability_check_in(src: &str, budget: &Budget, dir: &std::path::Path) -> Option<Disagreement> {
    let fail = |detail: String| {
        Some(Disagreement {
            oracle: "durability",
            witness: None,
            detail,
        })
    };
    let mut mem = Session::new();
    let mut dur = Session::new();
    // A tight consideration cap bounds commit-time rule processing:
    // generated programs are often nonterminating, and — unlike the
    // exploration oracles, whose budget carries `max_rows` — a session
    // commit has no row cap, so a table-doubling rule under the full case
    // budget would grow state exponentially. A handful of firings exercises
    // the WAL exactly as well, and both sides hitting the limit (with
    // identical truncated state) is itself an agreement.
    let cap = budget.max_considerations.min(6);
    mem.max_considerations = cap;
    dur.max_considerations = cap;
    if let Err(e) = dur.persist_to(dir, SyncPolicy::Batch) {
        return fail(format!("persist_to failed on an empty store: {e}"));
    }
    let mem_exec = mem.execute_script(src).map(|_| ());
    let dur_exec = dur.execute_script(src).map(|_| ());
    match (&mem_exec, &dur_exec) {
        (Ok(()), Ok(())) => {}
        (Err(a), Err(b)) if a.to_string() == b.to_string() => {}
        (a, b) => {
            return fail(format!(
                "script execution diverged:\nin-memory: {a:?}\ndurable:   {b:?}"
            ))
        }
    }
    if mem_exec.is_ok() {
        let mem_run = mem.commit(&mut FirstEligible);
        let dur_run = dur.commit(&mut FirstEligible);
        match (&mem_run, &dur_run) {
            (Ok(a), Ok(b)) if a.outcome == b.outcome => {}
            (Err(a), Err(b)) if a.to_string() == b.to_string() => {}
            (a, b) => {
                return fail(format!(
                    "commit diverged:\nin-memory: {a:?}\ndurable:   {b:?}"
                ))
            }
        }
        if mem.db() != dur.db() {
            return fail(format!(
                "durable attachment changed semantics: in-memory digest {:#018x}, \
                 durable {:#018x}",
                mem.db().state_digest(),
                dur.db().state_digest()
            ));
        }
    }
    // Crash simulation: the acknowledged state is whatever the attachment
    // last acked; drop without a final snapshot and reopen from disk.
    let Some(att) = dur.durability() else {
        return fail("durable session lost its attachment".into());
    };
    let base_db = att.base_db().clone();
    let base_defs = att.base_defs().to_vec();
    let base_directives = att.base_directives().to_vec();
    drop(dur);
    let reopened = match Session::open_durable(dir, SyncPolicy::Batch) {
        Ok(s) => s,
        Err(e) => return fail(format!("reopen after simulated crash failed: {e}")),
    };
    if *reopened.db() != base_db {
        return fail(format!(
            "recovered database differs from acknowledged state: recovered digest \
             {:#018x}, acknowledged {:#018x}",
            reopened.db().state_digest(),
            base_db.state_digest()
        ));
    }
    if reopened.rule_defs() != base_defs.as_slice() {
        return fail(format!(
            "recovered rule definitions differ: {} recovered vs {} acknowledged",
            reopened.rule_defs().len(),
            base_defs.len()
        ));
    }
    if reopened.directives() != base_directives.as_slice() {
        return fail(format!(
            "recovered directives differ: {} recovered vs {} acknowledged",
            reopened.directives().len(),
            base_directives.len()
        ));
    }
    None
}

/// Runs one script through all oracles and reports the first disagreement.
///
/// The script must follow the loader convention (seed DML before the rules,
/// user transition after). A script with no user transition only gets the
/// static analysis and round-trip checks — the dynamic oracles are vacuous.
pub fn check_script(src: &str, budget: &Budget, mutation: Mutation) -> CaseOutcome {
    // Generated scripts are valid by construction and corpus scripts were
    // valid when pinned, so a load failure is itself a finding (a
    // parser/validator/loader regression), not a skip.
    let loaded = match load_script(src) {
        Ok(l) => l,
        Err(e) => return disagree("load", format!("script failed to load: {e}")),
    };

    // Zeroth oracle: print → parse must be a fixpoint on every rule.
    for def in &loaded.defs {
        let printed = format!("{def};");
        let reparsed = match parse_script(&printed) {
            Ok(stmts) => stmts,
            Err(e) => {
                return disagree(
                    "round-trip",
                    format!("printed rule does not re-parse: {e}\n{printed}"),
                )
            }
        };
        match reparsed.as_slice() {
            [Statement::CreateRule(r)] if r == def => {}
            _ => {
                return disagree(
                    "round-trip",
                    format!("printed rule re-parses differently:\n{printed}"),
                )
            }
        }
    }

    // Fifth oracle: durability. Runs the whole script (user transition
    // included) through an in-memory and a WAL-attached session, then a
    // drop-and-reopen crash simulation — so it fires on every case, even
    // ones with no explorable transition or an erroring transition (where
    // the durable store must stay at the pre-transaction state). Mutations
    // perturb only the *analyzer*, never execution or storage, so mutation
    // campaigns (and their shrink loops, which replay `check_script` on
    // every candidate) skip the disk round-trip.
    if mutation == Mutation::None {
        if let Some(d) = durability_check(src, budget) {
            return CaseOutcome {
                disagreement: Some(d),
                ..CaseOutcome::default()
            };
        }
    }

    // Static analysis, with the optional injected bug.
    let ctx = loaded.context();
    let report = AnalysisReport::run(&ctx, &[]);
    let term_ok = report.termination.is_guaranteed() || mutation == Mutation::CertifyTermination;
    let conf_ok = report.confluence_guaranteed() || mutation == Mutation::CertifyConfluence;
    let obs_ok = report.observable.is_guaranteed() || mutation == Mutation::CertifyObservable;

    if loaded.user_actions.is_empty() {
        return CaseOutcome::default();
    }

    // Dynamic side: the same exploration under all three evaluation modes.
    let explore = |mode| {
        explore_with_mode(
            &loaded.rules,
            &loaded.db,
            &loaded.user_actions,
            budget,
            mode,
        )
    };
    let columnar = explore(EvalMode::Columnar);
    let plan = explore(EvalMode::Plan);
    let interp = explore(EvalMode::Interp);
    let (g, gr, gi) = match (columnar, plan, interp) {
        (Ok(g), Ok(gr), Ok(gi)) => (g, gr, gi),
        (Err(a), Err(b), Err(c)) => {
            // The transition errors: every engine must agree on the error.
            if a.to_string() != b.to_string() || a.to_string() != c.to_string() {
                return disagree(
                    "eval-mode",
                    format!("columnar error: {a}\nrow-plan error: {b}\ninterp error:   {c}"),
                );
            }
            match explore_parallel(&loaded.rules, &loaded.db, &loaded.user_actions, budget) {
                Ok(_) => {
                    return disagree(
                        "parallelism",
                        format!("sequential explore errored ({a}) but parallel succeeded"),
                    )
                }
                Err(p) if p.to_string() != a.to_string() => {
                    return disagree(
                        "parallelism",
                        format!("sequential error: {a}\nparallel error: {p}"),
                    )
                }
                Err(_) => {}
            }
            match server_explore_json(src, budget) {
                Ok(j) => {
                    return disagree(
                        "transport",
                        format!("in-process explore errored ({a}) but server returned: {j}"),
                    )
                }
                Err(m) if !m.ends_with(&a.to_string()) => {
                    return disagree(
                        "transport",
                        format!("in-process error: {a}\nserver error: {m}"),
                    )
                }
                Err(_) => {}
            }
            return CaseOutcome {
                errored: true,
                ..CaseOutcome::default()
            };
        }
        (c, p, i) => {
            let desc = |r: &Result<ExecGraph, _>| match r {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error: {e}"),
            };
            return disagree(
                "eval-mode",
                format!(
                    "modes disagree on success:\ncolumnar: {}\nrow-plan: {}\ninterp:   {}",
                    desc(&c),
                    desc(&p),
                    desc(&i)
                ),
            );
        }
    };

    let outcome = |g: &ExecGraph, disagreement: Option<Disagreement>| CaseOutcome {
        states: g.states.len(),
        truncated: g.truncated(),
        errored: false,
        disagreement,
    };

    // Oracle: columnar vs row-plan vs interp, byte-identical serialized
    // summaries.
    let columnar_json = explore_json(&g, budget).to_string();
    let plan_json = explore_json(&gr, budget).to_string();
    let interp_json = explore_json(&gi, budget).to_string();
    if columnar_json != plan_json || columnar_json != interp_json {
        return outcome(
            &g,
            Some(Disagreement {
                oracle: "eval-mode",
                witness: None,
                detail: format!(
                    "columnar: {columnar_json}\nrow-plan: {plan_json}\ninterp:   {interp_json}"
                ),
            }),
        );
    }

    // Oracle: sequential vs parallel. Both sides run the process-default
    // evaluation mode, which is one of the three graphs already in hand.
    let seq_json = match EvalMode::default() {
        EvalMode::Columnar => &columnar_json,
        EvalMode::Plan => &plan_json,
        EvalMode::Interp => &interp_json,
    };
    match explore_parallel(&loaded.rules, &loaded.db, &loaded.user_actions, budget) {
        Ok(gp) => {
            let par_json = explore_json(&gp, budget).to_string();
            if par_json != *seq_json {
                return outcome(
                    &g,
                    Some(Disagreement {
                        oracle: "parallelism",
                        witness: None,
                        detail: format!("sequential: {seq_json}\nparallel:   {par_json}"),
                    }),
                );
            }
        }
        Err(e) => {
            return outcome(
                &g,
                Some(Disagreement {
                    oracle: "parallelism",
                    witness: None,
                    detail: format!("sequential succeeded but parallel errored: {e}"),
                }),
            )
        }
    }

    // Oracle: analyzer vs exec graph. A static guarantee must never meet a
    // dynamic counterexample.
    if term_ok && g.termination_verdict() == Verdict::Fails {
        return outcome(
            &g,
            Some(Disagreement {
                oracle: "analyzer-termination",
                witness: None,
                detail: "static: termination guaranteed; oracle: found a cycle in the \
                         execution graph (nonterminating path)"
                    .into(),
            }),
        );
    }
    if conf_ok && g.confluence_verdict() == Verdict::Fails {
        // Provenance: attach a minimal divergence witness, but only after
        // it replays through the engine to the claimed digests — the
        // reproducer header must never carry an unverified explanation.
        let witness = starling_provenance::witness::extract(&loaded.rules, &g).and_then(|w| {
            match starling_provenance::witness::verify(
                &loaded.rules,
                &loaded.db,
                &loaded.user_actions,
                &w,
                EvalMode::Columnar,
            ) {
                Ok(true) => Some(starling_provenance::witness_compact(&loaded.rules, &w)),
                _ => None,
            }
        });
        return outcome(
            &g,
            Some(Disagreement {
                oracle: "analyzer-confluence",
                witness,
                detail: format!(
                    "static: confluence guaranteed; oracle: {} distinct final database \
                     state(s)",
                    g.final_db_digests().len()
                ),
            }),
        );
    }
    // Observable determinism presumes termination (Section 8): only compare
    // when the static side claims both.
    if obs_ok && term_ok && g.observable_determinism_verdict(budget) == Verdict::Fails {
        return outcome(
            &g,
            Some(Disagreement {
                oracle: "analyzer-observable",
                witness: None,
                detail: "static: observable determinism guaranteed; oracle: found \
                         distinct observable streams"
                    .into(),
            }),
        );
    }

    // Oracle: transport. The in-process summary is exactly what the CLI's
    // `explore --json` prints; the server must produce the same bytes.
    match server_explore_json(src, budget) {
        Ok(server_json) => {
            if server_json != columnar_json {
                return outcome(
                    &g,
                    Some(Disagreement {
                        oracle: "transport",
                        witness: None,
                        detail: format!("cli:    {columnar_json}\nserver: {server_json}"),
                    }),
                );
            }
        }
        Err(m) => {
            return outcome(
                &g,
                Some(Disagreement {
                    oracle: "transport",
                    witness: None,
                    detail: format!("in-process explore succeeded but server failed: {m}"),
                }),
            )
        }
    }

    outcome(&g, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "create table t (x int);\n\
                         create table log (x int);\n\
                         insert into t values (1);\n\
                         create rule a on t when inserted then \
                           insert into log select x from inserted end;\n\
                         insert into t values (5);\n";

    #[test]
    fn clean_script_has_no_disagreement() {
        let out = check_script(CLEAN, &Budget::default(), Mutation::None);
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(out.states > 0);
        assert!(!out.truncated);
    }

    #[test]
    fn injected_termination_bug_is_caught() {
        // A two-state toggle: the execution graph is finite and cyclic, so
        // the oracle proves nontermination; the mutation pretends the
        // analyzer certified termination anyway.
        let src = "create table t (x int);\n\
                   insert into t values (0);\n\
                   create rule flip on t when updated(x) then \
                     update t set x = 1 - x end;\n\
                   update t set x = 1 - x;\n";
        let out = check_script(src, &Budget::default(), Mutation::CertifyTermination);
        let d = out.disagreement.expect("mutation must be caught");
        assert_eq!(d.oracle, "analyzer-termination");
        // Without the mutation the same script is clean: the analyzer
        // honestly reports "may not terminate", which the oracle confirms.
        let honest = check_script(src, &Budget::default(), Mutation::None);
        assert!(honest.disagreement.is_none(), "{:?}", honest.disagreement);
    }

    #[test]
    fn injected_confluence_bug_is_caught() {
        let src = "create table t (x int);\n\
                   create table out1 (v int);\n\
                   insert into out1 values (0);\n\
                   create rule a on t when inserted then \
                     update out1 set v = v * 2 + 1 end;\n\
                   create rule b on t when inserted then \
                     update out1 set v = v * 3 end;\n\
                   insert into t values (1);\n";
        let out = check_script(src, &Budget::default(), Mutation::CertifyConfluence);
        let d = out.disagreement.expect("mutation must be caught");
        assert_eq!(d.oracle, "analyzer-confluence");
    }

    #[test]
    fn load_failure_is_a_finding() {
        let out = check_script("create table t (x int;", &Budget::default(), Mutation::None);
        assert_eq!(out.disagreement.expect("must fire").oracle, "load");
    }
}
