//! Greedy structural shrinking of a disagreeing [`FuzzCase`].
//!
//! The shrinker repeatedly proposes smaller candidate cases — drop a rule,
//! drop a seed row, drop a user-transition statement, clear ordering edges,
//! drop a condition, drop an action, strip a `where` clause — and keeps the
//! first candidate that still reproduces a disagreement *from the same
//! oracle*. First-improvement greedy descent to a fixpoint: no candidate in
//! any pass reproduces ⇒ done. Every transformation preserves script
//! validity by construction (tables are never dropped; removing a rule also
//! removes dangling `precedes`/`follows` references to it; a rule keeps at
//! least one action and the case keeps at least one user statement).
//!
//! The total number of re-checks is capped: shrinking is a debugging aid,
//! not a search, and each check runs five oracles.

use starling_engine::Budget;

use crate::gen::FuzzCase;
use crate::oracle::{check_script, Mutation};

/// Upper bound on candidate re-checks per shrink.
const MAX_CHECKS: usize = 400;

/// Shrinks `case` while `check_script` keeps reporting a disagreement from
/// `oracle`. Returns the smallest case found and the number of candidate
/// evaluations spent.
pub fn shrink(
    case: &FuzzCase,
    budget: &Budget,
    mutation: Mutation,
    oracle: &'static str,
) -> (FuzzCase, usize) {
    let reproduces = |c: &FuzzCase| {
        check_script(&c.script(), budget, mutation)
            .disagreement
            .is_some_and(|d| d.oracle == oracle)
    };
    let mut cur = case.clone();
    let mut checks = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            checks += 1;
            if checks > MAX_CHECKS {
                return (cur, checks);
            }
            if reproduces(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        return (cur, checks);
    }
}

/// Removes rule `i`, fixing up ordering references to it.
fn without_rule(case: &FuzzCase, i: usize) -> FuzzCase {
    let mut c = case.clone();
    let name = c.defs.remove(i).name;
    for def in &mut c.defs {
        def.precedes.retain(|p| p != &name);
        def.follows.retain(|p| p != &name);
    }
    c
}

/// All single-step reductions of `case`, largest first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Drop a whole rule (down to one — a disagreement needs some rule).
    if case.defs.len() > 1 {
        for i in 0..case.defs.len() {
            out.push(without_rule(case, i));
        }
    }
    // Drop a seed row.
    for i in 0..case.rows.len() {
        let mut c = case.clone();
        c.rows.remove(i);
        out.push(c);
    }
    // Drop a user-transition statement (keep at least one: `explore` needs
    // a probe).
    if case.user_actions.len() > 1 {
        for i in 0..case.user_actions.len() {
            let mut c = case.clone();
            c.user_actions.remove(i);
            out.push(c);
        }
    }
    // Clear a rule's ordering edges.
    for i in 0..case.defs.len() {
        if !case.defs[i].precedes.is_empty() || !case.defs[i].follows.is_empty() {
            let mut c = case.clone();
            c.defs[i].precedes.clear();
            c.defs[i].follows.clear();
            out.push(c);
        }
    }
    // Drop a rule's condition.
    for i in 0..case.defs.len() {
        if case.defs[i].condition.is_some() {
            let mut c = case.clone();
            c.defs[i].condition = None;
            out.push(c);
        }
    }
    // Drop one action of a multi-action rule.
    for i in 0..case.defs.len() {
        if case.defs[i].actions.len() > 1 {
            for a in 0..case.defs[i].actions.len() {
                let mut c = case.clone();
                c.defs[i].actions.remove(a);
                out.push(c);
            }
        }
    }
    // Strip one `where` clause (predicate simplification): conditions'
    // subqueries, rule actions, and the user transition.
    let sites = where_sites(case);
    for s in 0..sites {
        let mut c = case.clone();
        strip_where(&mut c, s);
        out.push(c);
    }
    out
}

/// Visits every strippable `where` clause in the case, in a fixed order.
/// `strip` receives the site index and the clause slot; returns the total
/// site count.
fn visit_wheres(case: &mut FuzzCase, mut strip: impl FnMut(usize, &mut Option<ExprSlot>)) -> usize {
    use starling_sql::ast::{Action, Expr, InsertSource};
    let mut idx = 0;
    let visit_action =
        |a: &mut Action, idx: &mut usize, strip: &mut dyn FnMut(usize, &mut Option<ExprSlot>)| {
            let slot: Option<&mut Option<Expr>> = match a {
                Action::Insert(s) => match &mut s.source {
                    InsertSource::Select(sel) => Some(&mut sel.where_clause),
                    InsertSource::Values(_) => None,
                },
                Action::Delete(s) => Some(&mut s.where_clause),
                Action::Update(s) => Some(&mut s.where_clause),
                Action::Select(s) => Some(&mut s.where_clause),
                Action::Rollback => None,
            };
            if let Some(slot) = slot {
                if slot.is_some() {
                    strip(*idx, slot);
                    *idx += 1;
                }
            }
        };
    for def in &mut case.defs {
        // `[not] exists (select ... where p)` conditions.
        let sub = match &mut def.condition {
            Some(Expr::Exists(sel)) => Some(sel),
            Some(Expr::Not(inner)) => match inner.as_mut() {
                Expr::Exists(sel) => Some(sel),
                _ => None,
            },
            _ => None,
        };
        if let Some(sel) = sub {
            if sel.where_clause.is_some() {
                strip(idx, &mut sel.where_clause);
                idx += 1;
            }
        }
        for a in &mut def.actions {
            visit_action(a, &mut idx, &mut strip);
        }
    }
    for a in &mut case.user_actions {
        visit_action(a, &mut idx, &mut strip);
    }
    idx
}

type ExprSlot = starling_sql::ast::Expr;

/// Number of strippable `where` clauses in the case.
fn where_sites(case: &FuzzCase) -> usize {
    visit_wheres(&mut case.clone(), |_, _| {})
}

/// Clears the `site`-th `where` clause.
fn strip_where(case: &mut FuzzCase, site: usize) {
    visit_wheres(case, |idx, slot| {
        if idx == site {
            *slot = None;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn candidates_preserve_validity() {
        // Every single-step reduction of a valid generated case must still
        // load: the shrinker never wastes a check on an invalid script.
        let cfg = GenConfig::default();
        for seed in 0..15 {
            let case = generate(seed, &cfg);
            for (i, cand) in candidates(&case).iter().enumerate() {
                let script = cand.script();
                starling_analysis::loader::load_script(&script)
                    .unwrap_or_else(|e| panic!("seed {seed} candidate {i}: {e}\n{script}"));
            }
        }
    }

    #[test]
    fn shrinks_injected_bug_to_tiny_core() {
        // A fat, hand-built case around a one-rule toggle — padding rules,
        // rows, ordering edges, and an extra user statement. The shrinker
        // must strip it back down to (nearly) the toggle alone under the
        // termination mutation.
        use crate::gen::TableSpec;
        use starling_sql::ast::{
            Action, BinOp, DeleteStmt, Expr, InsertSource, InsertStmt, RuleDef, TriggerEvent,
            UpdateStmt,
        };
        let toggle_update = || {
            Action::Update(UpdateStmt {
                table: "t0".into(),
                sets: vec![(
                    "c0".into(),
                    Expr::bin(BinOp::Sub, Expr::int(1), Expr::col("c0")),
                )],
                where_clause: None,
            })
        };
        // Inert padding: rules on t1 that fire at most once and change
        // nothing the toggle depends on.
        let pad = |name: &str, action: Action| RuleDef {
            name: name.into(),
            table: "t1".into(),
            events: vec![TriggerEvent::Inserted],
            condition: None,
            actions: vec![action],
            precedes: Vec::new(),
            follows: Vec::new(),
        };
        let mut case = FuzzCase {
            tables: vec![
                TableSpec {
                    name: "t0".into(),
                    cols: 2,
                },
                TableSpec {
                    name: "t1".into(),
                    cols: 1,
                },
            ],
            rows: vec![(0, vec![0, 4]), (0, vec![2, -1]), (1, vec![3])],
            defs: vec![
                pad(
                    "pad0",
                    Action::Delete(DeleteStmt {
                        table: "t1".into(),
                        where_clause: Some(Expr::bin(BinOp::Ge, Expr::col("c0"), Expr::int(99))),
                    }),
                ),
                pad(
                    "pad1",
                    Action::Update(UpdateStmt {
                        table: "t0".into(),
                        sets: vec![("c1".into(), Expr::int(7))],
                        where_clause: Some(Expr::bin(BinOp::Lt, Expr::col("c1"), Expr::int(5))),
                    }),
                ),
                RuleDef {
                    name: "toggle".into(),
                    table: "t0".into(),
                    events: vec![TriggerEvent::Updated(Some(vec!["c0".into()]))],
                    condition: None,
                    actions: vec![toggle_update()],
                    precedes: Vec::new(),
                    follows: vec!["pad0".into()],
                },
            ],
            user_actions: vec![
                toggle_update(),
                Action::Insert(InsertStmt {
                    table: "t1".into(),
                    columns: None,
                    source: InsertSource::Values(vec![vec![Expr::int(6)]]),
                }),
            ],
        };
        case.rows.push((0, vec![0, 0]));
        let budget = Budget::default()
            .with_max_states(300)
            .with_max_paths(2000)
            .with_max_rows(2000);
        let out = check_script(&case.script(), &budget, Mutation::CertifyTermination);
        let d = out.disagreement.expect("toggle must be a counterexample");
        let (small, _) = shrink(&case, &budget, Mutation::CertifyTermination, d.oracle);
        assert!(
            small.defs.len() <= 3,
            "expected <= 3 rules after shrinking, got {}:\n{}",
            small.defs.len(),
            small.script()
        );
        // Still reproduces.
        let again = check_script(&small.script(), &budget, Mutation::CertifyTermination);
        assert_eq!(again.disagreement.expect("still fires").oracle, d.oracle);
    }
}
