//! Provenance bookkeeping counters, reported by the server `stats` op.

use starling_engine::DecisionLog;
use starling_sql::json::Json;

use crate::witness::Witness;

/// Cumulative provenance counters for one session or process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvCounters {
    /// Traced explorations whose decision log was recorded.
    pub traces_recorded: usize,
    /// Choice points (ambiguous states) recorded across all traces.
    pub choice_points: usize,
    /// Divergence witnesses extracted.
    pub witnesses_extracted: usize,
    /// Total steps shaved off baseline witnesses by minimization.
    pub minimization_steps: usize,
}

impl ProvCounters {
    /// Fresh counters.
    pub fn new() -> Self {
        ProvCounters::default()
    }

    /// Accounts one traced exploration.
    pub fn record_trace(&mut self, log: &DecisionLog) {
        self.traces_recorded += 1;
        self.choice_points += log.ambiguous();
    }

    /// Accounts one extracted witness.
    pub fn record_witness(&mut self, w: &Witness) {
        self.witnesses_extracted += 1;
        self.minimization_steps += w.minimization_steps;
    }

    /// The counters as a JSON object (nested under `"provenance"` in the
    /// server's `stats` response).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traces_recorded", Json::from(self.traces_recorded)),
            ("choice_points", Json::from(self.choice_points)),
            ("witnesses_extracted", Json::from(self.witnesses_extracted)),
            ("minimization_steps", Json::from(self.minimization_steps)),
        ])
    }
}
