//! # starling-provenance
//!
//! Why-provenance for rule-processing outcomes, in the sense of
//! Hellerstein's *determination provenance*: when the execution-graph
//! oracle enumerates multiple final states, this crate answers *why* —
//! which choice points and rule orderings produced each outcome — and
//! compresses the answer into a replayable **divergence witness**.
//!
//! The pipeline:
//!
//! 1. **Record** — [`starling_engine::explore_traced`] explores exactly as
//!    the untraced oracle does, while logging a compact
//!    [`DecisionLog`](starling_engine::DecisionLog) of choice points:
//!    interned eligible-rule sets at the states where more than one rule
//!    was eligible. Deterministic programs record nothing.
//! 2. **Explain** — given two final database digests, [`witness::extract`]
//!    walks canonical decision traces back to the latest common ancestor,
//!    takes the divergence frontier (the first choice point where the
//!    paths split, and the non-commuting rule pair chosen there), then
//!    greedily minimizes it by reverse breadth-first search to the
//!    globally shortest witness: a pair of rule-firing sequences from one
//!    common state that reach the two distinct outcomes.
//! 3. **Verify** — [`witness::verify`] replays both sequences through the
//!    engine ([`starling_engine::replay_rule_sequence`]) and asserts the
//!    divergent digests, so a reported witness is never a conjecture.
//!
//! [`explain_divergence`] bundles the three steps behind one call; the
//! CLI `starling explain`, the server `explain` op, and the fuzz harness
//! all go through it.

pub mod counters;
pub mod render;
pub mod witness;

pub use counters::ProvCounters;
pub use render::{witness_compact, witness_json, witness_text};
pub use witness::{extract, verify, Witness};

use starling_engine::{
    explore_traced_with_mode, DecisionLog, EngineError, EvalMode, ExecGraph, ExploreConfig, RuleSet,
};
use starling_sql::ast::Action;
use starling_storage::Database;

/// The result of a traced exploration plus divergence explanation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explored graph (identical to the untraced oracle's).
    pub graph: ExecGraph,
    /// The recorded decision log.
    pub log: DecisionLog,
    /// The minimized, replay-verified witness — `None` iff the explored
    /// graph has at most one final database digest (confluent as far as
    /// the budget could see).
    pub witness: Option<Witness>,
}

/// Explores `rules` from the initial transition `actions` with provenance
/// tracing, and — if the oracle finds more than one final database state —
/// extracts, minimizes, and replay-verifies a divergence witness.
pub fn explain_divergence(
    rules: &RuleSet,
    base_db: &Database,
    actions: &[Action],
    cfg: &ExploreConfig,
    mode: EvalMode,
) -> Result<Explanation, EngineError> {
    let (graph, log) = explore_traced_with_mode(rules, base_db, actions, cfg, mode)?;
    let witness = match witness::extract(rules, &graph) {
        Some(mut w) => {
            w.replay_verified = witness::verify(rules, base_db, actions, &w, mode)?;
            Some(w)
        }
        None => None,
    };
    Ok(Explanation {
        graph,
        log,
        witness,
    })
}
