//! Witness rendering: human transcript, shared JSON shape, and the
//! one-line compact form embedded in fuzz reproducer headers.

use starling_engine::{RuleId, RuleSet};
use starling_sql::json::{digest_json, Json};

use crate::witness::Witness;

fn name(rules: &RuleSet, id: RuleId) -> String {
    rules.get(id).name().to_owned()
}

fn names(rules: &RuleSet, seq: &[RuleId]) -> Vec<String> {
    seq.iter().map(|&id| name(rules, id)).collect()
}

/// The witness as JSON, in the shared `crates/sql/src/json.rs` shape used
/// by both the CLI `--json` output and the server `explain` op.
pub fn witness_json(rules: &RuleSet, w: &Witness) -> Json {
    let branch = |seq: &[RuleId], digest: u64| {
        Json::obj([
            (
                "rules",
                Json::arr(names(rules, seq).into_iter().map(Json::Str)),
            ),
            ("final_db_digest", digest_json(digest)),
        ])
    };
    Json::obj([
        ("divergence_state", digest_json(w.state_digest)),
        (
            "prefix",
            Json::arr(names(rules, &w.prefix).into_iter().map(Json::Str)),
        ),
        (
            "pair",
            Json::arr([
                Json::Str(name(rules, w.pair.0)),
                Json::Str(name(rules, w.pair.1)),
            ]),
        ),
        ("left", branch(&w.left, w.left_digest)),
        ("right", branch(&w.right, w.right_digest)),
        (
            "reasons",
            Json::arr(w.reasons.iter().cloned().map(Json::Str)),
        ),
        ("baseline_len", Json::from(w.baseline_len)),
        ("minimization_steps", Json::from(w.minimization_steps)),
        ("replay_verified", Json::Bool(w.replay_verified)),
    ])
}

/// Human-readable witness transcript (the CLI's default rendering).
pub fn witness_text(rules: &RuleSet, w: &Witness) -> String {
    let seq = |s: &[RuleId]| {
        if s.is_empty() {
            "(none)".to_owned()
        } else {
            names(rules, s).join(", ")
        }
    };
    let mut out = String::new();
    out.push_str("divergence witness (minimal, replay-checked)\n");
    out.push_str(&format!(
        "  divergence state : {} (after firing: {})\n",
        digest_json(w.state_digest),
        seq(&w.prefix)
    ));
    out.push_str(&format!(
        "  diverging pair   : {} vs {}\n",
        name(rules, w.pair.0),
        name(rules, w.pair.1)
    ));
    out.push_str(&format!(
        "  left  : fire [{}] -> final db {}\n",
        seq(&w.left),
        digest_json(w.left_digest)
    ));
    out.push_str(&format!(
        "  right : fire [{}] -> final db {}\n",
        seq(&w.right),
        digest_json(w.right_digest)
    ));
    for r in &w.reasons {
        out.push_str(&format!("  why: {r}\n"));
    }
    out.push_str(&format!(
        "  minimized {} step(s) off the trace frontier; replay {}\n",
        w.minimization_steps,
        if w.replay_verified {
            "reproduced both digests"
        } else {
            "FAILED to reproduce the digests"
        }
    ));
    out
}

/// One-line compact form, safe for fuzz reproducer comment headers:
/// `witness [a|b]: left=[a] right=[b] dbs=0011..!=00ff..`.
pub fn witness_compact(rules: &RuleSet, w: &Witness) -> String {
    let seq = |s: &[RuleId]| names(rules, s).join(";");
    format!(
        "witness [{}|{}]: prefix=[{}] left=[{}] right=[{}] dbs={:016x}!={:016x}",
        name(rules, w.pair.0),
        name(rules, w.pair.1),
        seq(&w.prefix),
        seq(&w.left),
        seq(&w.right),
        w.left_digest,
        w.right_digest
    )
}
