//! Divergence-witness extraction, minimization, and replay verification.
//!
//! A witness is the provenance answer to "why is this program not
//! confluent here?": one common state plus two rule-firing sequences that
//! provably reach different final database states. Extraction works on
//! the completed execution graph:
//!
//! * the **baseline** witness walks the canonical decision trace of one
//!   final state per divergent digest back to their latest common
//!   ancestor — the divergence frontier of the recorded choice points;
//! * **minimization** then runs a reverse breadth-first search from each
//!   digest's final states, computing for every state its shortest
//!   distance to each outcome, and picks the state minimizing the summed
//!   branch lengths — the globally shortest witness, found greedily in
//!   `O(states + edges)` with deterministic tie-breaks (smallest state
//!   index, first matching out-edge).
//!
//! At the minimizing state the two shortest branches necessarily diverge
//! on their first step (a shared first edge would yield a strictly
//! shorter witness one step deeper), so `left[0]` / `right[0]` is the
//! non-commuting rule pair of the frontier.

use starling_analysis::{noncommutativity_reasons, AnalysisContext, Certifications};
use starling_engine::exec_graph::apply_user_actions;
use starling_engine::{
    replay_rule_sequence, EngineError, EvalMode, ExecGraph, ExecState, RuleId, RuleSet,
};
use starling_sql::ast::Action;
use starling_storage::Database;

/// A minimized divergence witness: from the state reached by firing
/// `prefix` from the initial state, the `left` and `right` sequences reach
/// final database states with distinct digests.
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// Index of the divergence state in the execution graph.
    pub state: usize,
    /// Canonical `(D, TR)` digest of the divergence state.
    pub state_digest: u64,
    /// Firing sequence from the initial state to the divergence state.
    pub prefix: Vec<RuleId>,
    /// First branch: firing sequence to a final state with `left_digest`.
    pub left: Vec<RuleId>,
    /// Second branch: firing sequence to a final state with `right_digest`.
    pub right: Vec<RuleId>,
    /// Final database digest reached by `prefix ++ left`.
    pub left_digest: u64,
    /// Final database digest reached by `prefix ++ right`.
    pub right_digest: u64,
    /// The non-commuting pair at the frontier: `(left[0], right[0])`.
    pub pair: (RuleId, RuleId),
    /// Lemma 6.1 reasons why the pair may not commute (empty when static
    /// analysis sees no conflict — the divergence is then purely dynamic).
    pub reasons: Vec<String>,
    /// `|left| + |right|` of the unminimized latest-common-ancestor
    /// witness.
    pub baseline_len: usize,
    /// Steps shaved off the baseline by minimization.
    pub minimization_steps: usize,
    /// Whether [`verify`] reproduced both digests by engine replay.
    pub replay_verified: bool,
}

impl Witness {
    /// Total branch length of the minimized witness.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Whether both branches are empty (never produced by [`extract`]).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }
}

/// Canonical parent edge per state: the edge that first discovered it.
/// Edges are pushed in discovery order, so the first in-edge of a state is
/// its breadth-first discovery edge and the resulting parent chain is a
/// shortest path from the initial state.
fn canonical_parents(g: &ExecGraph) -> Vec<Option<usize>> {
    let mut parent = vec![None; g.states.len()];
    for (e, edge) in g.edges.iter().enumerate() {
        if edge.to != 0 && parent[edge.to].is_none() {
            parent[edge.to] = Some(e);
        }
    }
    parent
}

/// The canonical decision trace of `state`: `(state chain, rule chain)`
/// from the initial state, with `states.len() == rules.len() + 1`.
fn canonical_trace(
    g: &ExecGraph,
    parent: &[Option<usize>],
    state: usize,
) -> (Vec<usize>, Vec<RuleId>) {
    let mut states = vec![state];
    let mut rules = Vec::new();
    let mut cur = state;
    while let Some(e) = parent[cur] {
        rules.push(g.edges[e].rule);
        cur = g.edges[e].from;
        states.push(cur);
    }
    states.reverse();
    rules.reverse();
    (states, rules)
}

/// Multi-source reverse BFS: shortest distance from every state to a final
/// state carrying database digest `digest` (`usize::MAX` if unreachable).
fn dist_to_digest(g: &ExecGraph, rev: &[Vec<usize>], digest: u64) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.states.len()];
    let mut queue = std::collections::VecDeque::new();
    for &f in &g.final_states {
        if g.states[f].db_digest == digest {
            dist[f] = 0;
            queue.push_back(f);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &p in &rev[s] {
            if dist[p] == usize::MAX {
                dist[p] = dist[s] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Greedy shortest-path reconstruction: from `state`, repeatedly take the
/// first out-edge whose target is one step closer to the digest's finals.
fn shortest_branch(g: &ExecGraph, dist: &[usize], mut state: usize) -> Vec<RuleId> {
    let mut seq = Vec::with_capacity(dist[state]);
    while dist[state] > 0 {
        let e = g.states[state]
            .out_edges
            .iter()
            .copied()
            .find(|&e| dist[g.edges[e].to] == dist[state] - 1)
            .expect("BFS distance must decrease along some out-edge");
        seq.push(g.edges[e].rule);
        state = g.edges[e].to;
    }
    seq
}

/// Extracts a minimized (but not yet replay-verified) divergence witness
/// from an explored graph, or `None` if the graph has fewer than two
/// distinct final database digests.
///
/// Deterministic: the two smallest divergent digests are explained, and
/// every tie inside extraction breaks on the smallest state index or the
/// first matching out-edge.
pub fn extract(rules: &RuleSet, g: &ExecGraph) -> Option<Witness> {
    let digests = g.final_db_digests();
    if digests.len() < 2 {
        return None;
    }
    let mut it = digests.iter();
    let d1 = *it.next().expect("len >= 2");
    let d2 = *it.next().expect("len >= 2");

    // Baseline: latest common ancestor of the canonical decision traces of
    // the first final state per digest.
    let parent = canonical_parents(g);
    let f1 = *g
        .final_states
        .iter()
        .find(|&&f| g.states[f].db_digest == d1)
        .expect("digest came from a final state");
    let f2 = *g
        .final_states
        .iter()
        .find(|&&f| g.states[f].db_digest == d2)
        .expect("digest came from a final state");
    let (chain1, rules1) = canonical_trace(g, &parent, f1);
    let (chain2, rules2) = canonical_trace(g, &parent, f2);
    let mut lca = 0;
    while lca + 1 < chain1.len() && lca + 1 < chain2.len() && chain1[lca + 1] == chain2[lca + 1] {
        lca += 1;
    }
    let baseline_len = (rules1.len() - lca) + (rules2.len() - lca);

    // Minimization: the state with the smallest summed distance to both
    // outcomes is the shortest witness's divergence state.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); g.states.len()];
    for edge in &g.edges {
        rev[edge.to].push(edge.from);
    }
    let dist1 = dist_to_digest(g, &rev, d1);
    let dist2 = dist_to_digest(g, &rev, d2);
    let state = (0..g.states.len())
        .filter(|&s| dist1[s] != usize::MAX && dist2[s] != usize::MAX)
        .min_by_key(|&s| (dist1[s] + dist2[s], s))?;
    let left = shortest_branch(g, &dist1, state);
    let right = shortest_branch(g, &dist2, state);
    let (_, prefix) = canonical_trace(g, &parent, state);
    let pair = (left[0], right[0]);

    let ctx = AnalysisContext::from_ruleset(rules, Certifications::new());
    let reasons = noncommutativity_reasons(&ctx.sigs[pair.0 .0], &ctx.sigs[pair.1 .0])
        .iter()
        .map(ToString::to_string)
        .collect();

    let minimized = left.len() + right.len();
    Some(Witness {
        state,
        state_digest: g.states[state].digest,
        prefix,
        left,
        right,
        left_digest: d1,
        right_digest: d2,
        pair,
        reasons,
        baseline_len,
        minimization_steps: baseline_len.saturating_sub(minimized),
        replay_verified: false,
    })
}

/// Replays both witness branches through the engine — exactly as the
/// explorer expands edges — and checks that they reproduce the claimed,
/// distinct final database digests.
pub fn verify(
    rules: &RuleSet,
    base_db: &Database,
    actions: &[Action],
    w: &Witness,
    mode: EvalMode,
) -> Result<bool, EngineError> {
    let mut db = base_db.clone();
    let ops = apply_user_actions(&mut db, actions)?;
    let replay = |branch: &[RuleId]| -> Result<u64, EngineError> {
        let mut st = ExecState::new(db.clone(), rules.len(), &ops);
        let seq: Vec<RuleId> = w.prefix.iter().chain(branch.iter()).copied().collect();
        replay_rule_sequence(rules, &mut st, base_db, &seq, mode)?;
        Ok(st.db.state_digest())
    };
    let l = replay(&w.left)?;
    let r = replay(&w.right)?;
    Ok(l == w.left_digest && r == w.right_digest && l != r)
}

#[cfg(test)]
mod tests {
    use starling_analysis::load_script;
    use starling_engine::{explore, explore_traced, Budget};

    use crate::explain_divergence;

    /// Two unordered rules racing on `u.x`: the canonical non-confluent
    /// program (Lemma 6.1, condition 5).
    const RACE: &str = "
        create table t (x int);
        create table u (x int);
        insert into u values (0);
        create rule a on t when inserted then update u set x = 1 end;
        create rule b on t when inserted then update u set x = 2 end;
        insert into t values (1);
    ";

    const CONFLUENT: &str = "
        create table t (x int);
        create table u (x int);
        insert into u values (0);
        create rule a on t when inserted then update u set x = 1 end;
        insert into t values (1);
    ";

    #[test]
    fn race_yields_minimal_verified_witness() {
        let s = load_script(RACE).unwrap();
        let cfg = Budget::default();
        let ex =
            explain_divergence(&s.rules, &s.db, &s.user_actions, &cfg, Default::default()).unwrap();
        let w = ex.witness.expect("two final digests -> witness");
        assert!(w.replay_verified, "replay must reproduce both digests");
        assert_ne!(w.left_digest, w.right_digest);
        assert_ne!(w.pair.0, w.pair.1);
        // a then b vs b then a: each branch needs at most two firings.
        assert!(w.left.len() + w.right.len() <= 4, "witness not minimal");
        assert!(
            !w.reasons.is_empty(),
            "update/update conflict has a Lemma 6.1 reason"
        );
        // The race is ambiguous at the root: the log saw it.
        assert!(ex.log.ambiguous() >= 1);
    }

    #[test]
    fn confluent_program_has_no_witness() {
        let s = load_script(CONFLUENT).unwrap();
        let cfg = Budget::default();
        let ex =
            explain_divergence(&s.rules, &s.db, &s.user_actions, &cfg, Default::default()).unwrap();
        assert!(ex.witness.is_none());
        assert_eq!(ex.log.ambiguous(), 0, "single eligible rule: no record");
    }

    #[test]
    fn traced_graph_is_identical_to_untraced() {
        for src in [RACE, CONFLUENT] {
            let s = load_script(src).unwrap();
            let cfg = Budget::default();
            let plain = explore(&s.rules, &s.db, &s.user_actions, &cfg).unwrap();
            let (traced, _) = explore_traced(&s.rules, &s.db, &s.user_actions, &cfg).unwrap();
            assert_eq!(plain, traced, "tracing must not perturb exploration");
        }
    }
}
