//! The shared compiled-program cache.
//!
//! N clients loading the same rule script must not pay N parses, N seed
//! executions, and N rule-set compilations. The cache keys a fully loaded
//! [`LoadedScript`] — seeded copy-on-write database, compiled
//! [`starling_engine::RuleSet`] behind an `Arc`, certifications, user
//! transition — by the FNV-1a digest of the *source text*, so a cache hit
//! hands a session its snapshot with two refcount bumps and zero
//! recompilation.
//!
//! Snapshot isolation falls out of PR 2's storage layer: `Database` is
//! `Arc`-shared copy-on-write, so every session's `db.clone()` shares
//! tables until that session writes, and no session can observe another's
//! writes.
//!
//! Under the worker pool a panicking request (contained by the executor's
//! `catch_unwind`) may die while holding a cache lock, so every lock here
//! is poison-tolerant: the map and the ready slots hold only completed
//! values, and an interrupted first load leaves at worst an empty
//! placeholder slot that the next loader fills.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use starling_analysis::loader::{load_script, LoadedScript};
use starling_engine::EngineError;
use starling_storage::Fnv64;

/// A per-script slot: `None` while the first loader is building (the slot
/// mutex is held for the duration, so racing loaders of the *same* script
/// block and then hit), `Some` once ready.
type Slot = Arc<Mutex<Option<Arc<LoadedScript>>>>;

/// A concurrent script-digest → loaded-program cache with single-flight
/// loading: N sessions racing to load the same new script compile it once,
/// while loads of *different* scripts proceed in parallel.
pub struct ScriptCache {
    entries: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScriptCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScriptCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a script source.
    pub fn digest(src: &str) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(src);
        h.finish()
    }

    /// Loads `src` through the cache. Returns the shared program and
    /// whether it was already cached.
    ///
    /// Load errors are **not** cached: a bad script costs its author a
    /// re-parse, and a transiently failing load (e.g. under fault
    /// injection) is not pinned as permanently broken.
    pub fn load(&self, src: &str) -> Result<(Arc<LoadedScript>, bool), EngineError> {
        let key = Self::digest(src);
        // The map lock is held only to fetch-or-create the slot; the load
        // itself runs under the slot's own lock, so building a large
        // program stalls neither cache hits nor loads of other scripts.
        let slot = {
            let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(entries.entry(key).or_default())
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(ready) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(ready), true));
        }
        match load_script(src) {
            Ok(loaded) => {
                let loaded = Arc::new(loaded);
                *guard = Some(Arc::clone(&loaded));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((loaded, false))
            }
            Err(e) => {
                drop(guard);
                // Drop the empty placeholder so the failure is not pinned:
                // the next attempt re-parses from scratch.
                let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
                let still_empty = entries
                    .get(&key)
                    .is_some_and(|s| s.lock().unwrap_or_else(PoisonError::into_inner).is_none());
                if still_empty {
                    entries.remove(&key);
                }
                Err(e)
            }
        }
    }

    /// Looks up an already-cached program by its script digest (the
    /// protocol's attach-by-digest path: a client that knows the digest
    /// skips re-sending the script). Counts as a hit when found; a miss
    /// here is not counted (the client falls back to a full `load`).
    pub fn get_by_digest(&self, key: u64) -> Option<Arc<LoadedScript>> {
        let slot = {
            let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            entries.get(&key).map(Arc::clone)?
        };
        // Block behind an in-flight first loader rather than racing it.
        let found = slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(Arc::clone);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached (ready) programs. A program still being built by
    /// its first loader does not count.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|slot| slot.try_lock().is_ok_and(|g| g.is_some()))
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ScriptCache {
    fn default() -> Self {
        ScriptCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "create table t (x int); \
                       create rule a on t when inserted then delete from t end; \
                       insert into t values (1);";

    #[test]
    fn second_load_hits_and_shares() {
        let cache = ScriptCache::new();
        let (first, was_cached) = cache.load(SRC).unwrap();
        assert!(!was_cached);
        let (second, was_cached) = cache.load(SRC).unwrap();
        assert!(was_cached);
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&first.rules, &second.rules));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_scripts_distinct_entries() {
        let cache = ScriptCache::new();
        cache.load(SRC).unwrap();
        cache.load("create table u (y int);").unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ScriptCache::new();
        assert!(cache.load("create rule broken").is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
        // A later correct attempt is not poisoned by the failure.
        assert!(cache.load(SRC).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_loaders_compile_once() {
        let cache = ScriptCache::new();
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| cache.load(SRC).unwrap());
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "single-flight: one load, everyone else hits");
        assert_eq!(hits, 15);
    }
}
