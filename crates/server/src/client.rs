//! A blocking line-oriented client for the wire protocol, used by the
//! `starling client` subcommand, the load generator, and the tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use starling_sql::json::Json;

/// A typed client-side failure, distinguishing "the server took too long"
/// from "the connection broke" and "the server spoke nonsense".
#[derive(Debug)]
pub enum ClientError {
    /// The per-request read timeout (see [`Client::set_request_timeout`])
    /// elapsed before a response line arrived. The connection should be
    /// considered dead: a late response would desynchronize the
    /// request/response pairing.
    Timeout(Duration),
    /// A socket-level failure.
    Io(std::io::Error),
    /// The server answered with a line that does not parse as a response.
    BadResponse(String),
    /// Admission control refused the request (`overloaded` code): the
    /// connection is fine, the server is at its inflight cap. Back off and
    /// retry.
    Overloaded(String),
    /// Any other error envelope, split into its wire code and message
    /// (surfaced by [`Client::try_expect_ok`]).
    Server { code: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout(d) => write!(f, "request timed out after {d:?}"),
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
            ClientError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClientError> for std::io::Error {
    /// Lets `io::Result` call sites keep using `?` on typed-error methods.
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Io(e) => e,
            ClientError::Timeout(d) => std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("request timed out after {d:?}"),
            ),
            ClientError::BadResponse(m) => std::io::Error::new(std::io::ErrorKind::InvalidData, m),
            e @ ClientError::Overloaded(_) => std::io::Error::other(e.to_string()),
            e @ ClientError::Server { .. } => std::io::Error::other(e.to_string()),
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    request_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            request_timeout: None,
        })
    }

    /// Bounds how long each response read may block; `None` (the default)
    /// waits forever. With a timeout set, an expired read surfaces as
    /// [`ClientError::Timeout`] from [`Client::try_call`] (and as an
    /// `io::ErrorKind::TimedOut` from the `io::Result` methods).
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.request_timeout = timeout;
        Ok(())
    }

    /// Maps a socket error to the typed form, honoring the configured
    /// timeout (platforms report expired read timeouts as either
    /// `WouldBlock` or `TimedOut`).
    fn classify(&self, e: std::io::Error) -> ClientError {
        if let Some(t) = self.request_timeout {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                return ClientError::Timeout(t);
            }
        }
        ClientError::Io(e)
    }

    /// [`Client::call`] with typed errors: timeouts, socket failures, and
    /// unparseable responses are distinct variants.
    pub fn try_call(&mut self, req: &Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{req}").map_err(|e| self.classify(e))?;
        self.writer.flush().map_err(|e| self.classify(e))?;
        let line = self.read_line().map_err(|e| self.classify(e))?;
        Json::parse(&line).map_err(|e| ClientError::BadResponse(format!("{e}: {line}")))
    }

    /// Connects with readiness polling: retries the TCP connect *and* a
    /// `ping` round-trip until the server answers or `timeout` elapses.
    ///
    /// A raw [`Client::connect`] against a freshly spawned server races its
    /// accept loop: on loaded machines the SYN can land in the listen
    /// backlog and then be reset, or the connection can be accepted but the
    /// session thread not yet serving. Polling to the first successful ping
    /// makes "the server is up" an observed fact rather than a timing
    /// assumption — this is what the tests use instead of sleeping.
    pub fn connect_ready<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            let err = match Client::connect(addr.clone()) {
                Ok(mut c) => match c.call(&Json::obj([("op", Json::from("ping"))])) {
                    Ok(resp) if resp.get("ok") == Some(&Json::Bool(true)) => return Ok(c),
                    Ok(resp) => std::io::Error::other(format!("ping rejected: {resp}")),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            if Instant::now() >= deadline {
                return Err(err);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Sends one raw request line and reads one raw response line.
    pub fn raw_request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one raw response line without sending anything (e.g. the
    /// `shutting_down` greeting a draining server sends on connect).
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads one response and parses it.
    pub fn read_response(&mut self) -> std::io::Result<Json> {
        let line = self.read_line()?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })
    }

    /// Sends a request object and returns the parsed response envelope
    /// (`{"ok":..,"result"|"error":..}`).
    pub fn call(&mut self, req: &Json) -> std::io::Result<Json> {
        self.try_call(req).map_err(std::io::Error::from)
    }

    /// [`Client::call`], unwrapping a successful envelope to its
    /// `"result"`. An error response becomes an `io::Error` carrying the
    /// whole envelope.
    pub fn expect_ok(&mut self, req: &Json) -> std::io::Result<Json> {
        let resp = self.call(req)?;
        if resp.get("ok") == Some(&Json::Bool(true)) {
            return Ok(resp.get("result").cloned().unwrap_or(Json::Null));
        }
        Err(std::io::Error::other(format!("error response: {resp}")))
    }

    /// Splits a response envelope into its `"result"` or a typed error.
    /// An `overloaded` refusal becomes [`ClientError::Overloaded`]; any
    /// other error envelope becomes [`ClientError::Server`].
    pub fn result_of(resp: &Json) -> Result<Json, ClientError> {
        if resp.get("ok") == Some(&Json::Bool(true)) {
            return Ok(resp.get("result").cloned().unwrap_or(Json::Null));
        }
        let code = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        let message = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        if code.is_empty() {
            return Err(ClientError::BadResponse(resp.to_string()));
        }
        if code == "overloaded" {
            return Err(ClientError::Overloaded(message));
        }
        Err(ClientError::Server { code, message })
    }

    /// [`Client::try_call`] + [`Client::result_of`]: typed errors all the
    /// way, so callers can match on [`ClientError::Overloaded`].
    pub fn try_expect_ok(&mut self, req: &Json) -> Result<Json, ClientError> {
        Client::result_of(&self.try_call(req)?)
    }

    /// Sends one request without waiting for its response (pipelining).
    /// Responses come back in request order; pair each [`Client::send`]
    /// with a later [`Client::recv`].
    pub fn send(&mut self, req: &Json) -> std::io::Result<()> {
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends a batch of requests as one write (maximum pipelining: the
    /// server decodes ahead and responds in order).
    pub fn send_batch(&mut self, reqs: &[Json]) -> std::io::Result<()> {
        let mut out = String::new();
        for req in reqs {
            out.push_str(&req.to_string());
            out.push('\n');
        }
        self.writer.write_all(out.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next in-order response envelope of a pipelined exchange.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        self.read_response()
    }

    /// Pipelines a batch: one write, then all responses in request order.
    pub fn pipeline(&mut self, reqs: &[Json]) -> std::io::Result<Vec<Json>> {
        self.send_batch(reqs)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.recv()?);
        }
        Ok(out)
    }

    /// Ends the session cleanly.
    pub fn quit(&mut self) -> std::io::Result<()> {
        let _ = self.call(&Json::obj([("op", Json::from("quit"))]))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_timeout_is_a_typed_error() {
        // A listener that accepts and then never answers: the worst server.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept());
        let mut c = Client::connect(addr).unwrap();
        c.set_request_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let err = c
            .try_call(&Json::obj([("op", Json::from("ping"))]))
            .unwrap_err();
        assert!(matches!(err, ClientError::Timeout(_)), "{err:?}");
        // The io::Result surface reports the same failure as TimedOut.
        let err = c
            .call(&Json::obj([("op", Json::from("ping"))]))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        drop(c);
        let _ = hold.join();
    }

    #[test]
    fn without_timeout_socket_errors_stay_io() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = Client::connect(addr).unwrap();
        let (sock, _) = listener.accept().unwrap();
        drop(sock); // server side hangs up immediately
        drop(listener);
        let err = c
            .try_call(&Json::obj([("op", Json::from("ping"))]))
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Io(_)),
            "EOF without a deadline is an Io error, not Timeout: {err:?}"
        );
    }
}
