//! A blocking line-oriented client for the wire protocol, used by the
//! `starling client` subcommand, the load generator, and the tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use starling_sql::json::Json;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects with readiness polling: retries the TCP connect *and* a
    /// `ping` round-trip until the server answers or `timeout` elapses.
    ///
    /// A raw [`Client::connect`] against a freshly spawned server races its
    /// accept loop: on loaded machines the SYN can land in the listen
    /// backlog and then be reset, or the connection can be accepted but the
    /// session thread not yet serving. Polling to the first successful ping
    /// makes "the server is up" an observed fact rather than a timing
    /// assumption — this is what the tests use instead of sleeping.
    pub fn connect_ready<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            let err = match Client::connect(addr.clone()) {
                Ok(mut c) => match c.call(&Json::obj([("op", Json::from("ping"))])) {
                    Ok(resp) if resp.get("ok") == Some(&Json::Bool(true)) => return Ok(c),
                    Ok(resp) => std::io::Error::other(format!("ping rejected: {resp}")),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            if Instant::now() >= deadline {
                return Err(err);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Sends one raw request line and reads one raw response line.
    pub fn raw_request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Reads one raw response line without sending anything (e.g. the
    /// `shutting_down` greeting a draining server sends on connect).
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads one response and parses it.
    pub fn read_response(&mut self) -> std::io::Result<Json> {
        let line = self.read_line()?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })
    }

    /// Sends a request object and returns the parsed response envelope
    /// (`{"ok":..,"result"|"error":..}`).
    pub fn call(&mut self, req: &Json) -> std::io::Result<Json> {
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// [`Client::call`], unwrapping a successful envelope to its
    /// `"result"`. An error response becomes an `io::Error` carrying the
    /// whole envelope.
    pub fn expect_ok(&mut self, req: &Json) -> std::io::Result<Json> {
        let resp = self.call(req)?;
        if resp.get("ok") == Some(&Json::Bool(true)) {
            return Ok(resp.get("result").cloned().unwrap_or(Json::Null));
        }
        Err(std::io::Error::other(format!("error response: {resp}")))
    }

    /// Ends the session cleanly.
    pub fn quit(&mut self) -> std::io::Result<()> {
        let _ = self.call(&Json::obj([("op", Json::from("quit"))]))?;
        Ok(())
    }
}
