//! # starling-server
//!
//! A multi-session rule-engine server: concurrent sessions over a
//! newline-delimited JSON wire protocol, with snapshot isolation and
//! per-request budgets. Dependency-light by design — `std::net` and
//! threads, no async runtime.
//!
//! * **Protocol** ([`protocol`]): one JSON object per line in, one
//!   response envelope per line out. Budget exhaustion and aborts are
//!   error *responses* with stable codes, never connection teardowns.
//! * **Sessions** ([`session`]): each connection owns an engine session
//!   seeded from a copy-on-write database snapshot; every mutating
//!   request is atomic (error ⇒ session unchanged).
//! * **Cache** ([`cache`]): compiled programs are shared across sessions,
//!   keyed by script digest — N clients of one program parse, seed, and
//!   compile once.
//! * **Server** ([`server`]): server-wide metrics and graceful
//!   drain-style shutdown over either executor (see below).
//! * **Pool** ([`pool`]): the default executor — a reactor thread
//!   (non-blocking accept + readiness polling) over a fixed worker pool,
//!   with pipelined requests per connection, budget-weighted fair
//!   scheduling, and admission control with a typed `overloaded`
//!   refusal. The legacy thread-per-connection executor remains
//!   selectable via [`pool::ServerConfig`] as a benchmark baseline.
//! * **Durability** ([`server::DurableRoot`]): a server started with a
//!   data dir serves named WAL+snapshot stores; sessions bind to one via
//!   `load`'s `"persist"` parameter (single writer per store), and every
//!   acknowledged commit is recoverable after a crash.
//! * **Client** ([`client`]): the blocking client used by `starling
//!   client`, the load generator, and the tests.
//!
//! The protocol's `analyze` and `explore` results are produced by the
//! same serializers as the CLI's `--json` mode, so the two surfaces
//! cannot drift. See DESIGN.md §4f for the service model and the error
//! code table.

pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::ScriptCache;
pub use client::{Client, ClientError};
pub use pool::{raise_fd_limit, ServerConfig, Threading};
pub use protocol::{budget_from_request, err_response, ok_response, ErrorCode};
pub use server::{DurableRoot, Server, ServerMetrics, Shared};
pub use session::{ServerSession, SessionMetrics};
