//! Event-driven connection handling: one reactor thread doing non-blocking
//! accept + readiness polling over `std::net`, a fixed worker pool executing
//! requests, budget-weighted fair scheduling, and admission control.
//!
//! ## Why this shape
//!
//! The PR-4 server was thread-per-connection with one request in flight per
//! session: 10k idle sessions cost 10k parked threads, and one session's
//! huge `explore` competed with cheap `certify`/`stats` calls only through
//! the OS scheduler. Here a connection is a parked state object — a read
//! buffer, a decode-ahead FIFO of parsed requests, and a write buffer —
//! owned by a single reactor thread, and a fixed pool of workers executes
//! requests in *weighted fair* order, so idle sessions cost a few hundred
//! bytes and a heavy request cannot starve its neighbors.
//!
//! ## Ordering and atomicity invariants
//!
//! * **Per-session serial execution.** A connection is scheduled at most
//!   once at a time (`ConnState::running`): a worker pops exactly the FIFO
//!   head, executes it against the session (one `Mutex<ServerSession>` per
//!   connection, never contended because of the schedule-once discipline),
//!   writes the response, and only then re-enqueues the connection if more
//!   requests are queued. Responses therefore come back in request order,
//!   and request atomicity (checkpoint/restore inside `handle_op`) is
//!   untouched — pipelining changes *when* requests are decoded, never how
//!   they execute.
//! * **Weighted fairness.** The scheduler is a virtual-finish-time queue:
//!   each connection is enqueued with key `max(vclock, conn.vtime) +
//!   weight(head request)`, where the weight derives from the request's own
//!   [`Budget`](starling_engine::Budget) (see [`weight_of`]). A session
//!   that just burned a 2M-consideration `exec` re-enters the queue behind
//!   every cheap op that arrived meanwhile; a fresh cheap session is served
//!   ahead of the heavy session's next request. This is
//!   smallest-budget-first without starvation in either direction.
//! * **Admission control.** A global gauge counts admitted-but-not-completed
//!   requests. When it reaches `max_inflight`, newly decoded requests are
//!   refused at decode time with a typed `overloaded` error response that
//!   still occupies the request's slot in the pipeline (refusals are
//!   [`Work::Instant`] items), so per-connection response order holds even
//!   across refusals.
//!
//! ## Fault containment
//!
//! A worker panic (a bug, or the test-only `crash` op) is caught with
//! `catch_unwind`: the connection is marked dead and closed (the client
//! sees EOF, exactly as if the legacy per-connection thread had died), the
//! shared cache and scheduler are poison-hardened, and dropping the
//! connection drops its `ServerSession`, whose `Drop` releases any durable
//! store claim — a crashed session never wedges a named store.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use starling_sql::json::Json;

use crate::protocol::{budget_from_request, err_response, ErrorCode};
use crate::server::{dispatch, Shared, MAX_LINE_BYTES};
use crate::session::ServerSession;

/// How the server maps connections to threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Threading {
    /// Reactor + fixed worker pool (the default): idle sessions cost no
    /// thread, requests are scheduled by budget weight.
    Pool,
    /// The legacy thread-per-connection loop, kept as a benchmark baseline
    /// and an escape hatch. One blocking thread per connection, one request
    /// in flight per session, no admission control.
    PerConnection,
}

/// Server tuning knobs, all with serviceable defaults.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (pool mode). `0` = one per
    /// available core, minimum 2.
    pub workers: usize,
    /// Admission cap: maximum requests admitted but not yet completed
    /// (queued + executing) across all sessions. Further requests are
    /// refused with an `overloaded` error response. `0` = unlimited.
    pub max_inflight: usize,
    /// Connection-to-thread mapping.
    pub threading: Threading,
    /// Enables the test-only `crash` op, which panics the executing worker.
    /// Used by fault-injection tests to prove panic containment; never
    /// enabled by the CLI.
    pub crash_op: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_inflight: 4096,
            threading: Threading::Pool,
            crash_op: false,
        }
    }
}

impl ServerConfig {
    /// The effective worker count (resolves `workers == 0`).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2)
    }
}

/// The scheduling weight of one request, in cheap-op units.
///
/// Budget-bearing ops derive their weight from the request's *own* budget:
/// what a client asks permission to spend is what it is scheduled by, so a
/// 2M-consideration `exec` enqueues far behind interactive `certify` calls
/// that arrived after it. Weights only shape ordering — execution still
/// enforces the budget exactly as before.
pub fn weight_of(op: &str, req: &Json) -> u64 {
    match op {
        "ping" | "stats" | "digest" | "quit" | "shutdown" | "crash" => 1,
        "certify" | "order" => 4,
        "load" | "analyze" | "explain" => 64,
        "exec" | "explore" => {
            let b = budget_from_request(req).unwrap_or_default();
            let cost = if op == "exec" {
                b.max_considerations as u64
            } else {
                // Exploration touches many databases per state; weight it
                // by states with a multiplier so a default explore ranks
                // above a default exec.
                (b.max_states as u64).saturating_mul(4)
            };
            (cost / 64).clamp(8, 1 << 20)
        }
        _ => 1,
    }
}

/// One decoded unit of work in a connection's pipeline FIFO.
pub(crate) enum Work {
    /// A parsed, admitted request. `counted` is false for control-plane
    /// ops that bypass admission and therefore never joined the `pending`
    /// gauge.
    Request {
        id: Option<Json>,
        op: String,
        req: Json,
        weight: u64,
        counted: bool,
    },
    /// A pre-rendered response line (protocol error or `overloaded`
    /// refusal) that holds its place in the pipeline order but costs ~0 to
    /// "execute".
    Instant(String),
}

impl Work {
    fn weight(&self) -> u64 {
        match self {
            Work::Request { weight, .. } => *weight,
            Work::Instant(_) => 1,
        }
    }
}

/// The part of a connection shared between the reactor and the workers.
pub(crate) struct Conn {
    /// Pipeline FIFO + scheduling flags.
    state: Mutex<ConnState>,
    /// The session. Never contended: the schedule-once-at-a-time
    /// discipline means at most one worker touches it, and the reactor
    /// never does.
    session: Mutex<ServerSession>,
    /// Buffered write half; workers append + flush, the reactor drains
    /// leftovers on `POLLOUT`.
    writer: Mutex<WriteBuf>,
    /// Torn down (socket error or worker panic): the reactor must drop the
    /// connection; workers must not touch it further.
    dead: AtomicBool,
    /// The session ended cleanly (`quit`, or EOF with an empty queue).
    done: AtomicBool,
    /// The write buffer has bytes the kernel would not take; the reactor
    /// polls `POLLOUT` until it drains.
    want_pollout: AtomicBool,
}

struct ConnState {
    queue: VecDeque<Work>,
    /// Scheduled or executing right now (schedule-once discipline).
    running: bool,
    /// No more input will arrive (client EOF / half-close).
    eof: bool,
    /// Stop after the current response (a `quit` was served, or the
    /// connection died); remaining queued work is discarded.
    quit: bool,
    /// This connection's virtual finish time (weighted fair queueing).
    vtime: u64,
}

struct WriteBuf {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // Worker panics must not wedge the server: every shared lock is
    // poison-tolerant. (A panicked worker marks its connection dead; the
    // data under the lock is either per-connection — dropped with it — or
    // append-only counters.)
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The weighted-fair scheduler: a virtual-finish-time priority queue of
/// connections with work, plus the admission gauge and observability
/// counters surfaced by the `stats` op.
pub(crate) struct Scheduler {
    heap: Mutex<BinaryHeap<Reverse<Entry>>>,
    available: Condvar,
    closed: AtomicBool,
    /// The fair queue's virtual clock: the largest key handed to a worker.
    vclock: AtomicU64,
    seq: AtomicU64,
    /// Admitted-but-not-completed requests (the admission gauge).
    pub(crate) pending: AtomicU64,
    /// Requests executing right now.
    pub(crate) executing: AtomicU64,
    /// Scheduler rounds: pops handed to workers. Fairness tests bound
    /// progress in rounds, not wall-clock.
    pub(crate) rounds: AtomicU64,
    /// Requests admitted past admission control.
    pub(crate) admitted: AtomicU64,
    /// Requests completed (response written or connection dead).
    pub(crate) completed: AtomicU64,
    /// Requests refused with `overloaded`.
    pub(crate) refused: AtomicU64,
}

struct Entry {
    key: u64,
    seq: u64,
    conn: Arc<Conn>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.seq) == (other.key, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

impl Scheduler {
    pub(crate) fn new() -> Self {
        Scheduler {
            heap: Mutex::new(BinaryHeap::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            vclock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            executing: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    /// Enqueues `conn` if it has queued work and is not already scheduled
    /// or finished. Callable from the reactor (after decoding) and from
    /// workers (after finishing an item with more queued).
    fn schedule(&self, conn: &Arc<Conn>) {
        let key = {
            let mut st = lock(&conn.state);
            if st.running || st.quit {
                return;
            }
            let Some(head) = st.queue.front() else { return };
            let head_weight = head.weight();
            st.running = true;
            let key = self
                .vclock
                .load(Ordering::Relaxed)
                .max(st.vtime)
                .saturating_add(head_weight);
            st.vtime = key;
            key
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut heap = lock(&self.heap);
        heap.push(Reverse(Entry {
            key,
            seq,
            conn: Arc::clone(conn),
        }));
        drop(heap);
        self.available.notify_one();
    }

    /// Blocks until a connection is due or the scheduler is closed.
    fn pop(&self) -> Option<Arc<Conn>> {
        let mut heap = lock(&self.heap);
        loop {
            if let Some(Reverse(e)) = heap.pop() {
                self.vclock.fetch_max(e.key, Ordering::Relaxed);
                self.rounds.fetch_add(1, Ordering::Relaxed);
                return Some(e.conn);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            heap = self
                .available
                .wait(heap)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    pub(crate) fn stats_json(&self, cfg: &ServerConfig) -> Json {
        Json::obj([
            (
                "mode",
                Json::from(match cfg.threading {
                    Threading::Pool => "pool",
                    Threading::PerConnection => "per_connection",
                }),
            ),
            ("workers", Json::from(cfg.effective_workers() as i64)),
            ("max_inflight", Json::from(cfg.max_inflight as i64)),
            (
                "pending",
                Json::from(self.pending.load(Ordering::Relaxed) as i64),
            ),
            (
                "executing",
                Json::from(self.executing.load(Ordering::Relaxed) as i64),
            ),
            (
                "rounds",
                Json::from(self.rounds.load(Ordering::Relaxed) as i64),
            ),
            (
                "admitted",
                Json::from(self.admitted.load(Ordering::Relaxed) as i64),
            ),
            (
                "completed",
                Json::from(self.completed.load(Ordering::Relaxed) as i64),
            ),
            (
                "refused",
                Json::from(self.refused.load(Ordering::Relaxed) as i64),
            ),
        ])
    }
}

/// Drains a connection's queue, returning each dropped admitted request to
/// the admission gauge. Must only be called by whoever owns the
/// connection's scheduling turn (the running worker, or the reactor when
/// `running` is false).
fn discard_queue(conn: &Conn, sched: &Scheduler) {
    let mut st = lock(&conn.state);
    while let Some(item) = st.queue.pop_front() {
        if let Work::Request { counted, .. } = item {
            if counted {
                sched.pending.fetch_sub(1, Ordering::Relaxed);
            }
            sched.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Appends `line + "\n"` to the connection's write buffer — no syscall;
/// the worker flushes once per scheduling turn ([`flush_turn`]), so a
/// pipelined batch of cheap responses costs one `write(2)` instead of one
/// per response.
fn buffer_response(conn: &Conn, line: &str) {
    if conn.dead.load(Ordering::Relaxed) {
        return;
    }
    let mut w = lock(&conn.writer);
    w.buf.extend_from_slice(line.as_bytes());
    w.buf.push(b'\n');
}

/// Flushes a turn's buffered responses as much as the kernel will take;
/// leftovers are handed to the reactor via `POLLOUT`.
fn flush_turn(conn: &Conn, shared: &Shared) {
    if conn.dead.load(Ordering::Relaxed) {
        return;
    }
    match flush_writes(conn) {
        Ok(true) => {}
        Ok(false) => {
            conn.want_pollout.store(true, Ordering::SeqCst);
            shared.wake_reactor();
        }
        Err(_) => {
            conn.dead.store(true, Ordering::SeqCst);
            shared.wake_reactor();
        }
    }
}

/// Writes buffered bytes until done or the kernel pushes back. `Ok(true)`
/// means fully flushed.
fn flush_writes(conn: &Conn) -> std::io::Result<bool> {
    let mut w = lock(&conn.writer);
    let w = &mut *w;
    while w.pos < w.buf.len() {
        match w.stream.write(&w.buf[w.pos..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => w.pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    w.buf.clear();
    w.pos = 0;
    Ok(true)
}

/// How much queue weight one scheduling turn may consume. Pipelined cheap
/// items are batched into a single turn — one scheduler round, one
/// `write(2)` — while any item at or above the quantum always gets a turn
/// of its own. The quantum also bounds the unfairness a batch can cause:
/// a turn overruns the key it was scheduled at by less than one quantum,
/// and the overrun is charged to the connection's virtual time.
const TURN_QUANTUM: u64 = 128;

/// The worker loop: pop a connection, execute up to a quantum of its FIFO
/// in request order, flush the buffered responses once, reschedule. Exits
/// when the scheduler closes.
pub(crate) fn worker_loop(shared: Arc<Shared>) {
    let sched = shared.sched();
    while let Some(conn) = sched.pop() {
        if conn.dead.load(Ordering::Relaxed) {
            discard_queue(&conn, sched);
            finish_turn(&conn, sched, &shared, true, 0);
            continue;
        }
        let mut consumed = 0u64;
        let mut extra = 0u64; // weight beyond the head this turn was keyed on
        let mut ended = false;
        loop {
            let item = lock(&conn.state).queue.pop_front();
            let Some(item) = item else { break };
            if consumed > 0 {
                extra = extra.saturating_add(item.weight());
            }
            consumed = consumed.saturating_add(item.weight());
            match item {
                Work::Instant(line) => {
                    {
                        let mut session = lock(&conn.session);
                        session.metrics.requests += 1;
                        if line.contains("\"ok\":false") {
                            session.metrics.errors += 1;
                            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    buffer_response(&conn, &line);
                }
                Work::Request {
                    id,
                    op,
                    req,
                    counted,
                    ..
                } => {
                    sched.executing.fetch_add(1, Ordering::Relaxed);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut session = lock(&conn.session);
                        session.metrics.requests += 1;
                        let (response, done) =
                            dispatch(&op, id.as_ref(), &req, &mut session, &shared);
                        if response.contains("\"ok\":false") {
                            session.metrics.errors += 1;
                            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        (response, done)
                    }));
                    sched.executing.fetch_sub(1, Ordering::Relaxed);
                    if counted {
                        sched.pending.fetch_sub(1, Ordering::Relaxed);
                    }
                    sched.completed.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok((response, done)) => {
                            buffer_response(&conn, &response);
                            if done {
                                lock(&conn.state).quit = true;
                                discard_queue(&conn, sched);
                                ended = true;
                            }
                        }
                        Err(_) => {
                            // The request panicked. Contain it: flush what
                            // the turn already answered (best effort), then
                            // this connection dies (client sees EOF, like a
                            // crashed legacy worker thread); everyone else
                            // is unaffected.
                            let _ = flush_writes(&conn);
                            conn.dead.store(true, Ordering::SeqCst);
                            discard_queue(&conn, sched);
                            ended = true;
                        }
                    }
                }
            }
            if ended || consumed >= TURN_QUANTUM || conn.dead.load(Ordering::Relaxed) {
                break;
            }
        }
        flush_turn(&conn, &shared);
        finish_turn(&conn, sched, &shared, ended, extra);
    }
}

/// Ends a worker's scheduling turn: either re-enqueue (more work queued)
/// or mark the connection idle/done and wake the reactor to sweep it.
/// `extra` is the weight the turn consumed beyond its scheduled head item,
/// charged to the connection's virtual time so batching cannot be used to
/// jump the fair-queueing order.
fn finish_turn(conn: &Arc<Conn>, sched: &Scheduler, shared: &Shared, ended: bool, extra: u64) {
    let wake = {
        let mut st = lock(&conn.state);
        st.vtime = st.vtime.saturating_add(extra);
        st.running = false;
        if ended || st.quit || conn.dead.load(Ordering::Relaxed) {
            conn.done.store(true, Ordering::SeqCst);
            true
        } else if st.queue.is_empty() {
            if st.eof {
                conn.done.store(true, Ordering::SeqCst);
                true
            } else {
                false
            }
        } else {
            drop(st);
            sched.schedule(conn);
            return;
        }
    };
    if wake {
        shared.wake_reactor();
    }
}

/// Reactor-private per-connection read state. The decode buffer lives here
/// — never shared, never locked.
struct Reader {
    conn: Arc<Conn>,
    stream: TcpStream,
    buf: Vec<u8>,
    /// Inside an over-long line: swallow bytes until the next newline,
    /// then emit one protocol error for the whole line.
    discarding: bool,
}

/// Per-connection backpressure caps: beyond these the reactor stops
/// reading the socket until the pipeline drains.
const MAX_QUEUED_PER_CONN: usize = 1024;
const MAX_WRITE_BUF: usize = 8 * 1024 * 1024;

impl Reader {
    /// Decodes freshly read bytes into pipeline work items. Mirrors the
    /// legacy connection loop exactly: empty lines are skipped without a
    /// response, over-long lines get one `protocol` error after resyncing
    /// at the next newline, invalid UTF-8 and malformed JSON get their
    /// established error messages.
    fn ingest(&mut self, chunk: &[u8], shared: &Shared) {
        let mut items: Vec<Work> = Vec::new();
        let mut i = 0;
        while i < chunk.len() {
            let nl = chunk[i..].iter().position(|&b| b == b'\n');
            if self.discarding {
                match nl {
                    Some(j) => {
                        self.discarding = false;
                        items.push(overlong_error());
                        i += j + 1;
                    }
                    None => break,
                }
                continue;
            }
            match nl {
                Some(j) => {
                    self.buf.extend_from_slice(&chunk[i..=i + j]);
                    i += j + 1;
                    if self.buf.len() as u64 > MAX_LINE_BYTES + 1 {
                        items.push(overlong_error());
                    } else if let Some(item) = decode_line(&self.buf, shared) {
                        items.push(item);
                    }
                    self.buf.clear();
                }
                None => {
                    self.buf.extend_from_slice(&chunk[i..]);
                    i = chunk.len();
                    if self.buf.len() as u64 > MAX_LINE_BYTES {
                        // Over the cap with no newline yet: drop the
                        // partial line and swallow until the resync point.
                        self.buf.clear();
                        self.buf.shrink_to(64 * 1024);
                        self.discarding = true;
                    }
                }
            }
        }
        if !items.is_empty() {
            shared
                .metrics
                .requests
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            let mut st = lock(&self.conn.state);
            st.queue.extend(items);
        }
    }

    /// Reads until the kernel has no more bytes, backpressure kicks in, or
    /// the peer closes. Returns false when the connection saw EOF or died.
    fn read_ready(&mut self, shared: &Shared) -> bool {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if backpressured(&self.conn) {
                return true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.discarding {
                        // EOF mid-discard still answers the over-long line
                        // (legacy parity), even though the client may never
                        // read it.
                        self.discarding = false;
                        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                        lock(&self.conn.state).queue.push_back(overlong_error());
                    }
                    lock(&self.conn.state).eof = true;
                    return false;
                }
                Ok(n) => self.ingest(&chunk[..n], shared),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.conn.dead.store(true, Ordering::SeqCst);
                    return false;
                }
            }
        }
    }
}

fn backpressured(conn: &Conn) -> bool {
    if lock(&conn.state).queue.len() >= MAX_QUEUED_PER_CONN {
        return true;
    }
    lock(&conn.writer).buf.len() >= MAX_WRITE_BUF
}

fn overlong_error() -> Work {
    Work::Instant(err_response(
        None,
        ErrorCode::Protocol,
        "request line exceeds the 8 MiB limit",
        None,
    ))
}

/// Decodes one complete line (newline included) into a work item, applying
/// admission control. `None` for blank lines.
fn decode_line(raw: &[u8], shared: &Shared) -> Option<Work> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Some(Work::Instant(err_response(
            None,
            ErrorCode::Protocol,
            "request line is not valid UTF-8",
            None,
        )));
    };
    let line = text.trim();
    if line.is_empty() {
        return None;
    }
    let req = match Json::parse(line) {
        Ok(j @ Json::Obj(_)) => j,
        Ok(_) => {
            return Some(Work::Instant(err_response(
                None,
                ErrorCode::Protocol,
                "request must be a JSON object",
                None,
            )))
        }
        Err(e) => {
            return Some(Work::Instant(err_response(
                None,
                ErrorCode::Protocol,
                &format!("bad JSON: {e}"),
                None,
            )))
        }
    };
    let id = req.get("id").cloned();
    let Some(op) = req.get("op").and_then(Json::as_str).map(str::to_owned) else {
        return Some(Work::Instant(err_response(
            id.as_ref(),
            ErrorCode::Protocol,
            "missing or non-string `op` field",
            None,
        )));
    };
    let sched = shared.sched();
    let cfg = shared.config();
    // Control-plane ops bypass admission (and the gauge): an overloaded
    // server must stay observable (`stats`), drainable (`shutdown`), and
    // leavable (`quit`). Everything else — `ping` included — is subject,
    // so the cap cannot be flooded around.
    if matches!(op.as_str(), "stats" | "shutdown" | "quit") {
        sched.admitted.fetch_add(1, Ordering::Relaxed);
        let weight = weight_of(&op, &req);
        return Some(Work::Request {
            id,
            op,
            req,
            weight,
            counted: false,
        });
    }
    if cfg.max_inflight > 0 && sched.pending.load(Ordering::Relaxed) >= cfg.max_inflight as u64 {
        sched.refused.fetch_add(1, Ordering::Relaxed);
        return Some(Work::Instant(err_response(
            id.as_ref(),
            ErrorCode::Overloaded,
            &format!(
                "server overloaded: {} requests in flight (max {}); retry later",
                sched.pending.load(Ordering::Relaxed),
                cfg.max_inflight
            ),
            None,
        )));
    }
    sched.pending.fetch_add(1, Ordering::Relaxed);
    sched.admitted.fetch_add(1, Ordering::Relaxed);
    let weight = weight_of(&op, &req);
    Some(Work::Request {
        id,
        op,
        req,
        weight,
        counted: true,
    })
}

/// The reactor: non-blocking accept, readiness-driven reads and decode,
/// leftover-write flushing, and connection sweeping. Exits once a drain was
/// initiated and the last session ended, then closes the scheduler so the
/// workers drain too.
pub(crate) fn reactor_loop(listener: TcpListener, wake_rx: sys::WakeRx, shared: Arc<Shared>) {
    let _ = listener.set_nonblocking(true);
    let mut readers: Vec<Reader> = Vec::new();
    loop {
        let mut fds = Vec::with_capacity(readers.len() + 2);
        fds.push(sys::pollfd(sys::raw(&wake_rx), sys::POLLIN));
        fds.push(sys::pollfd(sys::raw(&listener), sys::POLLIN));
        let mut polled: Vec<usize> = Vec::with_capacity(readers.len());
        for (i, r) in readers.iter().enumerate() {
            if r.conn.dead.load(Ordering::Relaxed) {
                continue;
            }
            let mut events = 0i16;
            if !r.conn.done.load(Ordering::Relaxed) {
                let st = lock(&r.conn.state);
                let reading_ok = !st.eof
                    && st.queue.len() < MAX_QUEUED_PER_CONN
                    && lock(&r.conn.writer).buf.len() < MAX_WRITE_BUF;
                drop(st);
                if reading_ok {
                    events |= sys::POLLIN;
                }
            }
            if r.conn.want_pollout.load(Ordering::SeqCst) {
                events |= sys::POLLOUT;
            }
            if events != 0 {
                fds.push(sys::pollfd(sys::raw(&r.stream), events));
                polled.push(i);
            }
        }
        // The timeout doubles as a liveness tick: backpressured or
        // event-less connections are re-examined at least this often.
        let _ = sys::poll_fds(&mut fds, 250);

        if fds[0].revents != 0 {
            sys::drain_wake(&wake_rx);
        }
        if fds[1].revents != 0 {
            accept_ready(&listener, &mut readers, &shared);
        }
        for (k, &i) in polled.iter().enumerate() {
            let revents = fds[k + 2].revents;
            if revents == 0 {
                continue;
            }
            let r = &mut readers[i];
            if revents & sys::POLLOUT != 0 {
                match flush_writes(&r.conn) {
                    Ok(true) => r.conn.want_pollout.store(false, Ordering::SeqCst),
                    Ok(false) => {}
                    Err(_) => {
                        r.conn.dead.store(true, Ordering::SeqCst);
                    }
                }
            }
            if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0 {
                let _ = r.read_ready(&shared);
                shared.sched().schedule(&r.conn);
            }
        }
        sweep(&mut readers, &shared);
        if shared.is_shutting_down() && readers.is_empty() {
            break;
        }
    }
    shared.sched().close();
}

/// Accepts every pending connection. During a drain new arrivals get the
/// one-line `shutting_down` refusal (same as the legacy server).
fn accept_ready(listener: &TcpListener, readers: &mut Vec<Reader>, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.is_shutting_down() {
                    crate::server::refuse(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .active_sessions
                    .fetch_add(1, Ordering::Relaxed);
                let mut session = ServerSession::new();
                session.set_durable_root(shared.durable.clone());
                let conn = Arc::new(Conn {
                    state: Mutex::new(ConnState {
                        queue: VecDeque::new(),
                        running: false,
                        eof: false,
                        quit: false,
                        vtime: 0,
                    }),
                    session: Mutex::new(session),
                    writer: Mutex::new(WriteBuf {
                        stream: write_half,
                        buf: Vec::new(),
                        pos: 0,
                    }),
                    dead: AtomicBool::new(false),
                    done: AtomicBool::new(false),
                    want_pollout: AtomicBool::new(false),
                });
                readers.push(Reader {
                    conn,
                    stream,
                    buf: Vec::new(),
                    discarding: false,
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Removes finished connections. A connection leaves when it is dead, done,
/// or saw EOF with nothing queued — but never while a worker holds its
/// scheduling turn (the worker finishes, marks it, and wakes the reactor).
fn sweep(readers: &mut Vec<Reader>, shared: &Shared) {
    readers.retain_mut(|r| {
        let dead = r.conn.dead.load(Ordering::SeqCst);
        let done = r.conn.done.load(Ordering::SeqCst);
        let (running, idle_eof) = {
            let st = lock(&r.conn.state);
            (st.running, st.eof && st.queue.is_empty())
        };
        if running || !(dead || done || idle_eof) {
            return true;
        }
        if dead {
            discard_queue(&r.conn, shared.sched());
        } else {
            // Push out any buffered response bytes before closing (e.g. a
            // `quit` ack written just before the worker marked done). If the
            // kernel pushes back, keep the connection until POLLOUT drains
            // it — a client must always receive the responses to requests
            // the server accepted.
            match flush_writes(&r.conn) {
                Ok(true) => {}
                Ok(false) => {
                    r.conn.want_pollout.store(true, Ordering::SeqCst);
                    return true;
                }
                Err(_) => {}
            }
        }
        shared
            .metrics
            .active_sessions
            .fetch_sub(1, Ordering::Relaxed);
        // Dropping the Reader drops the read half; the write half and the
        // session go when the workers' Arc clones do. A panicking session
        // teardown (e.g. fault-injected durable release) must not take the
        // reactor down.
        false
    });
}

/// Raises the process's open-file soft limit toward `want` (capped by the
/// hard limit). Returns the effective soft limit. Tests and benches driving
/// thousands of concurrent sockets from one process call this first; a
/// plain no-op on non-Unix platforms.
pub fn raise_fd_limit(want: u64) -> u64 {
    sys::raise_fd_limit(want)
}

const _: () = {
    // Sessions migrate across worker threads with their connection.
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn check() {
        assert_send::<ServerSession>();
    }
};

/// Readiness polling over raw fds with no external crates: `poll(2)`
/// declared directly against the system libc that is already linked, plus
/// a self-pipe (socketpair) the workers use to wake the reactor.
#[cfg(unix)]
pub(crate) mod sys {
    use std::io::Read;
    use std::os::unix::io::AsRawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = u64;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    pub fn pollfd(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub fn raw(sock: &impl AsRawFd) -> i32 {
        sock.as_raw_fd()
    }

    /// `poll(2)` with EINTR retry. `revents` of every fd is valid after.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub type WakeRx = std::os::unix::net::UnixStream;

    /// The reactor wake channel: workers write a byte, the reactor drains.
    pub struct Waker {
        tx: std::os::unix::net::UnixStream,
    }

    impl Waker {
        pub fn wake(&self) {
            // WouldBlock means a wake is already pending — good enough.
            let _ = std::io::Write::write(&mut (&self.tx), &[1u8]);
        }
    }

    pub fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, rx))
    }

    pub fn drain_wake(rx: &WakeRx) {
        let mut rx = rx;
        let mut buf = [0u8; 256];
        loop {
            match rx.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(_) => continue,
            }
        }
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    const RLIMIT_NOFILE: i32 = 7;

    pub fn raise_fd_limit(want: u64) -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return want;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let target = want.min(lim.max);
        let new = RLimit {
            cur: target,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            target
        } else {
            lim.cur
        }
    }
}

/// Portability fallback: no readiness syscall, so "poll" is a short sleep
/// that reports everything ready and lets the non-blocking reads/writes
/// sort out reality. Correct, merely less efficient; all supported CI
/// targets take the Unix path.
#[cfg(not(unix))]
pub(crate) mod sys {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn pollfd(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    pub fn raw<T>(_sock: &T) -> i32 {
        0
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(
            (timeout_ms.max(1) as u64).min(5),
        ));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }

    pub struct WakeRx;
    pub struct Waker;

    impl Waker {
        pub fn wake(&self) {}
    }

    pub fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
        Ok((Waker, WakeRx))
    }

    pub fn drain_wake(_rx: &WakeRx) {}

    pub fn raise_fd_limit(want: u64) -> u64 {
        want
    }
}
