//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is one line holding a JSON object with an `"op"` field and
//! op-specific arguments; every response is one line holding either
//!
//! ```text
//! {"id":<echoed>,"ok":true,"result":{...}}
//! {"id":<echoed>,"ok":false,"error":{"code":"...","message":"...","data":...}}
//! ```
//!
//! The optional `"id"` member is echoed verbatim so clients can correlate
//! pipelined requests. Budget exhaustion and transaction aborts are
//! *responses*, never connection teardowns: the session survives and the
//! error code says what happened (see [`ErrorCode`]).
//!
//! Result shapes for `analyze` and `explore` are produced by the same
//! serializers as the CLI's `--json` mode
//! ([`starling_analysis::report::AnalysisReport::to_json`] and
//! [`starling_analysis::report::explore_json`]), so the two surfaces cannot
//! drift.

use std::time::Duration;

use starling_engine::{Budget, EngineError};
use starling_sql::json::Json;

/// Protocol error codes (the full table lives in DESIGN.md §4f).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request: bad JSON, unknown op, missing/ill-typed field.
    Protocol,
    /// The script/SQL payload failed to parse or validate.
    Script,
    /// The transaction aborted; the session database was restored to its
    /// pre-request state (crash-consistent, per the PR 1 failure model).
    Aborted,
    /// A per-request budget (timeout / max-states / max-considerations /
    /// max-paths) ran out before a definitive answer. The session state is
    /// as if the request never happened.
    Inconclusive,
    /// The server is draining: no new connections are admitted.
    ShuttingDown,
    /// Admission control refused the request: the server already has
    /// `max_inflight` requests admitted but not completed. The connection
    /// survives; the client should back off and retry. Refusals keep their
    /// place in a pipelined connection's response order.
    Overloaded,
}

impl ErrorCode {
    /// The wire string for the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Script => "script",
            ErrorCode::Aborted => "aborted",
            ErrorCode::Inconclusive => "inconclusive",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Overloaded => "overloaded",
        }
    }
}

/// Classifies an [`EngineError`] for the wire: everything the script author
/// caused is [`ErrorCode::Script`].
pub fn code_for_engine_error(_e: &EngineError) -> ErrorCode {
    ErrorCode::Script
}

/// Builds a success response line (no trailing newline).
pub fn ok_response(id: Option<&Json>, result: Json) -> String {
    let mut pairs = Vec::with_capacity(3);
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    pairs.push(("ok".to_owned(), Json::Bool(true)));
    pairs.push(("result".to_owned(), result));
    Json::Obj(pairs).to_string()
}

/// Builds an error response line (no trailing newline). `data` carries an
/// optional partial result — e.g. a truncated exploration's graph summary —
/// in the same shape a successful response would have used.
pub fn err_response(
    id: Option<&Json>,
    code: ErrorCode,
    message: &str,
    data: Option<Json>,
) -> String {
    let mut err = vec![
        ("code".to_owned(), Json::from(code.as_str())),
        ("message".to_owned(), Json::from(message)),
    ];
    if let Some(data) = data {
        err.push(("data".to_owned(), data));
    }
    let mut pairs = Vec::with_capacity(3);
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id.clone()));
    }
    pairs.push(("ok".to_owned(), Json::Bool(false)));
    pairs.push(("error".to_owned(), Json::Obj(err)));
    Json::Obj(pairs).to_string()
}

/// Extracts a per-request [`Budget`] from the request's optional `"budget"`
/// member: `{"max_considerations":N,"max_states":N,"max_paths":N,
/// "max_rows":N,"timeout_ms":N}`, each member optional, defaults from
/// [`Budget::default`].
pub fn budget_from_request(req: &Json) -> Result<Budget, String> {
    let mut budget = Budget::default();
    let Some(b) = req.get("budget") else {
        return Ok(budget);
    };
    if !matches!(b, Json::Obj(_)) {
        return Err("`budget` must be an object".into());
    }
    if let Some(v) = b.get("max_considerations") {
        budget.max_considerations = v
            .as_usize()
            .ok_or("`budget.max_considerations` must be a non-negative integer")?;
    }
    if let Some(v) = b.get("max_states") {
        budget.max_states = v
            .as_usize()
            .ok_or("`budget.max_states` must be a non-negative integer")?;
    }
    if let Some(v) = b.get("max_paths") {
        budget.max_paths = v
            .as_usize()
            .ok_or("`budget.max_paths` must be a non-negative integer")?;
    }
    if let Some(v) = b.get("max_rows") {
        budget.max_rows = v
            .as_usize()
            .ok_or("`budget.max_rows` must be a non-negative integer")?;
    }
    if let Some(v) = b.get("timeout_ms") {
        let ms = v
            .as_i64()
            .filter(|&ms| ms >= 0)
            .ok_or("`budget.timeout_ms` must be a non-negative integer")?;
        budget.deadline = Some(Duration::from_millis(ms as u64));
    }
    Ok(budget)
}

/// A required string field, with a protocol-grade error message.
pub fn str_field<'a>(req: &'a Json, name: &str) -> Result<&'a str, String> {
    req.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{name}` field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_are_single_lines() {
        let id = Json::Int(7);
        let ok = ok_response(Some(&id), Json::obj([("x", Json::Int(1))]));
        assert_eq!(ok, "{\"id\":7,\"ok\":true,\"result\":{\"x\":1}}");
        assert!(!ok.contains('\n'));
        let err = err_response(None, ErrorCode::Protocol, "bad\nline", None);
        assert!(!err.contains('\n'), "{err}");
        assert!(err.contains("\"code\":\"protocol\""), "{err}");
    }

    #[test]
    fn budget_parsing() {
        let req = Json::parse(
            r#"{"budget":{"max_considerations":5,"max_states":6,"max_paths":7,"max_rows":9,"timeout_ms":8}}"#,
        )
        .unwrap();
        let b = budget_from_request(&req).unwrap();
        assert_eq!(b.max_considerations, 5);
        assert_eq!(b.max_states, 6);
        assert_eq!(b.max_paths, 7);
        assert_eq!(b.max_rows, 9);
        assert_eq!(b.deadline, Some(Duration::from_millis(8)));

        // Absent budget: defaults.
        let b = budget_from_request(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(b, Budget::default());

        // Ill-typed members are protocol errors.
        for bad in [
            r#"{"budget":3}"#,
            r#"{"budget":{"max_states":"x"}}"#,
            r#"{"budget":{"timeout_ms":-1}}"#,
        ] {
            assert!(
                budget_from_request(&Json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
