//! The TCP server: shared compiled-program cache, server-wide metrics, and
//! graceful shutdown, over either of two connection executors:
//!
//! * **Pool** (the default): one reactor thread doing non-blocking accept
//!   and readiness polling plus a fixed worker pool with budget-weighted
//!   fair scheduling and admission control — see [`crate::pool`]. Idle
//!   sessions cost no thread; requests may be pipelined per connection.
//! * **PerConnection**: the legacy thread-per-connection loop, kept as a
//!   benchmark baseline and escape hatch
//!   ([`ServerConfig::threading`](crate::pool::ServerConfig)).
//!
//! Both executors share [`dispatch`], so the observable protocol — error
//! strings included — is identical.
//!
//! ## Shutdown protocol
//!
//! `shutdown` (the op or [`Server::shutdown`]) flips a flag and wakes the
//! listener (reactor wake pipe + a loopback connect poke, so the legacy
//! blocking `accept` observes it too). From then on new connections are
//! answered with a single `shutting_down` error line and dropped; existing
//! sessions keep being served until their clients disconnect (`quit` or
//! EOF) — including responses to requests already decoded into a session's
//! pipeline FIFO, which are executed and delivered, never dropped.
//! [`Server::join`] returns only after every executor thread has drained —
//! no session is ever torn down mid-request.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use starling_sql::json::Json;
use starling_storage::SyncPolicy;

use crate::cache::ScriptCache;
use crate::pool::{self, sys, Scheduler, ServerConfig, Threading};
use crate::protocol::{err_response, ok_response, ErrorCode};
use crate::session::ServerSession;

/// Hard cap on one request line. A corrupted or malicious client must not
/// make a worker buffer unbounded input.
pub(crate) const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// The server's durable data directory: each named store is a subdirectory
/// holding a WAL + snapshot pair, attachable by at most one session at a
/// time (single-writer; the WAL has one append cursor).
pub struct DurableRoot {
    dir: PathBuf,
    sync: SyncPolicy,
    attached: Mutex<BTreeSet<String>>,
}

impl DurableRoot {
    /// A root at `dir` with the given sync policy for all stores.
    pub fn new(dir: impl Into<PathBuf>, sync: SyncPolicy) -> Self {
        DurableRoot {
            dir: dir.into(),
            sync,
            attached: Mutex::new(BTreeSet::new()),
        }
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sync policy stores are opened with.
    pub fn sync(&self) -> SyncPolicy {
        self.sync
    }

    /// Claims exclusive attachment of `name`; false if another session
    /// holds it.
    pub(crate) fn claim(&self, name: &str) -> bool {
        self.attached
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_owned())
    }

    /// Releases an attachment claimed by [`DurableRoot::claim`].
    pub(crate) fn release(&self, name: &str) {
        self.attached
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
    }
}

/// Server-wide counters, reported under `"server"` by the `stats` op.
#[derive(Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Sessions currently connected.
    pub active_sessions: AtomicU64,
    /// Requests handled across all sessions.
    pub requests: AtomicU64,
    /// Error responses across all sessions.
    pub errors: AtomicU64,
}

/// State shared by the executor threads (reactor + worker pool, or the
/// accept loop + per-connection workers in legacy mode).
pub struct Shared {
    /// The compiled-program cache (script digest → loaded program).
    pub cache: ScriptCache,
    /// Server-wide counters.
    pub metrics: ServerMetrics,
    /// The durable data directory, when the server was started with one.
    pub durable: Option<Arc<DurableRoot>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    config: ServerConfig,
    sched: Scheduler,
    waker: Mutex<Option<sys::Waker>>,
}

impl Shared {
    /// Whether the server is draining.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The fair scheduler / admission state (zeros in legacy mode).
    pub(crate) fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// Wakes the reactor out of its poll (no-op in legacy mode).
    pub(crate) fn wake_reactor(&self) {
        if let Some(w) = self
            .waker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            w.wake();
        }
    }

    /// Starts draining: refuse new connections, let existing sessions
    /// finish. Idempotent.
    pub fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_reactor();
        // Poke the listener so a blocked accept() (legacy mode) observes
        // the flag; the reactor also sees it as a readable listener. The
        // poke connection is answered with the shutting_down line and
        // dropped.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_json(&self) -> Json {
        let (hits, misses) = self.cache.stats();
        Json::obj([
            (
                "connections",
                Json::from(self.metrics.connections.load(Ordering::Relaxed) as i64),
            ),
            (
                "active_sessions",
                Json::from(self.metrics.active_sessions.load(Ordering::Relaxed) as i64),
            ),
            (
                "requests",
                Json::from(self.metrics.requests.load(Ordering::Relaxed) as i64),
            ),
            (
                "errors",
                Json::from(self.metrics.errors.load(Ordering::Relaxed) as i64),
            ),
            (
                "cache",
                Json::obj([
                    ("programs", Json::from(self.cache.len())),
                    ("hits", Json::from(hits as i64)),
                    ("misses", Json::from(misses as i64)),
                ]),
            ),
            ("scheduler", self.sched.stats_json(&self.config)),
        ])
    }
}

/// A running server: in pool mode a reactor thread plus a fixed worker
/// pool; in legacy mode an accept loop with one worker thread per
/// connection.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — see
    /// [`Server::local_addr`]) and starts accepting. In-memory only; use
    /// [`Server::bind_with`] for a durable server.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Server> {
        Server::bind_with(addr, None)
    }

    /// Binds `addr` with an optional durable data directory. Sessions of a
    /// durable server may pass `"persist": "<name>"` to `load` to bind
    /// their state to the named store under the root.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        durable: Option<DurableRoot>,
    ) -> std::io::Result<Server> {
        Server::bind_cfg(addr, durable, ServerConfig::default())
    }

    /// [`Server::bind_with`] with explicit tuning: worker count, admission
    /// cap, threading mode, test hooks.
    pub fn bind_cfg<A: ToSocketAddrs>(
        addr: A,
        durable: Option<DurableRoot>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            cache: ScriptCache::new(),
            metrics: ServerMetrics::default(),
            durable: durable.map(Arc::new),
            shutdown: AtomicBool::new(false),
            addr: listener.local_addr()?,
            config,
            sched: Scheduler::new(),
            waker: Mutex::new(None),
        });
        let mut threads = Vec::new();
        match config.threading {
            Threading::Pool => {
                let (waker, wake_rx) = sys::wake_pair()?;
                *shared.waker.lock().unwrap_or_else(PoisonError::into_inner) = Some(waker);
                for _ in 0..config.effective_workers() {
                    let shared = Arc::clone(&shared);
                    threads.push(std::thread::spawn(move || pool::worker_loop(shared)));
                }
                let shared_r = Arc::clone(&shared);
                threads.push(std::thread::spawn(move || {
                    pool::reactor_loop(listener, wake_rx, shared_r)
                }));
            }
            Threading::PerConnection => {
                let shared_a = Arc::clone(&shared);
                threads.push(std::thread::spawn(move || accept_loop(listener, shared_a)));
            }
        }
        Ok(Server { shared, threads })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared state (cache, metrics, shutdown flag).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Starts draining (see [`Shared::initiate_shutdown`]).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Waits until every executor thread has exited and every session has
    /// drained. Call [`Server::shutdown`] first (or have a client send the
    /// `shutdown` op), or this blocks forever.
    pub fn join(mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if shared.is_shutting_down() {
            refuse(stream);
            break;
        }
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || serve_connection(stream, shared));
        workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
    // Drain: shutdown never tears down a connected session, and clients
    // arriving during the drain still get their one-line refusal instead
    // of hanging in the backlog. A worker that panicked mid-push must not
    // take the accept loop down with it, hence no poison unwraps.
    let mut workers = workers.into_inner().unwrap_or_else(PoisonError::into_inner);
    let _ = listener.set_nonblocking(true);
    while !workers.is_empty() {
        while let Ok((stream, _)) = listener.accept() {
            let _ = stream.set_nonblocking(false);
            refuse(stream);
        }
        workers.retain_mut(|handle| !handle.is_finished());
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

pub(crate) fn refuse(mut stream: TcpStream) {
    let line = err_response(
        None,
        ErrorCode::ShuttingDown,
        "server is draining; no new connections",
        None,
    );
    let _ = writeln!(stream, "{line}");
}

/// One connection's loop: read a request line, dispatch, write a response
/// line. Returns when the client sends `quit`, disconnects, or errors at
/// the socket level.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    shared
        .metrics
        .active_sessions
        .fetch_add(1, Ordering::Relaxed);
    let result = connection_loop(stream, &shared);
    shared
        .metrics
        .active_sessions
        .fetch_sub(1, Ordering::Relaxed);
    // Socket-level failures just end the session; there is no one left to
    // tell.
    let _ = result;
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // Request/response lines are small; Nagle + delayed ACK would add
    // tens of milliseconds per round trip.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut session = ServerSession::new();
    session.set_durable_root(shared.durable.clone());
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // A plain `read_line` would both buffer unbounded input and error
        // out on non-UTF-8 bytes without telling the client why. Read raw
        // bytes up to the cap, then validate explicitly so garbage input
        // gets a protocol error (or, for an over-long line, one error and
        // a clean close) instead of a silently dropped worker.
        let n = (&mut reader)
            .take(MAX_LINE_BYTES + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            // EOF: client closed (or half-closed) its write side.
            break;
        }
        // Over the cap with no newline yet: discard the rest of the line
        // (same bounded buffer, reused) so the connection can resync on the
        // next line instead of being torn down mid-write.
        let overlong = buf.len() as u64 > MAX_LINE_BYTES && buf.last() != Some(&b'\n');
        if overlong {
            loop {
                buf.clear();
                let k = (&mut reader)
                    .take(MAX_LINE_BYTES)
                    .read_until(b'\n', &mut buf)?;
                if k == 0 || buf.last() == Some(&b'\n') {
                    break;
                }
            }
        }
        let line = if overlong {
            None
        } else {
            std::str::from_utf8(&buf).ok().map(str::trim)
        };
        if line == Some("") {
            continue;
        }
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        session.metrics.requests += 1;
        let (response, done) = match line {
            Some(line) => handle_line(line, &mut session, shared),
            None if overlong => (
                err_response(
                    None,
                    ErrorCode::Protocol,
                    "request line exceeds the 8 MiB limit",
                    None,
                ),
                false,
            ),
            None => (
                err_response(
                    None,
                    ErrorCode::Protocol,
                    "request line is not valid UTF-8",
                    None,
                ),
                false,
            ),
        };
        if response.contains("\"ok\":false") {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            session.metrics.errors += 1;
        }
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if done {
            break;
        }
    }
    Ok(())
}

/// Dispatches one request line. Returns the response line and whether the
/// connection is done.
fn handle_line(line: &str, session: &mut ServerSession, shared: &Arc<Shared>) -> (String, bool) {
    let req = match Json::parse(line) {
        Ok(j @ Json::Obj(_)) => j,
        Ok(_) => {
            return (
                err_response(
                    None,
                    ErrorCode::Protocol,
                    "request must be a JSON object",
                    None,
                ),
                false,
            )
        }
        Err(e) => {
            return (
                err_response(None, ErrorCode::Protocol, &format!("bad JSON: {e}"), None),
                false,
            )
        }
    };
    let id = req.get("id").cloned();
    let id = id.as_ref();
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return (
            err_response(
                id,
                ErrorCode::Protocol,
                "missing or non-string `op` field",
                None,
            ),
            false,
        );
    };
    dispatch(op, id, &req, session, shared)
}

/// Executes one parsed request against a session. Shared by both
/// executors: the legacy per-connection loop calls it via [`handle_line`],
/// the worker pool calls it directly with requests decoded ahead by the
/// reactor. Returns the response line and whether the connection is done.
pub(crate) fn dispatch(
    op: &str,
    id: Option<&Json>,
    req: &Json,
    session: &mut ServerSession,
    shared: &Shared,
) -> (String, bool) {
    match op {
        "stats" => (
            ok_response(
                id,
                Json::obj([
                    ("server", shared.stats_json()),
                    ("session", session.stats_json()),
                ]),
            ),
            false,
        ),
        "shutdown" => {
            shared.initiate_shutdown();
            (
                ok_response(id, Json::obj([("shutting_down", Json::Bool(true))])),
                false,
            )
        }
        "quit" => (
            ok_response(id, Json::obj([("bye", Json::Bool(true))])),
            true,
        ),
        // Test-only fault hook (off unless `ServerConfig::crash_op`): a
        // deliberate worker panic, proving panic containment end to end.
        "crash" if shared.config.crash_op => {
            panic!("crash op: deliberate worker panic (test hook)")
        }
        _ => match session.handle_op(op, req, &shared.cache) {
            Ok(result) => (ok_response(id, result), false),
            Err((code, message, data)) => (err_response(id, code, &message, data), false),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const SCRIPT: &str = "create table t (x int); \
                          create rule cap on t when inserted \
                            if exists (select * from t where x > 10) \
                            then update t set x = 10 where x > 10 end; \
                          insert into t values (99);";

    #[test]
    fn end_to_end_over_tcp() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut c = Client::connect(addr).unwrap();
        let r = c
            .call(&Json::parse(r#"{"id":1,"op":"ping"}"#).unwrap())
            .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("id"), Some(&Json::Int(1)));

        let load = Json::obj([("op", Json::from("load")), ("script", Json::from(SCRIPT))]);
        let r = c.call(&load).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

        let r = c
            .call(&Json::parse(r#"{"op":"exec","sql":"insert into t values (50);"}"#).unwrap())
            .unwrap();
        let run = r.get("result").and_then(|x| x.get("run")).unwrap();
        assert_eq!(run.get("outcome").and_then(Json::as_str), Some("quiescent"));
        assert_eq!(run.get("fired").and_then(Json::as_i64), Some(1));

        // A second client of the same script hits the cache and sees its
        // own snapshot (not the first client's exec).
        let mut c2 = Client::connect(addr).unwrap();
        let r = c2.call(&load).unwrap();
        let result = r.get("result").unwrap();
        assert_eq!(result.get("cached"), Some(&Json::Bool(true)));
        let d1 = c.call(&Json::parse(r#"{"op":"digest"}"#).unwrap()).unwrap();
        let d2 = c2
            .call(&Json::parse(r#"{"op":"digest"}"#).unwrap())
            .unwrap();
        assert_ne!(d1.get("result"), d2.get("result"));

        // stats reflect both sessions and the cache hit.
        let r = c.call(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let srv = r.get("result").and_then(|x| x.get("server")).unwrap();
        assert_eq!(srv.get("active_sessions").and_then(Json::as_i64), Some(2));
        let cache = srv.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));

        // Graceful shutdown: existing sessions drain, new connects refused.
        let r = c
            .call(&Json::parse(r#"{"op":"shutdown"}"#).unwrap())
            .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let mut late = Client::connect(addr).unwrap();
        let r = late.read_response().unwrap();
        assert_eq!(
            r.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("shutting_down")
        );
        // The draining server still answers the existing sessions.
        let r = c2.call(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        drop(late);
        c.quit().unwrap();
        c2.quit().unwrap();
        server.join();
    }

    #[test]
    fn garbage_bytes_and_half_close_never_kill_a_worker() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        // Invalid UTF-8 gets a protocol error, and the connection survives.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("protocol")
        );
        raw.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

        // A half-closed connection (client shut its write side mid-session)
        // reads as EOF and ends the worker cleanly.
        let half = TcpStream::connect(addr).unwrap();
        half.shutdown(std::net::Shutdown::Write).unwrap();

        // An over-long line gets one protocol error for the whole line, and
        // the connection resyncs at the next newline.
        let mut big = TcpStream::connect(addr).unwrap();
        let chunk = vec![b'a'; 1 << 20];
        for _ in 0..9 {
            big.write_all(&chunk).unwrap();
        }
        big.write_all(b"\n{\"op\":\"ping\"}\n").unwrap();
        let mut big_reader = BufReader::new(big.try_clone().unwrap());
        line.clear();
        big_reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .map(|m| m.contains("8 MiB")),
            Some(true),
            "{resp}"
        );
        line.clear();
        big_reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "resynced");

        // If any worker had panicked or hung, the drain would never finish.
        drop((raw, reader, half, big, big_reader));
        server.shutdown();
        server.join();
    }

    #[test]
    fn durable_server_recovers_after_restart() {
        use starling_storage::SyncPolicy;
        let dir = std::env::temp_dir().join(format!("starling-srv-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let server = Server::bind_with(
            "127.0.0.1:0",
            Some(DurableRoot::new(&dir, SyncPolicy::Always)),
        )
        .unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        let load = Json::obj([
            ("op", Json::from("load")),
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("store1")),
        ]);
        let r = c.expect_ok(&load).unwrap();
        assert_eq!(r.get("persist").and_then(Json::as_str), Some("store1"));
        c.expect_ok(&Json::parse(r#"{"op":"exec","sql":"insert into t values (3);"}"#).unwrap())
            .unwrap();
        let before = c
            .expect_ok(&Json::parse(r#"{"op":"digest"}"#).unwrap())
            .unwrap();
        c.quit().unwrap();
        server.shutdown();
        server.join();

        // "Restart": a new server over the same data dir.
        let server = Server::bind_with(
            "127.0.0.1:0",
            Some(DurableRoot::new(&dir, SyncPolicy::Always)),
        )
        .unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        let attach = Json::obj([
            ("op", Json::from("load")),
            ("persist", Json::from("store1")),
        ]);
        let r = c.expect_ok(&attach).unwrap();
        assert_eq!(r.get("recovered"), Some(&Json::Bool(true)));
        let after = c
            .expect_ok(&Json::parse(r#"{"op":"digest"}"#).unwrap())
            .unwrap();
        assert_eq!(before, after);
        c.quit().unwrap();
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_protocol_errors() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        for bad in ["not json", "[1,2]", r#"{"no_op":true}"#, r#"{"op":7}"#] {
            let r = c.raw_request(bad).unwrap();
            let r = Json::parse(&r).unwrap();
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{bad}");
            assert_eq!(
                r.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("protocol"),
                "{bad}"
            );
        }
        // The connection survived all of that.
        let r = c.call(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        server.shutdown();
        c.quit().unwrap();
        server.join();
    }
}
