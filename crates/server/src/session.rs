//! One connection's session: an engine [`Session`] seeded from a cached
//! program snapshot, plus the per-session request handlers.
//!
//! ## Isolation
//!
//! Each connection owns its session outright. The database handed out at
//! `load` is a copy-on-write snapshot (PR 2): sessions of the same program
//! share physical tables until one writes, and no session can observe
//! another's writes. Evaluation mode is per-session state (PR 4's
//! [`EvalMode`]): one session running the interpreter oracle cannot flip a
//! neighbor onto the slow path.
//!
//! ## Request atomicity
//!
//! Every mutating request is atomic at the *request* level, which is
//! stronger than the CLI: on any error response — script error, abort, or
//! budget exhaustion — the session is restored to its exact pre-request
//! state (database, rule definitions, directives, compiled rules). A
//! budget-exhausted `exec` therefore never commits a partially processed
//! transition, and the error code tells the client which budget ran out.

use std::sync::Arc;

use starling_analysis::context::AnalysisContext;
use starling_analysis::loader::LoadedScript;
use starling_analysis::report::{explore_json, AnalysisReport};
use starling_analysis::Certifications;
use starling_engine::{
    explore_with_mode, EvalMode, FirstEligible, Outcome, RuleSet, Session, Verdict,
};
use starling_sql::ast::{Action, Directive, Statement};
use starling_sql::json::{digest_json, Json};
use starling_sql::parse_script;
use starling_storage::{Database, Value};

use crate::cache::ScriptCache;
use crate::protocol::{budget_from_request, code_for_engine_error, str_field, ErrorCode};

/// Per-session counters, reported by the `stats` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionMetrics {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Rule considerations across all `exec` requests.
    pub considerations: u64,
    /// States expanded across all `explore` requests.
    pub states_explored: u64,
}

impl SessionMetrics {
    fn to_json(self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests as i64)),
            ("errors", Json::from(self.errors as i64)),
            ("considerations", Json::from(self.considerations as i64)),
            ("states_explored", Json::from(self.states_explored as i64)),
        ])
    }
}

/// A session-level error: code, message, optional partial result.
pub type OpError = (ErrorCode, String, Option<Json>);

/// A session-level success or failure.
pub type OpResult = Result<Json, OpError>;

/// One connection's server-side session state.
pub struct ServerSession {
    session: Session,
    /// The loaded script's user transition — the default probe for
    /// `explore` when the request does not carry its own DML.
    default_actions: Vec<Action>,
    /// This session's evaluation mode (survives request-atomic restores).
    eval_mode: EvalMode,
    /// Counters for `stats`.
    pub metrics: SessionMetrics,
}

/// Everything needed to roll a session back to its pre-request state.
struct Checkpoint {
    db: Database,
    defs: Vec<starling_sql::RuleDef>,
    directives: Vec<Directive>,
    compiled: Option<Arc<RuleSet>>,
}

impl ServerSession {
    /// An empty session (no program loaded).
    pub fn new() -> Self {
        ServerSession {
            session: Session::new(),
            default_actions: Vec::new(),
            eval_mode: EvalMode::default(),
            metrics: SessionMetrics::default(),
        }
    }

    /// Dispatches one session-level op. Server-level ops (`stats` partly,
    /// `shutdown`, `quit`) are handled by the connection loop.
    pub fn handle_op(&mut self, op: &str, req: &Json, cache: &ScriptCache) -> OpResult {
        match op {
            "ping" => Ok(Json::obj([("pong", Json::Bool(true))])),
            "load" => self.op_load(req, cache),
            "exec" => self.op_exec(req),
            "analyze" => self.op_analyze(req),
            "explore" => self.op_explore(req),
            "certify" => self.op_certify(req),
            "order" => self.op_order(req),
            "digest" => self.op_digest(req),
            other => Err((ErrorCode::Protocol, format!("unknown op `{other}`"), None)),
        }
    }

    /// Session-level stats, embedded in the server's `stats` response.
    pub fn stats_json(&self) -> Json {
        self.metrics.to_json()
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint {
            db: self.session.db().clone(),
            defs: self.session.rule_defs().to_vec(),
            directives: self.session.directives().to_vec(),
            // Best-effort: if the current definitions do not compile (e.g.
            // an ordering introduced a priority cycle), the checkpoint
            // simply recompiles lazily after a restore.
            compiled: self.session.ruleset_arc().ok().map(Arc::clone),
        }
    }

    fn restore(&mut self, cp: Checkpoint) {
        self.session = Session::restore(cp.db, cp.defs, cp.compiled, cp.directives);
        self.session.eval_mode = self.eval_mode;
    }

    /// `load`: seed this session from a (cached) compiled program — either
    /// `"script"` (full source, loaded through the cache) or `"digest"`
    /// (attach to an already-cached program without re-sending the source;
    /// a `script`-coded error tells the client to fall back to a full
    /// load). The database handout is a copy-on-write snapshot; the rule
    /// set is the shared compilation.
    fn op_load(&mut self, req: &Json, cache: &ScriptCache) -> OpResult {
        if let Some(mode) = req.get("eval_mode") {
            self.eval_mode = match mode.as_str() {
                Some("plan") => EvalMode::Plan,
                Some("interp") => EvalMode::Interp,
                _ => {
                    return Err((
                        ErrorCode::Protocol,
                        "`eval_mode` must be \"plan\" or \"interp\"".into(),
                        None,
                    ))
                }
            };
        }
        let (loaded, cached, key) = if let Some(d) = req.get("digest") {
            let key = d
                .as_str()
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or((
                    ErrorCode::Protocol,
                    "`digest` must be a 16-hex-digit string".into(),
                    None,
                ))?;
            let loaded = cache.get_by_digest(key).ok_or((
                ErrorCode::Script,
                "unknown script digest; send the full script".into(),
                None,
            ))?;
            (loaded, true, key)
        } else {
            let src = str_field(req, "script").map_err(|m| (ErrorCode::Protocol, m, None))?;
            let key = ScriptCache::digest(src);
            let (loaded, cached) = cache
                .load(src)
                .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
            (loaded, cached, key)
        };
        let LoadedScript {
            db,
            rules,
            user_actions,
            defs,
            directives,
            ..
        } = (*loaded).clone();
        self.session = Session::restore(db, defs, Some(rules), directives);
        self.session.eval_mode = self.eval_mode;
        self.default_actions = user_actions;
        Ok(Json::obj([
            ("rules", Json::from(self.session.rule_defs().len())),
            ("user_actions", Json::from(self.default_actions.len())),
            ("cached", Json::from(cached)),
            ("script_digest", digest_json(key)),
        ]))
    }

    /// `exec`: DDL/DML with rule processing at the commit assertion point,
    /// bounded by the per-request budget.
    fn op_exec(&mut self, req: &Json) -> OpResult {
        let sql = str_field(req, "sql").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let budget = budget_from_request(req).map_err(|m| (ErrorCode::Protocol, m, None))?;
        let cp = self.checkpoint();
        self.session.max_considerations = budget.max_considerations;
        self.session.deadline = budget.deadline;
        let outputs = match self.session.execute_script(sql) {
            Ok(o) => o,
            Err(e) => {
                let code = code_for_engine_error(&e);
                let msg = e.to_string();
                self.restore(cp);
                return Err((code, msg, None));
            }
        };
        let run = match self.session.commit(&mut FirstEligible) {
            Ok(r) => r,
            Err(e) => {
                let code = code_for_engine_error(&e);
                let msg = e.to_string();
                self.restore(cp);
                return Err((code, msg, None));
            }
        };
        self.metrics.considerations += run.considerations.len() as u64;
        let summary = Json::obj([
            ("considerations", Json::from(run.considerations.len())),
            ("fired", Json::from(run.fired_count())),
            ("outcome", Json::from(outcome_str(run.outcome))),
        ]);
        match run.outcome {
            Outcome::Quiescent | Outcome::RolledBack => Ok(Json::obj([
                ("outputs", Json::arr(outputs.iter().map(output_json))),
                ("run", summary),
                ("digest", digest_json(self.session.db().state_digest())),
            ])),
            Outcome::Aborted => {
                let msg = run
                    .error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "transaction aborted".to_owned());
                self.restore(cp);
                Err((ErrorCode::Aborted, msg, Some(summary)))
            }
            Outcome::LimitExceeded => {
                let msg = run
                    .truncation
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "budget exhausted".to_owned());
                self.restore(cp);
                Err((ErrorCode::Inconclusive, msg, Some(summary)))
            }
        }
    }

    /// `analyze`: the §5–§8 static report over the session's current rules
    /// and certifications — exactly the CLI `--json` shape.
    fn op_analyze(&mut self, req: &Json) -> OpResult {
        let refine = match req.get("refine") {
            None => false,
            Some(v) => v.as_bool().ok_or((
                ErrorCode::Protocol,
                "`refine` must be a boolean".into(),
                None,
            ))?,
        };
        let protect = parse_protect(req)?;
        let certs = Certifications::from_directives(self.session.directives());
        let rules = self
            .session
            .ruleset_arc()
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?
            .clone();
        let mut ctx = AnalysisContext::from_ruleset(&rules, certs);
        ctx.refine = refine;
        let report = AnalysisReport::run(&ctx, &protect);
        Ok(report.to_json())
    }

    /// `explore`: the execution-graph oracle over the session's current
    /// database, probing either the request's DML or the loaded script's
    /// user transition, bounded by the per-request budget. A truncated or
    /// undecided exploration is an `inconclusive` error whose `data`
    /// carries the partial graph summary (same shape as a success).
    fn op_explore(&mut self, req: &Json) -> OpResult {
        let budget = budget_from_request(req).map_err(|m| (ErrorCode::Protocol, m, None))?;
        let actions: Vec<Action> = match req.get("sql") {
            None => self.default_actions.clone(),
            Some(v) => {
                let sql = v.as_str().ok_or((
                    ErrorCode::Protocol,
                    "`sql` must be a string".into(),
                    None,
                ))?;
                parse_actions(sql)?
            }
        };
        if actions.is_empty() {
            return Err((
                ErrorCode::Script,
                "explore needs a user transition: pass `sql` or load a script with \
                 DML after the rule definitions"
                    .into(),
                None,
            ));
        }
        let rules = self
            .session
            .ruleset_arc()
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?
            .clone();
        let g = explore_with_mode(&rules, self.session.db(), &actions, &budget, self.eval_mode)
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        self.metrics.states_explored += g.states.len() as u64;
        let result = explore_json(&g, &budget);
        let inconclusive = [
            g.termination_verdict(),
            g.confluence_verdict(),
            g.observable_determinism_verdict(&budget),
        ]
        .iter()
        .any(|v| matches!(v, Verdict::Inconclusive(_)));
        if g.truncated() || inconclusive {
            let msg = g
                .truncation
                .map(|r| r.to_string())
                .unwrap_or_else(|| "a verdict is inconclusive under this budget".to_owned());
            return Err((ErrorCode::Inconclusive, msg, Some(result)));
        }
        Ok(result)
    }

    /// `certify`: the §6.4 refinement loop's certification step, as a
    /// stateful session mutation. `{"kind":"commute","a":..,"b":..}` or
    /// `{"kind":"terminates","rule":..,"justification":..}`.
    fn op_certify(&mut self, req: &Json) -> OpResult {
        let kind = str_field(req, "kind").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let directive = match kind {
            "commute" => {
                let a = str_field(req, "a").map_err(|m| (ErrorCode::Protocol, m, None))?;
                let b = str_field(req, "b").map_err(|m| (ErrorCode::Protocol, m, None))?;
                Directive::Commute(a.to_owned(), b.to_owned())
            }
            "terminates" => {
                let rule = str_field(req, "rule").map_err(|m| (ErrorCode::Protocol, m, None))?;
                let justification = req
                    .get("justification")
                    .and_then(Json::as_str)
                    .unwrap_or("certified via protocol");
                Directive::Terminates {
                    rule: rule.to_owned(),
                    justification: justification.to_owned(),
                }
            }
            other => {
                return Err((
                    ErrorCode::Protocol,
                    format!("unknown certify kind `{other}`"),
                    None,
                ))
            }
        };
        self.session
            .execute(&Statement::Directive(directive))
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        Ok(Json::obj([(
            "directives",
            Json::from(self.session.directives().len()),
        )]))
    }

    /// `order`: the §6.4 refinement loop's ordering step —
    /// `{"higher":..,"lower":..}` adds the priority `higher precedes
    /// lower` to the session's rule definitions.
    fn op_order(&mut self, req: &Json) -> OpResult {
        let higher = str_field(req, "higher").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let lower = str_field(req, "lower").map_err(|m| (ErrorCode::Protocol, m, None))?;
        self.session
            .execute(&Statement::AlterRule {
                name: higher.to_owned(),
                precedes: vec![lower.to_owned()],
                follows: Vec::new(),
            })
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        Ok(Json::obj([(
            "ordered",
            Json::arr([Json::from(higher), Json::from(lower)]),
        )]))
    }

    /// `digest`: the canonical content digest of the session database
    /// (optionally restricted to `"tables":[...]`) — the byte-level
    /// isolation witness used by the tests.
    fn op_digest(&mut self, req: &Json) -> OpResult {
        let d = match req.get("tables") {
            None => self.session.db().state_digest(),
            Some(v) => {
                let names: Vec<&str> = v
                    .as_arr()
                    .map(|items| items.iter().filter_map(Json::as_str).collect())
                    .ok_or((
                        ErrorCode::Protocol,
                        "`tables` must be an array of strings".into(),
                        None,
                    ))?;
                self.session.db().digest_of_tables(&names)
            }
        };
        Ok(Json::obj([("digest", digest_json(d))]))
    }
}

impl Default for ServerSession {
    fn default() -> Self {
        ServerSession::new()
    }
}

/// Parses a DML-only script into the actions of a user transition.
fn parse_actions(sql: &str) -> Result<Vec<Action>, OpError> {
    let stmts = parse_script(sql).map_err(|e| (ErrorCode::Script, e.to_string(), None))?;
    stmts
        .into_iter()
        .map(|s| match s {
            Statement::Dml(a) => Ok(a),
            other => Err((
                ErrorCode::Script,
                format!("explore transitions must be DML only, got {other:?}"),
                None,
            )),
        })
        .collect()
}

/// Parses the `analyze` op's `"protect"` member: an array of arrays of
/// table names, one entry per protected subset.
fn parse_protect(req: &Json) -> Result<Vec<Vec<String>>, OpError> {
    let Some(v) = req.get("protect") else {
        return Ok(Vec::new());
    };
    let bad = || {
        (
            ErrorCode::Protocol,
            "`protect` must be an array of arrays of table names".to_owned(),
            None,
        )
    };
    let outer = v.as_arr().ok_or_else(bad)?;
    outer
        .iter()
        .map(|sub| {
            let names = sub.as_arr().ok_or_else(bad)?;
            names
                .iter()
                .map(|n| n.as_str().map(str::to_owned).ok_or_else(bad))
                .collect()
        })
        .collect()
}

fn outcome_str(o: Outcome) -> &'static str {
    match o {
        Outcome::Quiescent => "quiescent",
        Outcome::RolledBack => "rolled_back",
        Outcome::LimitExceeded => "limit_exceeded",
        Outcome::Aborted => "aborted",
    }
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

fn output_json(o: &starling_engine::session::ScriptOutput) -> Json {
    use starling_engine::session::ScriptOutput;
    match o {
        ScriptOutput::TableCreated(t) => Json::obj([
            ("type", Json::from("table_created")),
            ("name", Json::from(t.as_str())),
        ]),
        ScriptOutput::RuleCreated(r) => Json::obj([
            ("type", Json::from("rule_created")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::RuleDropped(r) => Json::obj([
            ("type", Json::from("rule_dropped")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::RuleAltered(r) => Json::obj([
            ("type", Json::from("rule_altered")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::Modified(n) => {
            Json::obj([("type", Json::from("modified")), ("count", Json::from(*n))])
        }
        ScriptOutput::Rows(rs) => Json::obj([
            ("type", Json::from("rows")),
            (
                "columns",
                Json::arr(rs.columns.iter().map(|c| Json::from(c.as_str()))),
            ),
            (
                "rows",
                Json::arr(
                    rs.rows
                        .iter()
                        .map(|row| Json::arr(row.iter().map(value_json))),
                ),
            ),
        ]),
        ScriptOutput::DirectiveRecorded => Json::obj([("type", Json::from("directive"))]),
        ScriptOutput::RolledBack => Json::obj([("type", Json::from("rolled_back"))]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "create table t (x int);\n\
                          create table u (x int);\n\
                          insert into u values (0);\n\
                          create rule a on t when inserted then update u set x = 1 end;\n\
                          create rule b on t when inserted then update u set x = 2 end;\n\
                          insert into t values (5);";

    fn loaded() -> (ServerSession, ScriptCache) {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let req = Json::obj([("script", Json::from(SCRIPT))]);
        s.handle_op("load", &req, &cache).unwrap();
        (s, cache)
    }

    #[test]
    fn load_exec_analyze_explore_round_trip() {
        let (mut s, cache) = loaded();
        // exec commits with rule processing.
        let req = Json::obj([("sql", Json::from("insert into t values (1);"))]);
        let r = s.handle_op("exec", &req, &cache).unwrap();
        assert_eq!(
            r.get("run")
                .and_then(|x| x.get("outcome"))
                .and_then(Json::as_str),
            Some("quiescent")
        );
        // analyze flags the a/b conflict.
        let r = s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("confluence_guaranteed").and_then(Json::as_bool),
            Some(false)
        );
        // explore over the default user transition sees two final states.
        let r = s
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("final_db_digests")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn attach_by_digest() {
        let cache = ScriptCache::new();
        let mut s1 = ServerSession::new();
        let r = s1
            .handle_op("load", &Json::obj([("script", Json::from(SCRIPT))]), &cache)
            .unwrap();
        let dig = r
            .get("script_digest")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        let mut s2 = ServerSession::new();
        let (code, _, _) = s2
            .handle_op(
                "load",
                &Json::obj([("digest", Json::from("ffffffffffffffff"))]),
                &cache,
            )
            .unwrap_err();
        assert_eq!(code, ErrorCode::Script, "unknown digest is a script error");
        let r2 = s2
            .handle_op(
                "load",
                &Json::obj([("digest", Json::from(dig.as_str()))]),
                &cache,
            )
            .unwrap();
        assert_eq!(r2.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            r2.get("script_digest").and_then(Json::as_str),
            Some(dig.as_str())
        );
        // Both sessions start from the same snapshot.
        let d1 = s1
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let d2 = s2
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn refinement_loop_reaches_confluence() {
        let (mut s, cache) = loaded();
        let req = Json::parse(r#"{"kind":"commute","a":"a","b":"b"}"#).unwrap();
        s.handle_op("certify", &req, &cache).unwrap();
        let r = s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("confluence_guaranteed").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn ordering_resolves_nondeterminism() {
        let (mut s, cache) = loaded();
        let req = Json::parse(r#"{"higher":"a","lower":"b"}"#).unwrap();
        s.handle_op("order", &req, &cache).unwrap();
        let r = s
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("final_db_digests")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_and_atomic() {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let src = "create table t (x int);\n\
                   create rule grow on t when inserted then \
                     insert into t select x + 1 from inserted end;";
        let req = Json::obj([("script", Json::from(src))]);
        s.handle_op("load", &req, &cache).unwrap();
        let before = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let req = Json::parse(
            r#"{"sql":"insert into t values (1);","budget":{"max_considerations":10}}"#,
        )
        .unwrap();
        let (code, msg, data) = s.handle_op("exec", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Inconclusive);
        assert!(msg.contains("consideration budget exhausted"), "{msg}");
        assert_eq!(
            data.as_ref()
                .and_then(|d| d.get("outcome"))
                .and_then(Json::as_str),
            Some("limit_exceeded")
        );
        // Request atomicity: the partial processing was not committed.
        let after = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(before, after);
        // The session survives and keeps serving.
        let r = s
            .handle_op(
                "explore",
                &Json::parse(r#"{"sql":"insert into t values (1);","budget":{"max_states":5}}"#)
                    .unwrap(),
                &cache,
            )
            .unwrap_err();
        assert_eq!(r.0, ErrorCode::Inconclusive);
        assert!(r.2.is_some(), "truncated explore carries partial data");
    }

    #[test]
    fn abort_is_surfaced_and_atomic() {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let src = "create table t (x int);\n\
                   create rule nope on t when inserted then rollback end;";
        s.handle_op("load", &Json::obj([("script", Json::from(src))]), &cache)
            .unwrap();
        // A rule-driven rollback is a normal outcome, not an error.
        let r = s
            .handle_op(
                "exec",
                &Json::obj([("sql", Json::from("insert into t values (1);"))]),
                &cache,
            )
            .unwrap();
        assert_eq!(
            r.get("run")
                .and_then(|x| x.get("outcome"))
                .and_then(Json::as_str),
            Some("rolled_back")
        );
        // A priority cycle aborts the transaction; the session survives
        // with its pre-request state.
        let src2 = "create table t (x int);\n\
                    create rule a on t when inserted then update t set x = 1 end;\n\
                    create rule b on t when inserted then update t set x = 2 end;";
        s.handle_op("load", &Json::obj([("script", Json::from(src2))]), &cache)
            .unwrap();
        let before = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let req = Json::obj([(
            "sql",
            Json::from(
                "alter rule a precedes b; alter rule b precedes a; insert into t values (9);",
            ),
        )]);
        let (code, _, _) = s.handle_op("exec", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Aborted);
        let after = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(before, after);
        // The cyclic orderings were rolled back too: analyze still works.
        assert!(s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .is_ok());
    }

    #[test]
    fn eval_mode_is_per_session() {
        let cache = ScriptCache::new();
        let mut plan = ServerSession::new();
        let mut interp = ServerSession::new();
        let load_plan = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("eval_mode", Json::from("plan")),
        ]);
        let load_interp = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("eval_mode", Json::from("interp")),
        ]);
        plan.handle_op("load", &load_plan, &cache).unwrap();
        interp.handle_op("load", &load_interp, &cache).unwrap();
        assert_eq!(plan.eval_mode, EvalMode::Plan);
        assert_eq!(interp.eval_mode, EvalMode::Interp);
        // Both paths agree on the oracle result.
        let a = plan
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let b = interp
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn protocol_errors_do_not_kill_the_session() {
        let (mut s, cache) = loaded();
        for bad in [
            ("load", "{}"),
            ("exec", "{}"),
            ("certify", r#"{"kind":"zzz"}"#),
            ("order", r#"{"higher":"a"}"#),
            ("digest", r#"{"tables":3}"#),
            ("nosuch", "{}"),
        ] {
            let (code, _, _) = s
                .handle_op(bad.0, &Json::parse(bad.1).unwrap(), &cache)
                .unwrap_err();
            assert_eq!(code, ErrorCode::Protocol, "{}", bad.0);
        }
        assert!(s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .is_ok());
    }
}
