//! One connection's session: an engine [`Session`] seeded from a cached
//! program snapshot, plus the per-session request handlers.
//!
//! ## Isolation
//!
//! Each connection owns its session outright. The database handed out at
//! `load` is a copy-on-write snapshot (PR 2): sessions of the same program
//! share physical tables until one writes, and no session can observe
//! another's writes. Evaluation mode is per-session state (PR 4's
//! [`EvalMode`]): one session running the interpreter oracle cannot flip a
//! neighbor onto the slow path.
//!
//! ## Request atomicity
//!
//! Every mutating request is atomic at the *request* level, which is
//! stronger than the CLI: on any error response — script error, abort, or
//! budget exhaustion — the session is restored to its exact pre-request
//! state (database, rule definitions, directives, compiled rules). A
//! budget-exhausted `exec` therefore never commits a partially processed
//! transition, and the error code tells the client which budget ran out.

use std::sync::Arc;

use starling_analysis::loader::LoadedScript;
use starling_analysis::report::explore_json;
use starling_analysis::{Certifications, IncrementalAnalysis};
use starling_engine::{
    explore_traced_with_mode, Budget, EvalMode, FirstEligible, Outcome, RuleSet, Session, Verdict,
};
use starling_provenance::{witness_json, ProvCounters};
use starling_sql::ast::{Action, Directive, Statement};
use starling_sql::json::{digest_json, Json};
use starling_sql::parse_script;
use starling_storage::{Database, Value};

use crate::cache::ScriptCache;
use crate::protocol::{budget_from_request, code_for_engine_error, str_field, ErrorCode};
use crate::server::DurableRoot;

/// Per-session counters, reported by the `stats` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionMetrics {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Rule considerations across all `exec` requests.
    pub considerations: u64,
    /// States expanded across all `explore` requests.
    pub states_explored: u64,
}

impl SessionMetrics {
    fn to_json(self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests as i64)),
            ("errors", Json::from(self.errors as i64)),
            ("considerations", Json::from(self.considerations as i64)),
            ("states_explored", Json::from(self.states_explored as i64)),
        ])
    }
}

/// A session-level error: code, message, optional partial result.
pub type OpError = (ErrorCode, String, Option<Json>);

/// A session-level success or failure.
pub type OpResult = Result<Json, OpError>;

/// One connection's server-side session state.
pub struct ServerSession {
    session: Session,
    /// The loaded script's user transition — the default probe for
    /// `explore` when the request does not carry its own DML.
    default_actions: Vec<Action>,
    /// This session's evaluation mode (survives request-atomic restores).
    eval_mode: EvalMode,
    /// The server's durable data directory, if it has one.
    durable_root: Option<Arc<DurableRoot>>,
    /// The store name this session is attached to, if any (holds the
    /// single-writer claim in `durable_root`).
    persist_name: Option<String>,
    /// Counters for `stats`.
    pub metrics: SessionMetrics,
    /// Persistent incremental analyzer: `analyze` after a `certify`/`order`
    /// refinement re-derives only the dirtied pairs.
    analysis: IncrementalAnalysis,
    /// Provenance counters (traces, witnesses, minimization), for `stats`.
    prov: ProvCounters,
    /// The last `explore`'s inputs, kept so `explain` can re-derive its
    /// provenance without the client resending the probe. The database is
    /// a copy-on-write snapshot: a refcount, not a copy.
    last_explore: Option<LastExplore>,
}

/// Everything `explain` needs to re-run the session's last exploration.
struct LastExplore {
    rules: Arc<RuleSet>,
    db: Database,
    actions: Vec<Action>,
    budget: Budget,
    eval_mode: EvalMode,
}

/// Everything needed to roll a session back to its pre-request state.
struct Checkpoint {
    db: Database,
    defs: Vec<starling_sql::RuleDef>,
    directives: Vec<Directive>,
    compiled: Option<Arc<RuleSet>>,
}

impl ServerSession {
    /// An empty session (no program loaded).
    pub fn new() -> Self {
        ServerSession {
            session: Session::new(),
            default_actions: Vec::new(),
            eval_mode: EvalMode::default(),
            durable_root: None,
            persist_name: None,
            metrics: SessionMetrics::default(),
            analysis: IncrementalAnalysis::new(),
            prov: ProvCounters::new(),
            last_explore: None,
        }
    }

    /// Hands this session the server's durable root (set once by the
    /// connection loop, before any request is handled).
    pub fn set_durable_root(&mut self, root: Option<Arc<DurableRoot>>) {
        self.durable_root = root;
    }

    /// Detaches from the current durable store, if any: final best-effort
    /// snapshot (every acknowledged commit is already in the WAL, so a
    /// failed snapshot loses nothing), then release of the single-writer
    /// claim.
    fn detach_durable(&mut self) {
        if let Some(name) = self.persist_name.take() {
            let _ = self.session.durable_snapshot();
            self.session.set_durability(None);
            if let Some(root) = &self.durable_root {
                root.release(&name);
            }
        }
    }

    /// Dispatches one session-level op. Server-level ops (`stats` partly,
    /// `shutdown`, `quit`) are handled by the executor's `dispatch` before
    /// it gets here; under the worker pool, sessions migrate across worker
    /// threads between requests (hence `ServerSession: Send`), but at most
    /// one request executes per session at a time, so `&mut self` remains
    /// the honest signature.
    pub fn handle_op(&mut self, op: &str, req: &Json, cache: &ScriptCache) -> OpResult {
        match op {
            "ping" => Ok(Json::obj([("pong", Json::Bool(true))])),
            "load" => self.op_load(req, cache),
            "exec" => self.op_exec(req),
            "analyze" => self.op_analyze(req),
            "explore" => self.op_explore(req),
            "explain" => self.op_explain(req),
            "certify" => self.op_certify(req),
            "order" => self.op_order(req),
            "digest" => self.op_digest(req),
            other => Err((ErrorCode::Protocol, format!("unknown op `{other}`"), None)),
        }
    }

    /// Session-level stats, embedded in the server's `stats` response.
    /// Includes the incremental analyzer's pair-cache counters so clients
    /// can observe that a certify/order refinement step reused verdicts.
    pub fn stats_json(&self) -> Json {
        let a = self.analysis.stats();
        let Json::Obj(mut fields) = self.metrics.to_json() else {
            unreachable!("metrics serialize to an object");
        };
        fields.push((
            "pair_cache".into(),
            Json::obj([
                ("hits", Json::from(a.pair.hits as i64)),
                ("misses", Json::from(a.pair.misses as i64)),
                ("invalidations", Json::from(a.pair.invalidations as i64)),
                ("obs_hits", Json::from(a.obs_pair.hits as i64)),
                ("obs_misses", Json::from(a.obs_pair.misses as i64)),
                (
                    "obs_invalidations",
                    Json::from(a.obs_pair.invalidations as i64),
                ),
                ("full_sweeps", Json::from(a.full_sweeps as i64)),
                (
                    "incremental_sweeps",
                    Json::from(a.incremental_sweeps as i64),
                ),
                (
                    "last_rechecked_pairs",
                    Json::from(a.last_rechecked_pairs as i64),
                ),
            ]),
        ));
        fields.push(("provenance".into(), self.prov.to_json()));
        Json::Obj(fields)
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint {
            db: self.session.db().clone(),
            defs: self.session.rule_defs().to_vec(),
            directives: self.session.directives().to_vec(),
            // Best-effort: if the current definitions do not compile (e.g.
            // an ordering introduced a priority cycle), the checkpoint
            // simply recompiles lazily after a restore.
            compiled: self.session.ruleset_arc().ok().map(Arc::clone),
        }
    }

    fn restore(&mut self, cp: Checkpoint) {
        // The durable attachment survives the rollback: the checkpoint was
        // taken at request start, when the in-memory state equaled the
        // durable base (every acknowledged request persisted), so after the
        // restore the store is still in sync with the session.
        let durability = self.session.take_durability();
        self.session = Session::restore(cp.db, cp.defs, cp.compiled, cp.directives);
        self.session.set_durability(durability);
        self.session.eval_mode = self.eval_mode;
    }

    /// `load`: seed this session from a (cached) compiled program — either
    /// `"script"` (full source, loaded through the cache) or `"digest"`
    /// (attach to an already-cached program without re-sending the source;
    /// a `script`-coded error tells the client to fall back to a full
    /// load). The database handout is a copy-on-write snapshot; the rule
    /// set is the shared compilation.
    ///
    /// With `"persist": "<name>"` (durable servers only) the session binds
    /// to the named store under the data dir: together with a script the
    /// store must be empty (fresh initialization); without one the session
    /// attaches to the store's recovered state. A store has at most one
    /// writer at a time.
    fn op_load(&mut self, req: &Json, cache: &ScriptCache) -> OpResult {
        if let Some(mode) = req.get("eval_mode") {
            self.eval_mode = match mode.as_str() {
                Some("columnar") => EvalMode::Columnar,
                Some("plan") | Some("row") => EvalMode::Plan,
                Some("interp") => EvalMode::Interp,
                _ => {
                    return Err((
                        ErrorCode::Protocol,
                        "`eval_mode` must be \"columnar\", \"plan\", or \"interp\"".into(),
                        None,
                    ))
                }
            };
        }
        let persist = match req.get("persist") {
            None => None,
            Some(v) => {
                let name = v.as_str().ok_or((
                    ErrorCode::Protocol,
                    "`persist` must be a string store name".into(),
                    None,
                ))?;
                if !valid_store_name(name) {
                    return Err((
                        ErrorCode::Protocol,
                        "store names are 1-64 characters of [a-z0-9_-]".into(),
                        None,
                    ));
                }
                if self.durable_root.is_none() {
                    return Err((
                        ErrorCode::Protocol,
                        "this server has no data dir; start it with --data-dir to \
                         use persistent stores"
                            .into(),
                        None,
                    ));
                }
                Some(name.to_owned())
            }
        };
        if let Some(name) = &persist {
            if req.get("script").is_none() && req.get("digest").is_none() {
                let name = name.clone();
                return self.attach_store(name);
            }
        }
        let (loaded, cached, key) = if let Some(d) = req.get("digest") {
            let key = d
                .as_str()
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or((
                    ErrorCode::Protocol,
                    "`digest` must be a 16-hex-digit string".into(),
                    None,
                ))?;
            let loaded = cache.get_by_digest(key).ok_or((
                ErrorCode::Script,
                "unknown script digest; send the full script".into(),
                None,
            ))?;
            (loaded, true, key)
        } else {
            let src = str_field(req, "script").map_err(|m| (ErrorCode::Protocol, m, None))?;
            let key = ScriptCache::digest(src);
            let (loaded, cached) = cache
                .load(src)
                .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
            (loaded, cached, key)
        };
        let LoadedScript {
            db,
            rules,
            user_actions,
            defs,
            directives,
            ..
        } = (*loaded).clone();
        // Only now — after the program is known-good — drop any previous
        // durable attachment and claim the new one, so a failed load keeps
        // both the old session and its store binding intact.
        let claimed = match &persist {
            None => {
                self.detach_durable();
                None
            }
            Some(name) => Some(self.claim_store(name)?),
        };
        self.session = Session::restore(db, defs, Some(rules), directives);
        self.session.eval_mode = self.eval_mode;
        self.default_actions = user_actions;
        if let Some((name, root)) = claimed {
            let dir = root.dir().join(&name);
            if let Err(e) = self.session.persist_to(&dir, root.sync()) {
                // The freshly loaded program stays usable in memory; only
                // the durable binding failed (e.g. the store already holds
                // data — attach instead of initializing).
                root.release(&name);
                return Err((code_for_engine_error(&e), e.to_string(), None));
            }
            self.persist_name = Some(name);
        }
        let mut fields = vec![
            ("rules", Json::from(self.session.rule_defs().len())),
            ("user_actions", Json::from(self.default_actions.len())),
            ("cached", Json::from(cached)),
            ("script_digest", digest_json(key)),
        ];
        if let Some(name) = &self.persist_name {
            fields.push(("persist", Json::from(name.as_str())));
        }
        Ok(Json::obj(fields))
    }

    /// Releases any previous store binding and claims `name` for exclusive
    /// attachment. Returns the name with the root it was claimed in.
    #[allow(clippy::type_complexity)]
    fn claim_store(&mut self, name: &str) -> Result<(String, Arc<DurableRoot>), OpError> {
        let root = Arc::clone(self.durable_root.as_ref().expect("checked by op_load"));
        // Re-binding to our own store must release first, or the claim
        // below would see the name taken — by us.
        if self.persist_name.as_deref() == Some(name) {
            self.detach_durable();
        }
        if !root.claim(name) {
            return Err((
                ErrorCode::Script,
                format!("store `{name}` is attached by another session"),
                None,
            ));
        }
        self.detach_durable();
        Ok((name.to_owned(), root))
    }

    /// `load` with `persist` but no program: attach to the named store's
    /// recovered state.
    fn attach_store(&mut self, name: String) -> OpResult {
        let (name, root) = self.claim_store(&name)?;
        let dir = root.dir().join(&name);
        match Session::open_durable(&dir, root.sync()) {
            Ok(mut session) => {
                session.eval_mode = self.eval_mode;
                self.session = session;
                self.default_actions = Vec::new();
                self.persist_name = Some(name.clone());
                Ok(Json::obj([
                    ("rules", Json::from(self.session.rule_defs().len())),
                    ("user_actions", Json::Int(0)),
                    ("cached", Json::Bool(false)),
                    ("persist", Json::from(name.as_str())),
                    ("recovered", Json::Bool(true)),
                    ("digest", digest_json(self.session.db().state_digest())),
                ]))
            }
            Err(e) => {
                root.release(&name);
                Err((code_for_engine_error(&e), e.to_string(), None))
            }
        }
    }

    /// `exec`: DDL/DML with rule processing at the commit assertion point,
    /// bounded by the per-request budget.
    fn op_exec(&mut self, req: &Json) -> OpResult {
        let sql = str_field(req, "sql").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let budget = budget_from_request(req).map_err(|m| (ErrorCode::Protocol, m, None))?;
        let cp = self.checkpoint();
        self.session.max_considerations = budget.max_considerations;
        self.session.deadline = budget.deadline;
        let outputs = match self.session.execute_script(sql) {
            Ok(o) => o,
            Err(e) => {
                let code = code_for_engine_error(&e);
                let msg = e.to_string();
                self.restore(cp);
                return Err((code, msg, None));
            }
        };
        let run = match self.session.commit(&mut FirstEligible) {
            Ok(r) => r,
            Err(e) => {
                let code = code_for_engine_error(&e);
                let msg = e.to_string();
                self.restore(cp);
                return Err((code, msg, None));
            }
        };
        self.metrics.considerations += run.considerations.len() as u64;
        let summary = Json::obj([
            ("considerations", Json::from(run.considerations.len())),
            ("fired", Json::from(run.fired_count())),
            ("outcome", Json::from(outcome_str(run.outcome))),
        ]);
        match run.outcome {
            Outcome::Quiescent | Outcome::RolledBack => Ok(Json::obj([
                ("outputs", Json::arr(outputs.iter().map(output_json))),
                ("run", summary),
                ("digest", digest_json(self.session.db().state_digest())),
            ])),
            Outcome::Aborted => {
                let msg = run
                    .error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "transaction aborted".to_owned());
                self.restore(cp);
                Err((ErrorCode::Aborted, msg, Some(summary)))
            }
            Outcome::LimitExceeded => {
                let msg = run
                    .truncation
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "budget exhausted".to_owned());
                self.restore(cp);
                Err((ErrorCode::Inconclusive, msg, Some(summary)))
            }
        }
    }

    /// `analyze`: the §5–§8 static report over the session's current rules
    /// and certifications — exactly the CLI `--json` shape.
    fn op_analyze(&mut self, req: &Json) -> OpResult {
        let refine = match req.get("refine") {
            None => false,
            Some(v) => v.as_bool().ok_or((
                ErrorCode::Protocol,
                "`refine` must be a boolean".into(),
                None,
            ))?,
        };
        let protect = parse_protect(req)?;
        let certs = Certifications::from_directives(self.session.directives());
        let rules = self
            .session
            .ruleset_arc()
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?
            .clone();
        let report = self.analysis.analyze(&rules, &certs, refine, &protect);
        Ok(report.to_json())
    }

    /// `explore`: the execution-graph oracle over the session's current
    /// database, probing either the request's DML or the loaded script's
    /// user transition, bounded by the per-request budget. A truncated or
    /// undecided exploration is an `inconclusive` error whose `data`
    /// carries the partial graph summary (same shape as a success).
    fn op_explore(&mut self, req: &Json) -> OpResult {
        let budget = budget_from_request(req).map_err(|m| (ErrorCode::Protocol, m, None))?;
        let actions: Vec<Action> = match req.get("sql") {
            None => self.default_actions.clone(),
            Some(v) => {
                let sql = v.as_str().ok_or((
                    ErrorCode::Protocol,
                    "`sql` must be a string".into(),
                    None,
                ))?;
                parse_actions(sql)?
            }
        };
        if actions.is_empty() {
            return Err((
                ErrorCode::Script,
                "explore needs a user transition: pass `sql` or load a script with \
                 DML after the rule definitions"
                    .into(),
                None,
            ));
        }
        let rules = self
            .session
            .ruleset_arc()
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?
            .clone();
        let (g, log) =
            explore_traced_with_mode(&rules, self.session.db(), &actions, &budget, self.eval_mode)
                .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        self.metrics.states_explored += g.states.len() as u64;
        self.prov.record_trace(&log);
        // Keep the probe (even for an inconclusive exploration) so a
        // follow-up `explain` can derive the divergence witness.
        self.last_explore = Some(LastExplore {
            rules: rules.clone(),
            db: self.session.db().clone(),
            actions: actions.clone(),
            budget,
            eval_mode: self.eval_mode,
        });
        let result = explore_json(&g, &budget);
        let inconclusive = [
            g.termination_verdict(),
            g.confluence_verdict(),
            g.observable_determinism_verdict(&budget),
        ]
        .iter()
        .any(|v| matches!(v, Verdict::Inconclusive(_)));
        if g.truncated() || inconclusive {
            let msg = g
                .truncation
                .map(|r| r.to_string())
                .unwrap_or_else(|| "a verdict is inconclusive under this budget".to_owned());
            return Err((ErrorCode::Inconclusive, msg, Some(result)));
        }
        Ok(result)
    }

    /// `explain`: why-provenance for the session's last `explore`. Re-runs
    /// that exploration with tracing and answers with the choice-point
    /// count plus — when the oracle reached more than one final database
    /// state — a minimal, replay-verified divergence witness (`null` when
    /// confluent). The graph summary rides along in the `explore` field.
    fn op_explain(&mut self, _req: &Json) -> OpResult {
        let last = self.last_explore.as_ref().ok_or((
            ErrorCode::Script,
            "explain needs a prior explore on this session".into(),
            None,
        ))?;
        let ex = starling_provenance::explain_divergence(
            &last.rules,
            &last.db,
            &last.actions,
            &last.budget,
            last.eval_mode,
        )
        .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        self.prov.record_trace(&ex.log);
        let witness = match &ex.witness {
            Some(w) => {
                self.prov.record_witness(w);
                witness_json(&last.rules, w)
            }
            None => Json::Null,
        };
        Ok(Json::obj([
            ("explore", explore_json(&ex.graph, &last.budget)),
            ("choice_points", Json::from(ex.log.ambiguous())),
            ("witness", witness),
        ]))
    }

    /// `certify`: the §6.4 refinement loop's certification step, as a
    /// stateful session mutation. `{"kind":"commute","a":..,"b":..}` or
    /// `{"kind":"terminates","rule":..,"justification":..}`.
    fn op_certify(&mut self, req: &Json) -> OpResult {
        let kind = str_field(req, "kind").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let directive = match kind {
            "commute" => {
                let a = str_field(req, "a").map_err(|m| (ErrorCode::Protocol, m, None))?;
                let b = str_field(req, "b").map_err(|m| (ErrorCode::Protocol, m, None))?;
                Directive::Commute(a.to_owned(), b.to_owned())
            }
            "terminates" => {
                let rule = str_field(req, "rule").map_err(|m| (ErrorCode::Protocol, m, None))?;
                let justification = req
                    .get("justification")
                    .and_then(Json::as_str)
                    .unwrap_or("certified via protocol");
                Directive::Terminates {
                    rule: rule.to_owned(),
                    justification: justification.to_owned(),
                }
            }
            other => {
                return Err((
                    ErrorCode::Protocol,
                    format!("unknown certify kind `{other}`"),
                    None,
                ))
            }
        };
        self.session
            .execute(&Statement::Directive(directive))
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        self.persist_session()?;
        Ok(Json::obj([(
            "directives",
            Json::from(self.session.directives().len()),
        )]))
    }

    /// `order`: the §6.4 refinement loop's ordering step —
    /// `{"higher":..,"lower":..}` adds the priority `higher precedes
    /// lower` to the session's rule definitions.
    fn op_order(&mut self, req: &Json) -> OpResult {
        let higher = str_field(req, "higher").map_err(|m| (ErrorCode::Protocol, m, None))?;
        let lower = str_field(req, "lower").map_err(|m| (ErrorCode::Protocol, m, None))?;
        self.session
            .execute(&Statement::AlterRule {
                name: higher.to_owned(),
                precedes: vec![lower.to_owned()],
                follows: Vec::new(),
            })
            .map_err(|e| (code_for_engine_error(&e), e.to_string(), None))?;
        self.persist_session()?;
        Ok(Json::obj([(
            "ordered",
            Json::arr([Json::from(higher), Json::from(lower)]),
        )]))
    }

    /// Persists the session's refinement mutations (`certify`/`order`) to
    /// the attached store, if any. On failure the engine has already rolled
    /// the in-memory state back to the durable base, so the error response
    /// is honest: nothing changed, in memory or on disk.
    fn persist_session(&mut self) -> Result<(), OpError> {
        self.session.persist_changes().map_err(|e| {
            let code = if e.storage_cause().is_some() {
                ErrorCode::Aborted
            } else {
                ErrorCode::Script
            };
            (code, e.to_string(), None)
        })
    }

    /// `digest`: the canonical content digest of the session database
    /// (optionally restricted to `"tables":[...]`) — the byte-level
    /// isolation witness used by the tests.
    fn op_digest(&mut self, req: &Json) -> OpResult {
        let d = match req.get("tables") {
            None => self.session.db().state_digest(),
            Some(v) => {
                let names: Vec<&str> = v
                    .as_arr()
                    .map(|items| items.iter().filter_map(Json::as_str).collect())
                    .ok_or((
                        ErrorCode::Protocol,
                        "`tables` must be an array of strings".into(),
                        None,
                    ))?;
                self.session.db().digest_of_tables(&names)
            }
        };
        Ok(Json::obj([("digest", digest_json(d))]))
    }
}

impl Default for ServerSession {
    fn default() -> Self {
        ServerSession::new()
    }
}

impl Drop for ServerSession {
    /// Disconnect (including server drain) writes a final snapshot and
    /// frees the store for the next session.
    fn drop(&mut self) {
        self.detach_durable();
    }
}

/// Store names become directory names under the data dir; the tight
/// charset is the traversal guard.
fn valid_store_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// Parses a DML-only script into the actions of a user transition.
fn parse_actions(sql: &str) -> Result<Vec<Action>, OpError> {
    let stmts = parse_script(sql).map_err(|e| (ErrorCode::Script, e.to_string(), None))?;
    stmts
        .into_iter()
        .map(|s| match s {
            Statement::Dml(a) => Ok(a),
            other => Err((
                ErrorCode::Script,
                format!("explore transitions must be DML only, got {other:?}"),
                None,
            )),
        })
        .collect()
}

/// Parses the `analyze` op's `"protect"` member: an array of arrays of
/// table names, one entry per protected subset.
fn parse_protect(req: &Json) -> Result<Vec<Vec<String>>, OpError> {
    let Some(v) = req.get("protect") else {
        return Ok(Vec::new());
    };
    let bad = || {
        (
            ErrorCode::Protocol,
            "`protect` must be an array of arrays of table names".to_owned(),
            None,
        )
    };
    let outer = v.as_arr().ok_or_else(bad)?;
    outer
        .iter()
        .map(|sub| {
            let names = sub.as_arr().ok_or_else(bad)?;
            names
                .iter()
                .map(|n| n.as_str().map(str::to_owned).ok_or_else(bad))
                .collect()
        })
        .collect()
}

fn outcome_str(o: Outcome) -> &'static str {
    match o {
        Outcome::Quiescent => "quiescent",
        Outcome::RolledBack => "rolled_back",
        Outcome::LimitExceeded => "limit_exceeded",
        Outcome::Aborted => "aborted",
    }
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

fn output_json(o: &starling_engine::session::ScriptOutput) -> Json {
    use starling_engine::session::ScriptOutput;
    match o {
        ScriptOutput::TableCreated(t) => Json::obj([
            ("type", Json::from("table_created")),
            ("name", Json::from(t.as_str())),
        ]),
        ScriptOutput::RuleCreated(r) => Json::obj([
            ("type", Json::from("rule_created")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::RuleDropped(r) => Json::obj([
            ("type", Json::from("rule_dropped")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::RuleAltered(r) => Json::obj([
            ("type", Json::from("rule_altered")),
            ("name", Json::from(r.as_str())),
        ]),
        ScriptOutput::Modified(n) => {
            Json::obj([("type", Json::from("modified")), ("count", Json::from(*n))])
        }
        ScriptOutput::Rows(rs) => Json::obj([
            ("type", Json::from("rows")),
            (
                "columns",
                Json::arr(rs.columns.iter().map(|c| Json::from(c.as_str()))),
            ),
            (
                "rows",
                Json::arr(
                    rs.rows
                        .iter()
                        .map(|row| Json::arr(row.iter().map(value_json))),
                ),
            ),
        ]),
        ScriptOutput::DirectiveRecorded => Json::obj([("type", Json::from("directive"))]),
        ScriptOutput::RolledBack => Json::obj([("type", Json::from("rolled_back"))]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "create table t (x int);\n\
                          create table u (x int);\n\
                          insert into u values (0);\n\
                          create rule a on t when inserted then update u set x = 1 end;\n\
                          create rule b on t when inserted then update u set x = 2 end;\n\
                          insert into t values (5);";

    fn loaded() -> (ServerSession, ScriptCache) {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let req = Json::obj([("script", Json::from(SCRIPT))]);
        s.handle_op("load", &req, &cache).unwrap();
        (s, cache)
    }

    #[test]
    fn explain_after_explore_returns_verified_witness() {
        let (mut s, cache) = loaded();
        // explain before any explore is a script error.
        let err = s
            .handle_op("explain", &Json::parse("{}").unwrap(), &cache)
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::Script);
        s.handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let r = s
            .handle_op("explain", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let w = r.get("witness").expect("witness field");
        assert_eq!(w.get("replay_verified").and_then(Json::as_bool), Some(true));
        assert_ne!(
            w.get("left").and_then(|b| b.get("final_db_digest")),
            w.get("right").and_then(|b| b.get("final_db_digest"))
        );
        assert!(r.get("choice_points").and_then(Json::as_usize) >= Some(1));
        // stats reports the provenance counters.
        let stats = s.stats_json();
        let prov = stats.get("provenance").expect("provenance in stats");
        assert_eq!(
            prov.get("witnesses_extracted").and_then(Json::as_usize),
            Some(1)
        );
        assert!(prov.get("traces_recorded").and_then(Json::as_usize) >= Some(2));
        assert!(prov.get("choice_points").and_then(Json::as_usize) >= Some(2));
    }

    #[test]
    fn load_exec_analyze_explore_round_trip() {
        let (mut s, cache) = loaded();
        // exec commits with rule processing.
        let req = Json::obj([("sql", Json::from("insert into t values (1);"))]);
        let r = s.handle_op("exec", &req, &cache).unwrap();
        assert_eq!(
            r.get("run")
                .and_then(|x| x.get("outcome"))
                .and_then(Json::as_str),
            Some("quiescent")
        );
        // analyze flags the a/b conflict.
        let r = s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("confluence_guaranteed").and_then(Json::as_bool),
            Some(false)
        );
        // explore over the default user transition sees two final states.
        let r = s
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("final_db_digests")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn attach_by_digest() {
        let cache = ScriptCache::new();
        let mut s1 = ServerSession::new();
        let r = s1
            .handle_op("load", &Json::obj([("script", Json::from(SCRIPT))]), &cache)
            .unwrap();
        let dig = r
            .get("script_digest")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        let mut s2 = ServerSession::new();
        let (code, _, _) = s2
            .handle_op(
                "load",
                &Json::obj([("digest", Json::from("ffffffffffffffff"))]),
                &cache,
            )
            .unwrap_err();
        assert_eq!(code, ErrorCode::Script, "unknown digest is a script error");
        let r2 = s2
            .handle_op(
                "load",
                &Json::obj([("digest", Json::from(dig.as_str()))]),
                &cache,
            )
            .unwrap();
        assert_eq!(r2.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            r2.get("script_digest").and_then(Json::as_str),
            Some(dig.as_str())
        );
        // Both sessions start from the same snapshot.
        let d1 = s1
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let d2 = s2
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn refinement_loop_reaches_confluence() {
        let (mut s, cache) = loaded();
        let req = Json::parse(r#"{"kind":"commute","a":"a","b":"b"}"#).unwrap();
        s.handle_op("certify", &req, &cache).unwrap();
        let r = s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("confluence_guaranteed").and_then(Json::as_bool),
            Some(true)
        );
    }

    /// The certify→analyze→order→analyze refinement flow runs on the
    /// session's persistent analyzer: warm analyzes reuse pair verdicts,
    /// invalidate only what the refinement touched, and the counters are
    /// visible through `stats`.
    #[test]
    fn refinement_steps_reuse_pair_verdicts() {
        // Enough rules that a single-rule refinement dirties well under
        // half of all pairs — the incremental path, not the small-set
        // full-sweep fallback.
        let mut script = String::from("create table t (x int);\ncreate table u (x int);\n");
        for name in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            script.push_str(&format!(
                "create rule {name} on t when inserted then update u set x = 1 end;\n"
            ));
        }
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let req = Json::obj([("script", Json::from(script.as_str()))]);
        s.handle_op("load", &req, &cache).unwrap();
        let empty = Json::parse("{}").unwrap();
        s.handle_op("analyze", &empty, &cache).unwrap();
        let cold = s.analysis.stats();
        assert_eq!(cold.full_sweeps, 1);

        let req = Json::parse(r#"{"kind":"commute","a":"a","b":"b"}"#).unwrap();
        s.handle_op("certify", &req, &cache).unwrap();
        s.handle_op("analyze", &empty, &cache).unwrap();
        let warm = s.analysis.stats();
        assert!(warm.pair.hits > cold.pair.hits, "{warm:?}");
        // Exactly the certified pair's verdict was invalidated.
        assert_eq!(warm.pair.invalidations, cold.pair.invalidations + 1);

        let req = Json::parse(r#"{"higher":"a","lower":"b"}"#).unwrap();
        s.handle_op("order", &req, &cache).unwrap();
        s.handle_op("analyze", &empty, &cache).unwrap();
        let after_order = s.analysis.stats();
        assert_eq!(after_order.full_sweeps, 1, "{after_order:?}");
        assert_eq!(after_order.incremental_sweeps, 2, "{after_order:?}");

        // The counters surface in the stats payload.
        let stats = s.stats_json();
        let pc = stats.get("pair_cache").expect("pair_cache in stats");
        assert_eq!(
            pc.get("hits").and_then(Json::as_i64),
            Some(after_order.pair.hits as i64)
        );
        assert_eq!(pc.get("full_sweeps").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn ordering_resolves_nondeterminism() {
        let (mut s, cache) = loaded();
        let req = Json::parse(r#"{"higher":"a","lower":"b"}"#).unwrap();
        s.handle_op("order", &req, &cache).unwrap();
        let r = s
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            r.get("final_db_digests")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_and_atomic() {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let src = "create table t (x int);\n\
                   create rule grow on t when inserted then \
                     insert into t select x + 1 from inserted end;";
        let req = Json::obj([("script", Json::from(src))]);
        s.handle_op("load", &req, &cache).unwrap();
        let before = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let req = Json::parse(
            r#"{"sql":"insert into t values (1);","budget":{"max_considerations":10}}"#,
        )
        .unwrap();
        let (code, msg, data) = s.handle_op("exec", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Inconclusive);
        assert!(msg.contains("consideration budget exhausted"), "{msg}");
        assert_eq!(
            data.as_ref()
                .and_then(|d| d.get("outcome"))
                .and_then(Json::as_str),
            Some("limit_exceeded")
        );
        // Request atomicity: the partial processing was not committed.
        let after = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(before, after);
        // The session survives and keeps serving.
        let r = s
            .handle_op(
                "explore",
                &Json::parse(r#"{"sql":"insert into t values (1);","budget":{"max_states":5}}"#)
                    .unwrap(),
                &cache,
            )
            .unwrap_err();
        assert_eq!(r.0, ErrorCode::Inconclusive);
        assert!(r.2.is_some(), "truncated explore carries partial data");
    }

    #[test]
    fn abort_is_surfaced_and_atomic() {
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        let src = "create table t (x int);\n\
                   create rule nope on t when inserted then rollback end;";
        s.handle_op("load", &Json::obj([("script", Json::from(src))]), &cache)
            .unwrap();
        // A rule-driven rollback is a normal outcome, not an error.
        let r = s
            .handle_op(
                "exec",
                &Json::obj([("sql", Json::from("insert into t values (1);"))]),
                &cache,
            )
            .unwrap();
        assert_eq!(
            r.get("run")
                .and_then(|x| x.get("outcome"))
                .and_then(Json::as_str),
            Some("rolled_back")
        );
        // A priority cycle aborts the transaction; the session survives
        // with its pre-request state.
        let src2 = "create table t (x int);\n\
                    create rule a on t when inserted then update t set x = 1 end;\n\
                    create rule b on t when inserted then update t set x = 2 end;";
        s.handle_op("load", &Json::obj([("script", Json::from(src2))]), &cache)
            .unwrap();
        let before = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let req = Json::obj([(
            "sql",
            Json::from(
                "alter rule a precedes b; alter rule b precedes a; insert into t values (9);",
            ),
        )]);
        let (code, _, _) = s.handle_op("exec", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Aborted);
        let after = s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(before, after);
        // The cyclic orderings were rolled back too: analyze still works.
        assert!(s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .is_ok());
    }

    #[test]
    fn eval_mode_is_per_session() {
        let cache = ScriptCache::new();
        let mut columnar = ServerSession::new();
        let mut plan = ServerSession::new();
        let mut interp = ServerSession::new();
        let load = |mode: &str| {
            Json::obj([
                ("script", Json::from(SCRIPT)),
                ("eval_mode", Json::from(mode)),
            ])
        };
        columnar
            .handle_op("load", &load("columnar"), &cache)
            .unwrap();
        plan.handle_op("load", &load("plan"), &cache).unwrap();
        interp.handle_op("load", &load("interp"), &cache).unwrap();
        assert_eq!(columnar.eval_mode, EvalMode::Columnar);
        assert_eq!(plan.eval_mode, EvalMode::Plan);
        assert_eq!(interp.eval_mode, EvalMode::Interp);
        // All paths agree on the oracle result.
        let a = plan
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let b = interp
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        let c = columnar
            .handle_op("explore", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), c.to_string());
    }

    fn durable_root() -> (Arc<DurableRoot>, std::path::PathBuf) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "starling-server-dur-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let root = Arc::new(DurableRoot::new(&dir, starling_storage::SyncPolicy::Always));
        (root, dir)
    }

    fn digest_of(s: &mut ServerSession, cache: &ScriptCache) -> Json {
        s.handle_op("digest", &Json::parse("{}").unwrap(), cache)
            .unwrap()
    }

    #[test]
    fn durable_store_survives_session_teardown() {
        let (root, dir) = durable_root();
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        s.set_durable_root(Some(Arc::clone(&root)));
        let req = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("alpha")),
        ]);
        let r = s.handle_op("load", &req, &cache).unwrap();
        assert_eq!(r.get("persist").and_then(Json::as_str), Some("alpha"));
        s.handle_op(
            "exec",
            &Json::obj([("sql", Json::from("insert into t values (7);"))]),
            &cache,
        )
        .unwrap();
        s.handle_op(
            "certify",
            &Json::parse(r#"{"kind":"commute","a":"a","b":"b"}"#).unwrap(),
            &cache,
        )
        .unwrap();
        s.handle_op(
            "order",
            &Json::parse(r#"{"higher":"a","lower":"b"}"#).unwrap(),
            &cache,
        )
        .unwrap();
        let before = digest_of(&mut s, &cache);
        drop(s); // disconnect: final snapshot + claim release

        // A fresh session (a "restarted server") attaches and sees the
        // exact committed state, including the refinement ops.
        let mut s2 = ServerSession::new();
        s2.set_durable_root(Some(Arc::clone(&root)));
        let r = s2
            .handle_op(
                "load",
                &Json::obj([("persist", Json::from("alpha"))]),
                &cache,
            )
            .unwrap();
        assert_eq!(r.get("recovered"), Some(&Json::Bool(true)));
        assert_eq!(r.get("rules").and_then(Json::as_i64), Some(2));
        assert_eq!(digest_of(&mut s2, &cache), before);
        // The recovered directives and ordering are live, not just stored.
        let a = s2
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .unwrap();
        assert_eq!(
            a.get("confluence_guaranteed").and_then(Json::as_bool),
            Some(true)
        );
        drop(s2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn store_has_a_single_writer() {
        let (root, dir) = durable_root();
        let cache = ScriptCache::new();
        let mut s1 = ServerSession::new();
        s1.set_durable_root(Some(Arc::clone(&root)));
        let req = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("solo")),
        ]);
        s1.handle_op("load", &req, &cache).unwrap();
        let mut s2 = ServerSession::new();
        s2.set_durable_root(Some(Arc::clone(&root)));
        let (code, msg, _) = s2
            .handle_op(
                "load",
                &Json::obj([("persist", Json::from("solo"))]),
                &cache,
            )
            .unwrap_err();
        assert_eq!(code, ErrorCode::Script);
        assert!(msg.contains("attached by another session"), "{msg}");
        // ... and the failed claim did not clobber s1's attachment.
        drop(s1);
        let r = s2
            .handle_op(
                "load",
                &Json::obj([("persist", Json::from("solo"))]),
                &cache,
            )
            .unwrap();
        assert_eq!(r.get("recovered"), Some(&Json::Bool(true)));
        drop(s2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn persist_requests_are_validated() {
        let cache = ScriptCache::new();
        // No data dir on the server at all.
        let mut s = ServerSession::new();
        let req = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("alpha")),
        ]);
        let (code, msg, _) = s.handle_op("load", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Protocol);
        assert!(msg.contains("--data-dir"), "{msg}");

        let (root, dir) = durable_root();
        let mut s = ServerSession::new();
        s.set_durable_root(Some(Arc::clone(&root)));
        for bad in ["", "has space", "../escape", "UPPER", "a/b"] {
            let req = Json::obj([("script", Json::from(SCRIPT)), ("persist", Json::from(bad))]);
            let (code, _, _) = s.handle_op("load", &req, &cache).unwrap_err();
            assert_eq!(code, ErrorCode::Protocol, "name {bad:?} must be rejected");
        }
        // Initializing a store that already holds data is refused (attach
        // instead); the in-memory session keeps working.
        let req = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("init-once")),
        ]);
        s.handle_op("load", &req, &cache).unwrap();
        drop(s);
        let mut s = ServerSession::new();
        s.set_durable_root(Some(Arc::clone(&root)));
        let req = Json::obj([
            ("script", Json::from(SCRIPT)),
            ("persist", Json::from("init-once")),
        ]);
        let (_, msg, _) = s.handle_op("load", &req, &cache).unwrap_err();
        assert!(msg.contains("attach"), "{msg}");
        assert!(s
            .handle_op("digest", &Json::parse("{}").unwrap(), &cache)
            .is_ok());
        drop(s);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn durable_session_stays_request_atomic() {
        let (root, dir) = durable_root();
        let cache = ScriptCache::new();
        let mut s = ServerSession::new();
        s.set_durable_root(Some(Arc::clone(&root)));
        let src = "create table t (x int);\n\
                   create rule grow on t when inserted then \
                     insert into t select x + 1 from inserted end;";
        let req = Json::obj([
            ("script", Json::from(src)),
            ("persist", Json::from("atomic")),
        ]);
        s.handle_op("load", &req, &cache).unwrap();
        let before = digest_of(&mut s, &cache);
        let req = Json::parse(
            r#"{"sql":"insert into t values (1);","budget":{"max_considerations":10}}"#,
        )
        .unwrap();
        let (code, _, _) = s.handle_op("exec", &req, &cache).unwrap_err();
        assert_eq!(code, ErrorCode::Inconclusive);
        assert_eq!(digest_of(&mut s, &cache), before);
        // The rolled-back request was not persisted either: reattaching
        // recovers the pre-request state.
        drop(s);
        let mut s2 = ServerSession::new();
        s2.set_durable_root(Some(Arc::clone(&root)));
        s2.handle_op(
            "load",
            &Json::obj([("persist", Json::from("atomic"))]),
            &cache,
        )
        .unwrap();
        assert_eq!(digest_of(&mut s2, &cache), before);
        drop(s2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn protocol_errors_do_not_kill_the_session() {
        let (mut s, cache) = loaded();
        for bad in [
            ("load", "{}"),
            ("exec", "{}"),
            ("certify", r#"{"kind":"zzz"}"#),
            ("order", r#"{"higher":"a"}"#),
            ("digest", r#"{"tables":3}"#),
            ("nosuch", "{}"),
        ] {
            let (code, _, _) = s
                .handle_op(bad.0, &Json::parse(bad.1).unwrap(), &cache)
                .unwrap_err();
            assert_eq!(code, ErrorCode::Protocol, "{}", bad.0);
        }
        assert!(s
            .handle_op("analyze", &Json::parse("{}").unwrap(), &cache)
            .is_ok());
    }
}
