//! Abstract syntax for the SQL subset and the rule definition language.
//!
//! The rule DDL mirrors the paper's Section 2 syntax:
//!
//! ```text
//! create rule name on table
//!     when transition-predicate
//!     [ if condition ]
//!     then action ; action ; ...
//!     [ precedes rule-list ]
//!     [ follows rule-list ]
//! end
//! ```

use starling_storage::{TableSchema, Value};

/// A transition table reference (paper Section 2).
///
/// At rule consideration time these logical tables reflect the net effect of
/// the rule's triggering transition on the rule's table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionTable {
    /// Tuples inserted by the triggering transition.
    Inserted,
    /// Tuples deleted by the triggering transition.
    Deleted,
    /// New values of updated tuples.
    NewUpdated,
    /// Old values of updated tuples.
    OldUpdated,
}

impl TransitionTable {
    /// The surface spelling (`inserted`, `deleted`, `new_updated`,
    /// `old_updated`).
    pub fn name(self) -> &'static str {
        match self {
            TransitionTable::Inserted => "inserted",
            TransitionTable::Deleted => "deleted",
            TransitionTable::NewUpdated => "new_updated",
            TransitionTable::OldUpdated => "old_updated",
        }
    }

    /// Parses a surface spelling.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "inserted" => Some(TransitionTable::Inserted),
            "deleted" => Some(TransitionTable::Deleted),
            "new_updated" => Some(TransitionTable::NewUpdated),
            "old_updated" => Some(TransitionTable::OldUpdated),
            _ => None,
        }
    }
}

/// A table named in a `FROM` clause: either a base table or a transition
/// table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableRef {
    /// A base table in the catalog.
    Base(String),
    /// A transition table of the enclosing rule.
    Transition(TransitionTable),
}

impl TableRef {
    /// The name as written.
    pub fn name(&self) -> &str {
        match self {
            TableRef::Base(s) => s,
            TableRef::Transition(t) => t.name(),
        }
    }
}

/// One item of a `FROM` clause, with optional alias.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FromItem {
    /// The table.
    pub table: TableRef,
    /// Optional alias (`FROM emp e` or `FROM emp AS e`).
    pub alias: Option<String>,
}

impl FromItem {
    /// The name this item binds in scope: the alias if present, else the
    /// table name.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or_else(|| self.table.name())
    }
}

/// A possibly-qualified column reference (`salary` or `e.salary`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional qualifier (table name or alias).
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified reference.
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Whether this operator compares (yields boolean from non-boolean
    /// operands).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator is arithmetic.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

/// Aggregate functions (allowed in select lists only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` — non-null count.
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl Aggregate {
    /// Surface spelling (without parentheses).
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::CountStar | Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Avg => "avg",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSelect {
        /// Tested expression.
        expr: Box<Expr>,
        /// Single-column subquery.
        select: Box<SelectStmt>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `EXISTS (SELECT ...)`.
    Exists(Box<SelectStmt>),
    /// A parenthesized single-row, single-column subquery used as a value.
    ScalarSubquery(Box<SelectStmt>),
    /// An aggregate call (select lists only).
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// Argument (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Column reference shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Binary expression shorthand.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

/// One item of a select list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of all from-items, in scope order.
    Wildcard,
    /// An expression with optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS name`.
        alias: Option<String>,
    },
}

/// One `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// The sort expression (evaluated in the select's row scope).
    pub expr: Expr,
    /// `DESC` when true (`ASC` is the default).
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` items (cartesian product).
    pub from: Vec<FromItem>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys (empty = no grouping; aggregates then form a single
    /// group).
    pub group_by: Vec<Expr>,
    /// Optional `HAVING` predicate (may contain aggregates), applied per
    /// group.
    pub having: Option<Expr>,
    /// `ORDER BY` keys (empty = engine scan order). `NULL` sorts first.
    pub order_by: Vec<OrderItem>,
}

/// Source of rows for an `INSERT`.
#[derive(Clone, Debug, PartialEq)]
pub enum InsertSource {
    /// `VALUES (..), (..)`.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT ...`.
    Select(SelectStmt),
}

/// `INSERT INTO table [(cols)] source`.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list; omitted means all columns in schema
    /// order.
    pub columns: Option<Vec<String>>,
    /// Row source.
    pub source: InsertSource,
}

/// `DELETE FROM table [WHERE expr]`.
#[derive(Clone, Debug, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// `UPDATE table SET c = e, ... [WHERE expr]`.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET` assignments.
    pub sets: Vec<(String, Expr)>,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// A rule action (or a top-level DML statement).
///
/// Per the paper, an action is "an arbitrary sequence of SQL data manipulation
/// operations". `SELECT` and `ROLLBACK` actions are *observable* (Section 8).
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Insert rows.
    Insert(InsertStmt),
    /// Delete rows.
    Delete(DeleteStmt),
    /// Update rows.
    Update(UpdateStmt),
    /// Retrieve data (observable).
    Select(SelectStmt),
    /// Abort the transaction (observable).
    Rollback,
}

impl Action {
    /// Whether this action is visible to the environment (paper Section 8:
    /// "if it performs data retrieval or a rollback statement").
    pub fn is_observable(&self) -> bool {
        matches!(self, Action::Select(_) | Action::Rollback)
    }
}

/// One triggering operation in a rule's transition predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TriggerEvent {
    /// `when inserted`.
    Inserted,
    /// `when deleted`.
    Deleted,
    /// `when updated` (any column) or `when updated(c1, ..., cn)`.
    Updated(Option<Vec<String>>),
}

/// A production rule definition (paper Section 2).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleDef {
    /// Rule name.
    pub name: String,
    /// The rule's table.
    pub table: String,
    /// Transition predicate: triggering operations on the rule's table.
    pub events: Vec<TriggerEvent>,
    /// Optional SQL condition.
    pub condition: Option<Expr>,
    /// Action: a sequence of DML operations.
    pub actions: Vec<Action>,
    /// Rules this rule precedes (has priority over).
    pub precedes: Vec<String>,
    /// Rules this rule follows (that have priority over it).
    pub follows: Vec<String>,
}

/// `CREATE TABLE` DDL.
#[derive(Clone, Debug, PartialEq)]
pub struct CreateTable {
    /// The declared schema.
    pub schema: TableSchema,
}

/// A user certification directive, input to the interactive analysis
/// (paper Sections 5 and 6.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// `declare commute r1, r2` — the user certifies that two rules that
    /// appear noncommutative by Lemma 6.1 actually commute.
    Commute(String, String),
    /// `declare terminates r 'justification'` — the user certifies that
    /// cycles through rule `r` terminate (repeated consideration eventually
    /// falsifies `r`'s condition or nullifies its action).
    Terminates {
        /// The certified rule.
        rule: String,
        /// Free-text justification recorded in reports.
        justification: String,
    },
}

/// A top-level statement in a script.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `CREATE RULE ... END`.
    CreateRule(RuleDef),
    /// `DROP RULE name`.
    DropRule(String),
    /// `ALTER RULE name [PRECEDES list] [FOLLOWS list]` — adds orderings to
    /// an existing rule (the §6.4 "Approach 2" remedy, as DDL).
    AlterRule {
        /// The rule to amend.
        name: String,
        /// Rules it should now precede.
        precedes: Vec<String>,
        /// Rules it should now follow.
        follows: Vec<String>,
    },
    /// A DML statement or `ROLLBACK`.
    Dml(Action),
    /// A `DECLARE` certification directive.
    Directive(Directive),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_table_names_round_trip() {
        for t in [
            TransitionTable::Inserted,
            TransitionTable::Deleted,
            TransitionTable::NewUpdated,
            TransitionTable::OldUpdated,
        ] {
            assert_eq!(TransitionTable::from_name(t.name()), Some(t));
        }
        assert_eq!(TransitionTable::from_name("emp"), None);
    }

    #[test]
    fn from_item_binding() {
        let f = FromItem {
            table: TableRef::Base("emp".into()),
            alias: Some("e".into()),
        };
        assert_eq!(f.binding(), "e");
        let g = FromItem {
            table: TableRef::Transition(TransitionTable::Inserted),
            alias: None,
        };
        assert_eq!(g.binding(), "inserted");
    }

    #[test]
    fn observability() {
        assert!(Action::Rollback.is_observable());
        assert!(Action::Select(SelectStmt {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        })
        .is_observable());
        assert!(!Action::Delete(DeleteStmt {
            table: "t".into(),
            where_clause: None
        })
        .is_observable());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Eq.is_arithmetic());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::And.is_comparison());
    }
}
