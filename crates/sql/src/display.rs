//! Pretty-printing of AST nodes back to parseable source.
//!
//! The printer round-trips with the parser (`parse(print(x)) == x`), which is
//! property-tested in the workload generator's test suite.

use std::fmt;

use crate::ast::*;

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Binary { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            Expr::Neg(e) => write!(f, "(- {e})"),
            Expr::Not(e) => write!(f, "(not {e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} is {}null", if *negated { "not " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::InSelect {
                expr,
                select,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}in ({select})",
                    if *negated { "not " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}between {low} and {high}",
                if *negated { "not " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}like {pattern}",
                if *negated { "not " } else { "" }
            ),
            Expr::Exists(s) => write!(f, "exists ({s})"),
            Expr::ScalarSubquery(s) => write!(f, "({s})"),
            Expr::Aggregate { func, arg } => match arg {
                None => write!(f, "count(*)"),
                Some(e) => write!(f, "{}({e})", func.name()),
            },
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " as {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table.name())?;
        if let Some(a) = &self.alias {
            write!(f, " as {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("select ")?;
        if self.distinct {
            f.write_str("distinct ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" from ")?;
            for (i, fi) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{fi}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" group by ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" order by ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    f.write_str(" desc")?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "insert into {}", self.table)?;
        if let Some(cols) = &self.columns {
            write!(f, " ({})", cols.join(", "))?;
        }
        match &self.source {
            InsertSource::Values(rows) => {
                f.write_str(" values ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            InsertSource::Select(s) => write!(f, " {s}"),
        }
    }
}

impl fmt::Display for DeleteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delete from {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update {} set ", self.table)?;
        for (i, (c, e)) in self.sets.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c} = {e}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Insert(s) => write!(f, "{s}"),
            Action::Delete(s) => write!(f, "{s}"),
            Action::Update(s) => write!(f, "{s}"),
            Action::Select(s) => write!(f, "{s}"),
            Action::Rollback => f.write_str("rollback"),
        }
    }
}

impl fmt::Display for TriggerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerEvent::Inserted => f.write_str("inserted"),
            TriggerEvent::Deleted => f.write_str("deleted"),
            TriggerEvent::Updated(None) => f.write_str("updated"),
            TriggerEvent::Updated(Some(cols)) => {
                write!(f, "updated({})", cols.join(", "))
            }
        }
    }
}

impl fmt::Display for RuleDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create rule {} on {}\n    when ", self.name, self.table)?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{e}")?;
        }
        if let Some(c) = &self.condition {
            write!(f, "\n    if {c}")?;
        }
        f.write_str("\n    then ")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                f.write_str(";\n         ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.precedes.is_empty() {
            write!(f, "\n    precedes {}", self.precedes.join(", "))?;
        }
        if !self.follows.is_empty() {
            write!(f, "\n    follows {}", self.follows.join(", "))?;
        }
        f.write_str("\nend")
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create table {} (", self.schema.name)?;
        for (i, c) in self.schema.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.name, c.ty.keyword().to_lowercase())?;
            if c.nullable {
                f.write_str(" null")?;
            } else {
                f.write_str(" not null")?;
            }
        }
        f.write_str(")")
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Commute(a, b) => write!(f, "declare commute {a}, {b}"),
            Directive::Terminates {
                rule,
                justification,
            } => write!(
                f,
                "declare terminates {rule} '{}'",
                justification.replace('\'', "''")
            ),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(s) => write!(f, "{s}"),
            Statement::CreateRule(s) => write!(f, "{s}"),
            Statement::DropRule(name) => write!(f, "drop rule {name}"),
            Statement::AlterRule {
                name,
                precedes,
                follows,
            } => {
                write!(f, "alter rule {name}")?;
                if !precedes.is_empty() {
                    write!(f, " precedes {}", precedes.join(", "))?;
                }
                if !follows.is_empty() {
                    write!(f, " follows {}", follows.join(", "))?;
                }
                Ok(())
            }
            Statement::Dml(a) => write!(f, "{a}"),
            Statement::Directive(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_statement};

    /// Parse → print → parse must be a fixpoint.
    fn round_trip_stmt(src: &str) {
        let a = parse_statement(src).unwrap();
        let printed = a.to_string();
        let b = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(a, b, "round-trip mismatch for `{src}`");
    }

    #[test]
    fn statements_round_trip() {
        for src in [
            "create table t (a int not null, b varchar null, c float not null, d bool not null)",
            "insert into t values (1, 'x')",
            "insert into t (a, b) values (1, 2), (3, 4)",
            "insert into t select * from u",
            "delete from t where a > 1 and b is not null",
            "update t set a = a + 1 where a in (select b from u where c = 'z')",
            "select distinct a, b as bb from t as x, u where x.a = u.b or not u.c like 'a%'",
            "select count(*), sum(a), min(b) from t where a between 1 and 10",
            "select a, b from t where a > 0 order by a desc, b",
            "select a, count(*) from t group by a having count(*) > 1 order by a",
            "rollback",
            "create rule r on t when inserted, updated(a, b) \
             if exists (select * from inserted) \
             then update t set a = 1; rollback precedes q follows s end",
            "declare commute r1, r2",
            "drop rule old_rule",
            "alter rule a precedes b, c follows d",
            "declare terminates r 'it''s monotonic'",
        ] {
            round_trip_stmt(src);
        }
    }

    #[test]
    fn exprs_round_trip() {
        for src in [
            "1 + 2 * 3 - -4",
            "a.b = c and not d or e is null",
            "x not in (1, 2)",
            "x in (select y from t where z = x)",
            "(select count(*) from t) > 5",
            "n like '%abc_'",
        ] {
            let a = parse_expr(src).unwrap();
            let b = parse_expr(&a.to_string()).unwrap();
            assert_eq!(a, b, "round-trip mismatch for `{src}`");
        }
    }
}
