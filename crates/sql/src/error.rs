//! SQL-layer errors: lexing, parsing, validation, and evaluation.

use std::fmt;

use starling_storage::StorageError;

use crate::token::Pos;

/// Errors raised anywhere in the SQL layer.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string, bad number).
    Lex { pos: Pos, message: String },
    /// Parse error.
    Parse { pos: Pos, message: String },
    /// Semantic validation error (unknown names, misuse of constructs).
    Validate(String),
    /// Runtime evaluation error.
    Eval(String),
    /// Error bubbled up from the storage layer.
    Storage(StorageError),
}

impl SqlError {
    /// Builds a validation error.
    pub fn validate(msg: impl Into<String>) -> Self {
        SqlError::Validate(msg.into())
    }

    /// Builds an evaluation error.
    pub fn eval(msg: impl Into<String>) -> Self {
        SqlError::Eval(msg.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => {
                write!(f, "lex error at {pos}: {message}")
            }
            SqlError::Parse { pos, message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            SqlError::Validate(m) => write!(f, "validation error: {m}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SqlError::Parse {
            pos: Pos { line: 2, col: 5 },
            message: "expected `from`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 2:5: expected `from`");
        assert_eq!(
            SqlError::validate("bad").to_string(),
            "validation error: bad"
        );
        let s: SqlError = StorageError::UnknownTable("t".into()).into();
        assert!(s.to_string().contains("unknown table"));
    }
}
