//! DML execution with tuple-level effect reporting.
//!
//! Execution is two-phase: evaluate (against the pre-statement state), then
//! apply. The returned [`DmlEffect`]s are the engine's raw material for the
//! operation log and net-effect computation.

use starling_storage::{Database, Row, TupleId, Value};

use crate::ast::{Action, DeleteStmt, InsertSource, InsertStmt, UpdateStmt};
use crate::error::SqlError;
use crate::eval::env::{Env, EvalCtx, RowBinding, TransitionBinding};
use crate::eval::expr::{eval_bool, eval_expr, is_true};
use crate::eval::select::{eval_select, ResultSet};

/// A tuple-level change produced by executing a statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmlEffect {
    /// A tuple was inserted.
    Insert {
        /// Target table.
        table: String,
        /// Assigned tuple id.
        id: TupleId,
        /// Inserted values.
        row: Row,
    },
    /// A tuple was deleted.
    Delete {
        /// Target table.
        table: String,
        /// Deleted tuple id.
        id: TupleId,
        /// Values at deletion time.
        old: Row,
    },
    /// A tuple was updated.
    Update {
        /// Target table.
        table: String,
        /// Updated tuple id.
        id: TupleId,
        /// Values before.
        old: Row,
        /// Values after.
        new: Row,
        /// The columns assigned by the `SET` list. Triggering semantics key
        /// on assignment, not on whether the value actually changed.
        cols: Vec<String>,
    },
}

impl DmlEffect {
    /// The table this effect touches.
    pub fn table(&self) -> &str {
        match self {
            DmlEffect::Insert { table, .. }
            | DmlEffect::Delete { table, .. }
            | DmlEffect::Update { table, .. } => table,
        }
    }

    /// The tuple this effect touches.
    pub fn tuple_id(&self) -> TupleId {
        match self {
            DmlEffect::Insert { id, .. }
            | DmlEffect::Delete { id, .. }
            | DmlEffect::Update { id, .. } => *id,
        }
    }
}

/// The outcome of executing one action statement.
#[derive(Clone, Debug, PartialEq)]
pub enum ActionOutcome {
    /// Data modification: the tuple-level effects (possibly empty).
    Effects(Vec<DmlEffect>),
    /// Data retrieval: the observable result rows.
    Rows(ResultSet),
    /// A rollback was requested.
    Rollback,
}

/// Executes one action statement against the database.
///
/// `transitions` supplies the rule's transition tables when executing a rule
/// action; pass `None` for user statements.
pub fn exec_action(
    action: &Action,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
) -> Result<ActionOutcome, SqlError> {
    match action {
        Action::Insert(stmt) => exec_insert(stmt, db, transitions).map(ActionOutcome::Effects),
        Action::Delete(stmt) => exec_delete(stmt, db, transitions).map(ActionOutcome::Effects),
        Action::Update(stmt) => exec_update(stmt, db, transitions).map(ActionOutcome::Effects),
        Action::Select(stmt) => {
            let ctx = EvalCtx { db, transitions };
            let mut env = Env::new(&ctx);
            eval_select(stmt, &mut env).map(ActionOutcome::Rows)
        }
        Action::Rollback => Ok(ActionOutcome::Rollback),
    }
}

fn exec_insert(
    stmt: &InsertStmt,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
) -> Result<Vec<DmlEffect>, SqlError> {
    // Phase 1: evaluate all source rows against the pre-statement state.
    let rows: Vec<Row> = {
        let ctx = EvalCtx { db, transitions };
        let mut env = Env::new(&ctx);
        match &stmt.source {
            InsertSource::Values(tuples) => {
                let mut out = Vec::with_capacity(tuples.len());
                for t in tuples {
                    let mut row = Vec::with_capacity(t.len());
                    for e in t {
                        row.push(eval_expr(e, &mut env)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(s) => eval_select(s, &mut env)?.rows,
        }
    };

    // Map through the explicit column list, filling gaps with NULL.
    let full_rows: Vec<Row> = match &stmt.columns {
        None => rows,
        Some(cols) => {
            let schema = db.catalog().table(&stmt.table)?;
            let mut indices = Vec::with_capacity(cols.len());
            for c in cols {
                indices.push(schema.column_index(c).ok_or_else(|| {
                    SqlError::validate(format!(
                        "insert target `{}` has no column `{c}`",
                        stmt.table
                    ))
                })?);
            }
            let arity = schema.arity();
            rows.into_iter()
                .map(|r| {
                    let mut full = vec![Value::Null; arity];
                    for (i, v) in indices.iter().zip(r) {
                        full[*i] = v;
                    }
                    full
                })
                .collect()
        }
    };

    // Phase 2: apply.
    let mut effects = Vec::with_capacity(full_rows.len());
    for row in full_rows {
        let id = db.insert(&stmt.table, row.clone())?;
        effects.push(DmlEffect::Insert {
            table: stmt.table.clone(),
            id,
            row,
        });
    }
    Ok(effects)
}

fn exec_delete(
    stmt: &DeleteStmt,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
) -> Result<Vec<DmlEffect>, SqlError> {
    let victims = matching_tuples(&stmt.table, stmt.where_clause.as_ref(), db, transitions)?;
    let mut effects = Vec::with_capacity(victims.len());
    for (id, _) in victims {
        let old = db.delete(&stmt.table, id)?;
        effects.push(DmlEffect::Delete {
            table: stmt.table.clone(),
            id,
            old,
        });
    }
    Ok(effects)
}

fn exec_update(
    stmt: &UpdateStmt,
    db: &mut Database,
    transitions: Option<&TransitionBinding>,
) -> Result<Vec<DmlEffect>, SqlError> {
    let set_indices: Vec<usize> = {
        let schema = db.catalog().table(&stmt.table)?;
        let mut indices = Vec::with_capacity(stmt.sets.len());
        for (c, _) in &stmt.sets {
            indices.push(schema.column_index(c).ok_or_else(|| {
                SqlError::validate(format!(
                    "update target `{}` has no column `{c}`",
                    stmt.table
                ))
            })?);
        }
        indices
    };

    // Phase 1: pick targets and compute new rows against the old state.
    let targets = matching_tuples(&stmt.table, stmt.where_clause.as_ref(), db, transitions)?;
    let mut planned: Vec<(TupleId, Row, Row)> = Vec::with_capacity(targets.len());
    {
        let ctx = EvalCtx { db, transitions };
        let mut env = Env::new(&ctx);
        for (id, old) in targets {
            env.push(vec![RowBinding {
                name: stmt.table.clone(),
                table: stmt.table.clone(),
                row: old.clone(),
            }]);
            let mut new = old.clone();
            let result: Result<(), SqlError> = (|| {
                for (idx, (_, e)) in set_indices.iter().zip(&stmt.sets) {
                    new[*idx] = eval_expr(e, &mut env)?;
                }
                Ok(())
            })();
            env.pop();
            result?;
            planned.push((id, old, new));
        }
    }

    // Phase 2: apply.
    let set_cols: Vec<String> = stmt.sets.iter().map(|(c, _)| c.clone()).collect();
    let mut effects = Vec::with_capacity(planned.len());
    for (id, old, new) in planned {
        db.update(&stmt.table, id, new.clone())?;
        effects.push(DmlEffect::Update {
            table: stmt.table.clone(),
            id,
            old,
            new,
            cols: set_cols.clone(),
        });
    }
    Ok(effects)
}

/// Tuples of `table` satisfying `where_clause` (all tuples when absent),
/// evaluated against the current state.
fn matching_tuples(
    table: &str,
    where_clause: Option<&crate::ast::Expr>,
    db: &Database,
    transitions: Option<&TransitionBinding>,
) -> Result<Vec<(TupleId, Row)>, SqlError> {
    let tbl = db.table(table)?;
    let Some(w) = where_clause else {
        return Ok(tbl.iter().map(|(id, r)| (id, r.clone())).collect());
    };
    let ctx = EvalCtx { db, transitions };
    let mut env = Env::new(&ctx);
    let mut out = Vec::new();
    // The binding names are the same every iteration; thread them through
    // the popped frame so each candidate costs one row clone and nothing
    // else, and only matching rows keep theirs.
    let mut name = table.to_owned();
    let mut table_name = table.to_owned();
    for (id, row) in tbl.iter() {
        env.push(vec![RowBinding {
            name,
            table: table_name,
            row: row.clone(),
        }]);
        let v = eval_bool(w, &mut env);
        let binding = env
            .pop_frame()
            .and_then(|mut f| f.pop())
            .expect("frame pushed above");
        name = binding.name;
        table_name = binding.table;
        if is_true(&v?) {
            out.push((id, binding.row));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use starling_storage::{ColumnDef, TableSchema, ValueType};

    use crate::ast::Statement;
    use crate::parser::parse_statement;

    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::nullable("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    fn run(d: &mut Database, src: &str) -> Result<ActionOutcome, SqlError> {
        let Statement::Dml(a) = parse_statement(src).unwrap() else {
            panic!()
        };
        exec_action(&a, d, None)
    }

    fn effects(d: &mut Database, src: &str) -> Vec<DmlEffect> {
        match run(d, src).unwrap() {
            ActionOutcome::Effects(fx) => fx,
            o => panic!("expected effects, got {o:?}"),
        }
    }

    #[test]
    fn insert_values_multi_row() {
        let mut d = db();
        let fx = effects(&mut d, "insert into t values (1, 10), (2, 20)");
        assert_eq!(fx.len(), 2);
        assert_eq!(d.table("t").unwrap().len(), 2);
        assert!(matches!(&fx[0], DmlEffect::Insert { row, .. } if row[0] == Value::Int(1)));
    }

    #[test]
    fn insert_with_column_list_fills_null() {
        let mut d = db();
        effects(&mut d, "insert into t (a) values (5)");
        let t = d.table("t").unwrap();
        let (_, row) = t.iter().next().unwrap();
        assert_eq!(row, &vec![Value::Int(5), Value::Null]);
    }

    #[test]
    fn insert_column_list_out_of_order() {
        let mut d = db();
        effects(&mut d, "insert into t (b, a) values (20, 2)");
        let t = d.table("t").unwrap();
        let (_, row) = t.iter().next().unwrap();
        assert_eq!(row, &vec![Value::Int(2), Value::Int(20)]);
    }

    #[test]
    fn insert_select_snapshot_semantics() {
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10)");
        // Self-referencing insert must read the pre-statement state: exactly
        // one new row, not an infinite loop.
        let fx = effects(&mut d, "insert into t select a + 1, b from t");
        assert_eq!(fx.len(), 1);
        assert_eq!(d.table("t").unwrap().len(), 2);
    }

    #[test]
    fn insert_null_into_non_nullable_fails() {
        let mut d = db();
        assert!(run(&mut d, "insert into t (b) values (1)").is_err());
        assert!(run(&mut d, "insert into t values (null, 1)").is_err());
        // Failed insert leaves no partial state.
        assert_eq!(d.table("t").unwrap().len(), 0);
    }

    #[test]
    fn delete_with_predicate() {
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10), (2, 20), (3, null)");
        let fx = effects(&mut d, "delete from t where b >= 10");
        assert_eq!(fx.len(), 2);
        // NULL row survives (predicate unknown).
        assert_eq!(d.table("t").unwrap().len(), 1);
        let fx = effects(&mut d, "delete from t");
        assert_eq!(fx.len(), 1);
        assert!(d.table("t").unwrap().is_empty());
    }

    #[test]
    fn update_set_oriented() {
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10), (2, 20)");
        // Swap-style update: all rhs evaluated against the old state.
        let fx = effects(&mut d, "update t set a = b / 10, b = a * 100");
        assert_eq!(fx.len(), 2);
        let rows: Vec<Row> = d
            .table("t")
            .unwrap()
            .iter()
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
            ]
        );
        for f in fx {
            let DmlEffect::Update { old, new, .. } = f else {
                panic!()
            };
            assert_ne!(old, new);
        }
    }

    #[test]
    fn update_records_identity_even_when_value_unchanged() {
        // SQL/Starburst semantics: UPDATE touches every matching tuple, even
        // when the new value equals the old (the transition still contains
        // the update operation).
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10)");
        let fx = effects(&mut d, "update t set a = a");
        assert_eq!(fx.len(), 1);
        let DmlEffect::Update { old, new, .. } = &fx[0] else {
            panic!()
        };
        assert_eq!(old, new);
    }

    #[test]
    fn empty_target_sets() {
        let mut d = db();
        assert!(effects(&mut d, "delete from t where a = 99").is_empty());
        assert!(effects(&mut d, "update t set a = 1 where a = 99").is_empty());
    }

    #[test]
    fn select_outcome_rows() {
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10)");
        let ActionOutcome::Rows(rs) = run(&mut d, "select a from t").unwrap() else {
            panic!()
        };
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn update_with_subquery_in_where() {
        let mut d = db();
        effects(&mut d, "insert into t values (1, 10), (2, 20)");
        let fx = effects(
            &mut d,
            "update t set b = 0 where a = (select max(a) from t)",
        );
        assert_eq!(fx.len(), 1);
        let DmlEffect::Update { new, .. } = &fx[0] else {
            panic!()
        };
        assert_eq!(new, &vec![Value::Int(2), Value::Int(0)]);
    }
}
