//! Evaluation context and row environments.

use starling_storage::{Database, Row};

use crate::ast::TransitionTable;

/// The four logical transition tables of a rule at consideration time
/// (paper Section 2). All rows carry the schema of the rule's table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransitionBinding {
    /// The rule's table (whose schema the transition rows carry).
    pub table: String,
    /// Tuples inserted by the triggering transition (net effect).
    pub inserted: Vec<Row>,
    /// Tuples deleted by the triggering transition (net effect).
    pub deleted: Vec<Row>,
    /// New values of net-updated tuples.
    pub new_updated: Vec<Row>,
    /// Old values of net-updated tuples.
    pub old_updated: Vec<Row>,
}

impl TransitionBinding {
    /// An empty binding for a rule's table.
    pub fn empty(table: impl Into<String>) -> Self {
        TransitionBinding {
            table: table.into(),
            ..TransitionBinding::default()
        }
    }

    /// Rows of one transition table.
    pub fn rows(&self, t: TransitionTable) -> &[Row] {
        match t {
            TransitionTable::Inserted => &self.inserted,
            TransitionTable::Deleted => &self.deleted,
            TransitionTable::NewUpdated => &self.new_updated,
            TransitionTable::OldUpdated => &self.old_updated,
        }
    }
}

/// Everything an expression can read: the database and, inside a rule, the
/// transition tables.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Current database state.
    pub db: &'a Database,
    /// Transition tables, when evaluating inside a rule.
    pub transitions: Option<&'a TransitionBinding>,
}

/// One row binding visible in scope: `name` is the alias (or table name),
/// `table` is the schema table the row conforms to.
#[derive(Clone, Debug)]
pub struct RowBinding {
    /// In-scope name.
    pub name: String,
    /// Schema table.
    pub table: String,
    /// Current row values.
    pub row: Row,
}

/// A frame of row bindings (one per `FROM` item of the enclosing select).
pub type Frame = Vec<RowBinding>;

/// The evaluation environment: context plus a stack of row frames.
///
/// Subqueries push a frame per candidate row combination; correlated column
/// references resolve through outer frames, innermost first.
pub struct Env<'a> {
    /// The shared read context.
    pub ctx: &'a EvalCtx<'a>,
    frames: Vec<Frame>,
}

impl<'a> Env<'a> {
    /// A fresh environment with no row bindings.
    pub fn new(ctx: &'a EvalCtx<'a>) -> Self {
        Env {
            ctx,
            frames: Vec::new(),
        }
    }

    /// Pushes a frame of row bindings.
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Pops the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Pops and returns the innermost frame, so callers that bound owned
    /// rows can take them back without cloning.
    pub fn pop_frame(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// Number of frames (used by tests and assertions).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The innermost frame, if any (used by wildcard expansion).
    pub fn innermost(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Looks up a column, innermost frame first.
    ///
    /// With a qualifier, the binding's name must match; without, the column
    /// must resolve to exactly one binding in the nearest frame that has any
    /// match (ambiguity is a validation-time error, but the evaluator guards
    /// anyway).
    pub fn lookup(
        &self,
        qualifier: Option<&str>,
        column: &str,
    ) -> Option<(starling_storage::Value, &RowBinding)> {
        for frame in self.frames.iter().rev() {
            match qualifier {
                Some(q) => {
                    if let Some(b) = frame.iter().find(|b| b.name == q) {
                        let schema = self.ctx.db.catalog().table(&b.table).ok()?;
                        let idx = schema.column_index(column)?;
                        return Some((b.row[idx].clone(), b));
                    }
                }
                None => {
                    let mut found = None;
                    for b in frame {
                        let Ok(schema) = self.ctx.db.catalog().table(&b.table) else {
                            continue;
                        };
                        if let Some(idx) = schema.column_index(column) {
                            if found.is_some() {
                                return None; // ambiguous
                            }
                            found = Some((b.row[idx].clone(), b));
                        }
                    }
                    if found.is_some() {
                        return found;
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use starling_storage::{ColumnDef, TableSchema, Value, ValueType};

    use super::*;

    fn ctx_db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ValueType::Int),
                    ColumnDef::new("b", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        d.create_table(TableSchema::new("u", vec![ColumnDef::new("a", ValueType::Int)]).unwrap())
            .unwrap();
        d
    }

    #[test]
    fn lookup_through_frames() {
        let db = ctx_db();
        let ctx = EvalCtx {
            db: &db,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        env.push(vec![RowBinding {
            name: "x".into(),
            table: "t".into(),
            row: vec![Value::Int(1), Value::Int(2)],
        }]);
        env.push(vec![RowBinding {
            name: "y".into(),
            table: "u".into(),
            row: vec![Value::Int(9)],
        }]);

        // Inner frame wins for `a`.
        assert_eq!(env.lookup(None, "a").unwrap().0, Value::Int(9));
        // `b` only exists in the outer frame.
        assert_eq!(env.lookup(None, "b").unwrap().0, Value::Int(2));
        // Qualified lookups.
        assert_eq!(env.lookup(Some("x"), "a").unwrap().0, Value::Int(1));
        assert_eq!(env.lookup(Some("y"), "a").unwrap().0, Value::Int(9));
        assert!(env.lookup(Some("z"), "a").is_none());

        env.pop();
        assert_eq!(env.lookup(None, "a").unwrap().0, Value::Int(1));
    }

    #[test]
    fn ambiguous_in_same_frame_is_none() {
        let db = ctx_db();
        let ctx = EvalCtx {
            db: &db,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        env.push(vec![
            RowBinding {
                name: "x".into(),
                table: "t".into(),
                row: vec![Value::Int(1), Value::Int(2)],
            },
            RowBinding {
                name: "y".into(),
                table: "u".into(),
                row: vec![Value::Int(9)],
            },
        ]);
        assert!(env.lookup(None, "a").is_none());
        assert!(env.lookup(None, "b").is_some());
    }

    #[test]
    fn transition_binding_rows() {
        let mut tb = TransitionBinding::empty("t");
        tb.inserted.push(vec![Value::Int(1)]);
        tb.old_updated.push(vec![Value::Int(2)]);
        assert_eq!(tb.rows(TransitionTable::Inserted).len(), 1);
        assert_eq!(tb.rows(TransitionTable::Deleted).len(), 0);
        assert_eq!(tb.rows(TransitionTable::OldUpdated).len(), 1);
    }
}
