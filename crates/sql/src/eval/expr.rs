//! Expression evaluation with SQL three-valued logic.
//!
//! Boolean results are represented as `Value::Bool(..)` or `Value::Null`
//! (*unknown*). `WHERE` keeps a row only when the predicate is exactly
//! `TRUE`.

use std::cmp::Ordering;

use starling_storage::Value;

use crate::ast::{BinOp, Expr};
use crate::error::SqlError;
use crate::eval::env::Env;
use crate::eval::select;

/// Evaluates an expression in the given environment.
///
/// Aggregates are rejected here; they are only meaningful in select lists,
/// which [`select::eval_select`] handles in aggregate mode.
pub fn eval_expr(e: &Expr, env: &mut Env<'_>) -> Result<Value, SqlError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => env
            .lookup(c.qualifier.as_deref(), &c.column)
            .map(|(v, _)| v)
            .ok_or_else(|| SqlError::eval(format!("cannot resolve column `{c}`"))),
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, env),
        Expr::Neg(x) => neg_value(eval_expr(x, env)?),
        Expr::Not(x) => Ok(not3(eval_bool(x, env)?)),
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval_expr(expr, env)?;
            let mut any_unknown = false;
            let mut found = false;
            for cand in list {
                let v = eval_expr(cand, env)?;
                match sql_eq(&needle, &v) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            Ok(in_result(found, any_unknown, *negated))
        }
        Expr::InSelect {
            expr,
            select: sub,
            negated,
        } => {
            let needle = eval_expr(expr, env)?;
            let rs = select::eval_select(sub, env)?;
            let mut any_unknown = false;
            let mut found = false;
            for row in &rs.rows {
                match sql_eq(&needle, &row[0]) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            Ok(in_result(found, any_unknown, *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, env)?;
            let lo = eval_expr(low, env)?;
            let hi = eval_expr(high, env)?;
            let ge_lo = cmp_bool(&v, &lo, |o| o != Ordering::Less);
            let le_hi = cmp_bool(&v, &hi, |o| o != Ordering::Greater);
            let both = and3(ge_lo, le_hi);
            Ok(if *negated { not3(both) } else { both })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, env)?;
            let p = eval_expr(pattern, env)?;
            like_values(v, p, *negated)
        }
        Expr::Exists(sub) => {
            let rs = select::eval_select(sub, env)?;
            Ok(Value::Bool(!rs.rows.is_empty()))
        }
        Expr::ScalarSubquery(sub) => {
            let rs = select::eval_select(sub, env)?;
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(SqlError::eval(format!("scalar subquery returned {n} rows"))),
            }
        }
        Expr::Aggregate { .. } => Err(SqlError::eval("aggregate evaluated outside a select list")),
    }
}

/// Evaluates an expression expected to be boolean-valued (3VL).
pub fn eval_bool(e: &Expr, env: &mut Env<'_>) -> Result<Value, SqlError> {
    match eval_expr(e, env)? {
        v @ (Value::Bool(_) | Value::Null) => Ok(v),
        v => Err(SqlError::eval(format!("expected boolean, got {v}"))),
    }
}

/// Whether a 3VL value is exactly TRUE (the `WHERE` filter rule).
pub fn is_true(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, env: &mut Env<'_>) -> Result<Value, SqlError> {
    match op {
        BinOp::And => {
            // Kleene AND with short circuit on FALSE.
            let l = eval_bool(lhs, env)?;
            if l == Value::Bool(false) {
                return Ok(Value::Bool(false));
            }
            let r = eval_bool(rhs, env)?;
            Ok(and3(l, r))
        }
        BinOp::Or => {
            let l = eval_bool(lhs, env)?;
            if l == Value::Bool(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval_bool(rhs, env)?;
            Ok(or3(l, r))
        }
        op if op.is_comparison() => {
            let l = eval_expr(lhs, env)?;
            let r = eval_expr(rhs, env)?;
            compare_values(op, &l, &r)
        }
        op => {
            // Arithmetic.
            let l = eval_expr(lhs, env)?;
            let r = eval_expr(rhs, env)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, &l, &r)
        }
    }
}

/// Unary minus on an evaluated operand (shared with the plan executor).
pub(crate) fn neg_value(v: Value) -> Result<Value, SqlError> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => {
            Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                SqlError::eval("integer overflow in negation")
            })?))
        }
        Value::Float(f) => Ok(Value::Float(-f)),
        v => Err(SqlError::eval(format!("cannot negate {v}"))),
    }
}

/// `LIKE` on evaluated operands (shared with the plan executor).
pub(crate) fn like_values(v: Value, p: Value, negated: bool) -> Result<Value, SqlError> {
    match (v, p) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Str(s), Value::Str(pat)) => Ok(Value::Bool(like_match(&s, &pat) != negated)),
        (a, b) => Err(SqlError::eval(format!(
            "LIKE requires strings, got {a} and {b}"
        ))),
    }
}

/// A comparison operator on evaluated operands (shared with the plan
/// executor): `NULL` operands yield unknown, incomparable values error.
pub(crate) fn compare_values(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let Some(ord) = l.sql_cmp(r) else {
        return Err(SqlError::eval(format!("cannot compare {l} with {r}")));
    };
    let b = match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        _ => ord != Ordering::Less, // Ge
    };
    Ok(Value::Bool(b))
}

pub(crate) fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let res = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(SqlError::eval("division by zero"));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(SqlError::eval("division by zero"));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!("non-arithmetic op in arith"),
            };
            res.map(Value::Int)
                .ok_or_else(|| SqlError::eval("integer overflow"))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(SqlError::eval(format!(
                    "arithmetic on non-numeric values {l} and {r}"
                )));
            };
            let res = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::eval("division by zero"));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(SqlError::eval("division by zero"));
                    }
                    a % b
                }
                _ => unreachable!("non-arithmetic op in arith"),
            };
            Ok(Value::Float(res))
        }
    }
}

/// SQL equality as a 3VL primitive.
pub(crate) fn sql_eq(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o == Ordering::Equal)
}

pub(crate) fn cmp_bool(a: &Value, b: &Value, f: impl Fn(Ordering) -> bool) -> Value {
    match a.sql_cmp(b) {
        Some(o) => Value::Bool(f(o)),
        None => Value::Null,
    }
}

/// Kleene three-valued AND.
pub fn and3(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

/// Kleene three-valued OR.
pub fn or3(a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Kleene three-valued NOT.
pub fn not3(a: Value) -> Value {
    match a {
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::Null,
    }
}

pub(crate) fn in_result(found: bool, any_unknown: bool, negated: bool) -> Value {
    let base = if found {
        Value::Bool(true)
    } else if any_unknown {
        Value::Null
    } else {
        Value::Bool(false)
    };
    if negated {
        not3(base)
    } else {
        base
    }
}

/// SQL `LIKE` matching: `%` matches any sequence, `_` any single character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try every suffix (including empty).
                (0..=s.len()).any(|i| rec(&s[i..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use starling_storage::Database;

    use crate::eval::env::EvalCtx;
    use crate::parser::parse_expr;

    use super::*;

    fn eval(src: &str) -> Result<Value, SqlError> {
        let db = Database::new();
        let ctx = EvalCtx {
            db: &db,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        eval_expr(&parse_expr(src).unwrap(), &mut env)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval("7 % 4").unwrap(), Value::Int(3));
        assert_eq!(eval("-(3 - 5)").unwrap(), Value::Int(2));
        assert!(eval("1 / 0").is_err());
        assert!(eval("1 % 0").is_err());
        assert!(eval("'a' + 1").is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval("null + 1").unwrap(), Value::Null);
        assert_eq!(eval("null = null").unwrap(), Value::Null);
        assert_eq!(eval("1 < null").unwrap(), Value::Null);
        assert_eq!(eval("- null").unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval("true and null").unwrap(), Value::Null);
        assert_eq!(eval("false and null").unwrap(), Value::Bool(false));
        assert_eq!(eval("true or null").unwrap(), Value::Bool(true));
        assert_eq!(eval("false or null").unwrap(), Value::Null);
        assert_eq!(eval("not null").unwrap(), Value::Null);
        assert_eq!(eval("not false").unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_predicate() {
        assert_eq!(eval("null is null").unwrap(), Value::Bool(true));
        assert_eq!(eval("1 is null").unwrap(), Value::Bool(false));
        assert_eq!(eval("1 is not null").unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("2 >= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval("2 <> 2").unwrap(), Value::Bool(false));
        assert_eq!(eval("1.5 < 2").unwrap(), Value::Bool(true));
        assert_eq!(eval("'a' < 'b'").unwrap(), Value::Bool(true));
        assert!(eval("1 < 'a'").is_err());
    }

    #[test]
    fn in_list_3vl() {
        assert_eq!(eval("2 in (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval("3 in (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval("3 in (1, null)").unwrap(), Value::Null);
        assert_eq!(eval("1 in (1, null)").unwrap(), Value::Bool(true));
        assert_eq!(eval("3 not in (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval("3 not in (1, null)").unwrap(), Value::Null);
    }

    #[test]
    fn between_3vl() {
        assert_eq!(eval("2 between 1 and 3").unwrap(), Value::Bool(true));
        assert_eq!(eval("0 between 1 and 3").unwrap(), Value::Bool(false));
        assert_eq!(eval("2 not between 1 and 3").unwrap(), Value::Bool(false));
        assert_eq!(eval("2 between null and 3").unwrap(), Value::Null);
        // FALSE short-circuits unknown: 0 >= NULL is unknown but 0 <= -1 is
        // false, so the AND is false.
        assert_eq!(eval("0 between null and -1").unwrap(), Value::Bool(false));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("a%b", "a%b")); // literal traversal via %
        assert_eq!(eval("'foo' like 'f%'").unwrap(), Value::Bool(true));
        assert_eq!(eval("'foo' not like 'g%'").unwrap(), Value::Bool(true));
        assert_eq!(eval("null like 'a'").unwrap(), Value::Null);
        assert!(eval("1 like 'a'").is_err());
    }

    #[test]
    fn overflow_detected() {
        assert!(eval("9223372036854775807 + 1").is_err());
        assert!(eval("- (-9223372036854775807 - 1)").is_err());
    }

    #[test]
    fn is_true_filter() {
        assert!(is_true(&Value::Bool(true)));
        assert!(!is_true(&Value::Bool(false)));
        assert!(!is_true(&Value::Null));
        assert!(!is_true(&Value::Int(1)));
    }
}
