//! Evaluation of SQL statements against a database state.
//!
//! Rule conditions and actions are evaluated with an optional
//! [`TransitionBinding`]: the four logical transition tables reflecting the
//! rule's triggering transition (paper Section 2). The engine computes the
//! binding from net effects and passes it in at consideration time.
//!
//! DML execution is two-phase: the target set and all new values are fully
//! evaluated against the *pre-statement* state, then applied — giving SQL's
//! set-oriented semantics (no Halloween problem) and producing a
//! [`DmlEffect`] record per touched tuple for the engine's operation log.

pub mod dml;
pub mod env;
pub mod expr;
pub mod select;

pub use dml::{exec_action, ActionOutcome, DmlEffect};
pub use env::{Env, EvalCtx, TransitionBinding};
pub use select::{eval_select, ResultSet};

#[cfg(test)]
mod tests {
    use starling_storage::{ColumnDef, Database, TableSchema, Value, ValueType};

    use crate::ast::{Action, Statement};
    use crate::parser::parse_statement;

    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "emp",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("name", ValueType::Str),
                    ColumnDef::new("salary", ValueType::Int),
                    ColumnDef::new("dno", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        d.create_table(
            TableSchema::new(
                "dept",
                vec![
                    ColumnDef::new("dno", ValueType::Int),
                    ColumnDef::new("budget", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for (id, name, sal, dno) in [(1, "ann", 100, 1), (2, "bob", 200, 1), (3, "cay", 300, 2)] {
            d.insert(
                "emp",
                vec![
                    Value::Int(id),
                    Value::str(name),
                    Value::Int(sal),
                    Value::Int(dno),
                ],
            )
            .unwrap();
        }
        d.insert("dept", vec![Value::Int(1), Value::Int(1000)])
            .unwrap();
        d.insert("dept", vec![Value::Int(2), Value::Int(2000)])
            .unwrap();
        d
    }

    fn run(d: &mut Database, src: &str) -> ActionOutcome {
        let Statement::Dml(a) = parse_statement(src).unwrap() else {
            panic!("not dml: {src}")
        };
        exec_action(&a, d, None).unwrap()
    }

    fn query(d: &Database, src: &str) -> ResultSet {
        let Statement::Dml(Action::Select(s)) = parse_statement(src).unwrap() else {
            panic!("not select: {src}")
        };
        let ctx = EvalCtx {
            db: d,
            transitions: None,
        };
        let mut env = Env::new(&ctx);
        eval_select(&s, &mut env).unwrap()
    }

    #[test]
    fn end_to_end_select() {
        let d = db();
        let rs = query(&d, "select name from emp where salary > 150");
        assert_eq!(rs.columns, vec!["name"]);
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn end_to_end_join() {
        let d = db();
        let rs = query(
            &d,
            "select e.name, d.budget from emp e, dept d where e.dno = d.dno and d.budget > 1500",
        );
        assert_eq!(rs.rows, vec![vec![Value::str("cay"), Value::Int(2000)]]);
    }

    #[test]
    fn end_to_end_dml_pipeline() {
        let mut d = db();
        let ActionOutcome::Effects(fx) =
            run(&mut d, "update emp set salary = salary + 10 where dno = 1")
        else {
            panic!()
        };
        assert_eq!(fx.len(), 2);
        let rs = query(&d, "select sum(salary) from emp");
        assert_eq!(rs.rows[0][0], Value::Int(100 + 10 + 200 + 10 + 300));

        let ActionOutcome::Effects(fx) = run(&mut d, "delete from emp where salary < 150") else {
            panic!()
        };
        assert_eq!(fx.len(), 1);
        assert_eq!(d.table("emp").unwrap().len(), 2);
    }

    #[test]
    fn correlated_subquery() {
        let d = db();
        // Employees earning the max salary of their department.
        let rs = query(
            &d,
            "select name from emp e where salary = \
             (select max(salary) from emp where dno = e.dno)",
        );
        let names: Vec<_> = rs.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(names, vec![Value::str("bob"), Value::str("cay")]);
    }

    #[test]
    fn rollback_outcome() {
        let mut d = db();
        assert!(matches!(run(&mut d, "rollback"), ActionOutcome::Rollback));
    }
}
